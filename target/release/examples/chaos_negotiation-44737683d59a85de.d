/root/repo/target/release/examples/chaos_negotiation-44737683d59a85de.d: examples/chaos_negotiation.rs

/root/repo/target/release/examples/chaos_negotiation-44737683d59a85de: examples/chaos_negotiation.rs

examples/chaos_negotiation.rs:
