/root/repo/target/release/examples/_chaos_sweep-fe901e903c7d29b3.d: examples/_chaos_sweep.rs

/root/repo/target/release/examples/_chaos_sweep-fe901e903c7d29b3: examples/_chaos_sweep.rs

examples/_chaos_sweep.rs:
