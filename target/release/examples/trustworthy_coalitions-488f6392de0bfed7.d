/root/repo/target/release/examples/trustworthy_coalitions-488f6392de0bfed7.d: examples/trustworthy_coalitions.rs

/root/repo/target/release/examples/trustworthy_coalitions-488f6392de0bfed7: examples/trustworthy_coalitions.rs

examples/trustworthy_coalitions.rs:
