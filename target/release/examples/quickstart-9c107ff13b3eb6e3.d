/root/repo/target/release/examples/quickstart-9c107ff13b3eb6e3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9c107ff13b3eb6e3: examples/quickstart.rs

examples/quickstart.rs:
