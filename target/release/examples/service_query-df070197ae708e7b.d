/root/repo/target/release/examples/service_query-df070197ae708e7b.d: examples/service_query.rs

/root/repo/target/release/examples/service_query-df070197ae708e7b: examples/service_query.rs

examples/service_query.rs:
