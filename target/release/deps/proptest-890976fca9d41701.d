/root/repo/target/release/deps/proptest-890976fca9d41701.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-890976fca9d41701.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-890976fca9d41701.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
