/root/repo/target/release/deps/softsoa_semiring-f4aa703ee4f5fc51.d: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs

/root/repo/target/release/deps/libsoftsoa_semiring-f4aa703ee4f5fc51.rlib: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs

/root/repo/target/release/deps/libsoftsoa_semiring-f4aa703ee4f5fc51.rmeta: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs

crates/semiring/src/lib.rs:
crates/semiring/src/boolean.rs:
crates/semiring/src/extra.rs:
crates/semiring/src/fuzzy.rs:
crates/semiring/src/laws.rs:
crates/semiring/src/probabilistic.rs:
crates/semiring/src/product.rs:
crates/semiring/src/set.rs:
crates/semiring/src/traits.rs:
crates/semiring/src/unit.rs:
crates/semiring/src/weighted.rs:
