/root/repo/target/release/deps/solver_comparison-c97284432b20a314.d: crates/bench/benches/solver_comparison.rs

/root/repo/target/release/deps/solver_comparison-c97284432b20a314: crates/bench/benches/solver_comparison.rs

crates/bench/benches/solver_comparison.rs:
