/root/repo/target/release/deps/softsoa_bench-95b3a71af5caf032.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsoftsoa_bench-95b3a71af5caf032.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsoftsoa_bench-95b3a71af5caf032.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
