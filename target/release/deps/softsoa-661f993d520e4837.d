/root/repo/target/release/deps/softsoa-661f993d520e4837.d: crates/cli/src/main.rs

/root/repo/target/release/deps/softsoa-661f993d520e4837: crates/cli/src/main.rs

crates/cli/src/main.rs:
