/root/repo/target/release/deps/softsoa_soa-1d678af12f6606f1.d: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs

/root/repo/target/release/deps/libsoftsoa_soa-1d678af12f6606f1.rlib: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs

/root/repo/target/release/deps/libsoftsoa_soa-1d678af12f6606f1.rmeta: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs

crates/soa/src/lib.rs:
crates/soa/src/broker.rs:
crates/soa/src/chaos.rs:
crates/soa/src/compose.rs:
crates/soa/src/orchestrator.rs:
crates/soa/src/qos.rs:
crates/soa/src/query.rs:
crates/soa/src/registry.rs:
crates/soa/src/sim.rs:
