/root/repo/target/release/deps/softsoa_cli-64654cf790227c14.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

/root/repo/target/release/deps/libsoftsoa_cli-64654cf790227c14.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

/root/repo/target/release/deps/libsoftsoa_cli-64654cf790227c14.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/format.rs:
