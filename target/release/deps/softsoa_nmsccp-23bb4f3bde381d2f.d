/root/repo/target/release/deps/softsoa_nmsccp-23bb4f3bde381d2f.d: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs

/root/repo/target/release/deps/libsoftsoa_nmsccp-23bb4f3bde381d2f.rlib: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs

/root/repo/target/release/deps/libsoftsoa_nmsccp-23bb4f3bde381d2f.rmeta: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs

crates/nmsccp/src/lib.rs:
crates/nmsccp/src/agent.rs:
crates/nmsccp/src/checked.rs:
crates/nmsccp/src/concurrent.rs:
crates/nmsccp/src/explore.rs:
crates/nmsccp/src/interp.rs:
crates/nmsccp/src/parser.rs:
crates/nmsccp/src/resilience.rs:
crates/nmsccp/src/semantics.rs:
crates/nmsccp/src/store.rs:
crates/nmsccp/src/timed.rs:
