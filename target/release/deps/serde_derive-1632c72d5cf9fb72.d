/root/repo/target/release/deps/serde_derive-1632c72d5cf9fb72.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-1632c72d5cf9fb72.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
