/root/repo/target/release/deps/softsoa_dependability-4ebdfa20ae124fc9.d: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

/root/repo/target/release/deps/libsoftsoa_dependability-4ebdfa20ae124fc9.rlib: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

/root/repo/target/release/deps/libsoftsoa_dependability-4ebdfa20ae124fc9.rmeta: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

crates/dependability/src/lib.rs:
crates/dependability/src/attributes.rs:
crates/dependability/src/availability.rs:
crates/dependability/src/fault.rs:
crates/dependability/src/photo.rs:
crates/dependability/src/refinement.rs:
