/root/repo/target/release/deps/softsoa-014aa6b0a3d9cfd3.d: src/lib.rs

/root/repo/target/release/deps/libsoftsoa-014aa6b0a3d9cfd3.rlib: src/lib.rs

/root/repo/target/release/deps/libsoftsoa-014aa6b0a3d9cfd3.rmeta: src/lib.rs

src/lib.rs:
