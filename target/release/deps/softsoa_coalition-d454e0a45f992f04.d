/root/repo/target/release/deps/softsoa_coalition-d454e0a45f992f04.d: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs

/root/repo/target/release/deps/libsoftsoa_coalition-d454e0a45f992f04.rlib: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs

/root/repo/target/release/deps/libsoftsoa_coalition-d454e0a45f992f04.rmeta: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs

crates/coalition/src/lib.rs:
crates/coalition/src/coalition.rs:
crates/coalition/src/network.rs:
crates/coalition/src/propagate.rs:
crates/coalition/src/scsp.rs:
crates/coalition/src/solvers.rs:
crates/coalition/src/stability.rs:
