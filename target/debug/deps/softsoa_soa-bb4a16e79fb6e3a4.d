/root/repo/target/debug/deps/softsoa_soa-bb4a16e79fb6e3a4.d: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_soa-bb4a16e79fb6e3a4.rmeta: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs Cargo.toml

crates/soa/src/lib.rs:
crates/soa/src/broker.rs:
crates/soa/src/chaos.rs:
crates/soa/src/compose.rs:
crates/soa/src/orchestrator.rs:
crates/soa/src/qos.rs:
crates/soa/src/query.rs:
crates/soa/src/registry.rs:
crates/soa/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
