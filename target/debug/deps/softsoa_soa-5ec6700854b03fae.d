/root/repo/target/debug/deps/softsoa_soa-5ec6700854b03fae.d: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs

/root/repo/target/debug/deps/libsoftsoa_soa-5ec6700854b03fae.rlib: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs

/root/repo/target/debug/deps/libsoftsoa_soa-5ec6700854b03fae.rmeta: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs

crates/soa/src/lib.rs:
crates/soa/src/broker.rs:
crates/soa/src/chaos.rs:
crates/soa/src/compose.rs:
crates/soa/src/orchestrator.rs:
crates/soa/src/qos.rs:
crates/soa/src/query.rs:
crates/soa/src/registry.rs:
crates/soa/src/sim.rs:
