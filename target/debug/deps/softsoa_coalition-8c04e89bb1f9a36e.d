/root/repo/target/debug/deps/softsoa_coalition-8c04e89bb1f9a36e.d: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs

/root/repo/target/debug/deps/libsoftsoa_coalition-8c04e89bb1f9a36e.rlib: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs

/root/repo/target/debug/deps/libsoftsoa_coalition-8c04e89bb1f9a36e.rmeta: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs

crates/coalition/src/lib.rs:
crates/coalition/src/coalition.rs:
crates/coalition/src/network.rs:
crates/coalition/src/propagate.rs:
crates/coalition/src/scsp.rs:
crates/coalition/src/solvers.rs:
crates/coalition/src/stability.rs:
