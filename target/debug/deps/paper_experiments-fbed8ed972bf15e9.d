/root/repo/target/debug/deps/paper_experiments-fbed8ed972bf15e9.d: tests/paper_experiments.rs

/root/repo/target/debug/deps/paper_experiments-fbed8ed972bf15e9: tests/paper_experiments.rs

tests/paper_experiments.rs:
