/root/repo/target/debug/deps/softsoa_nmsccp-f538bf1c561e8641.d: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_nmsccp-f538bf1c561e8641.rmeta: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs Cargo.toml

crates/nmsccp/src/lib.rs:
crates/nmsccp/src/agent.rs:
crates/nmsccp/src/checked.rs:
crates/nmsccp/src/concurrent.rs:
crates/nmsccp/src/explore.rs:
crates/nmsccp/src/interp.rs:
crates/nmsccp/src/parser.rs:
crates/nmsccp/src/resilience.rs:
crates/nmsccp/src/semantics.rs:
crates/nmsccp/src/store.rs:
crates/nmsccp/src/timed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
