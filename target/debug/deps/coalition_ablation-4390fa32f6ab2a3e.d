/root/repo/target/debug/deps/coalition_ablation-4390fa32f6ab2a3e.d: crates/bench/benches/coalition_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libcoalition_ablation-4390fa32f6ab2a3e.rmeta: crates/bench/benches/coalition_ablation.rs Cargo.toml

crates/bench/benches/coalition_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
