/root/repo/target/debug/deps/softsoa_nmsccp-6fe7d220e36da5bc.d: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_nmsccp-6fe7d220e36da5bc.rmeta: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs Cargo.toml

crates/nmsccp/src/lib.rs:
crates/nmsccp/src/agent.rs:
crates/nmsccp/src/checked.rs:
crates/nmsccp/src/concurrent.rs:
crates/nmsccp/src/explore.rs:
crates/nmsccp/src/interp.rs:
crates/nmsccp/src/parser.rs:
crates/nmsccp/src/resilience.rs:
crates/nmsccp/src/semantics.rs:
crates/nmsccp/src/store.rs:
crates/nmsccp/src/timed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
