/root/repo/target/debug/deps/ex3_update_policy-b23c7c280757c5d8.d: crates/bench/benches/ex3_update_policy.rs Cargo.toml

/root/repo/target/debug/deps/libex3_update_policy-b23c7c280757c5d8.rmeta: crates/bench/benches/ex3_update_policy.rs Cargo.toml

crates/bench/benches/ex3_update_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
