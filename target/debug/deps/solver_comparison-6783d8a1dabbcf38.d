/root/repo/target/debug/deps/solver_comparison-6783d8a1dabbcf38.d: crates/bench/benches/solver_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_comparison-6783d8a1dabbcf38.rmeta: crates/bench/benches/solver_comparison.rs Cargo.toml

crates/bench/benches/solver_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
