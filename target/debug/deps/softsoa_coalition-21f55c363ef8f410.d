/root/repo/target/debug/deps/softsoa_coalition-21f55c363ef8f410.d: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_coalition-21f55c363ef8f410.rmeta: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs Cargo.toml

crates/coalition/src/lib.rs:
crates/coalition/src/coalition.rs:
crates/coalition/src/network.rs:
crates/coalition/src/propagate.rs:
crates/coalition/src/scsp.rs:
crates/coalition/src/solvers.rs:
crates/coalition/src/stability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
