/root/repo/target/debug/deps/query_engine-59b2b02dcc414991.d: tests/query_engine.rs Cargo.toml

/root/repo/target/debug/deps/libquery_engine-59b2b02dcc414991.rmeta: tests/query_engine.rs Cargo.toml

tests/query_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
