/root/repo/target/debug/deps/softsoa_dependability-baf1253786167525.d: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

/root/repo/target/debug/deps/libsoftsoa_dependability-baf1253786167525.rlib: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

/root/repo/target/debug/deps/libsoftsoa_dependability-baf1253786167525.rmeta: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

crates/dependability/src/lib.rs:
crates/dependability/src/attributes.rs:
crates/dependability/src/availability.rs:
crates/dependability/src/fault.rs:
crates/dependability/src/photo.rs:
crates/dependability/src/refinement.rs:
