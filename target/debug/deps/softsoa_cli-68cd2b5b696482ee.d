/root/repo/target/debug/deps/softsoa_cli-68cd2b5b696482ee.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

/root/repo/target/debug/deps/softsoa_cli-68cd2b5b696482ee: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/format.rs:
