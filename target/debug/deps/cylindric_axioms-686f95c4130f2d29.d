/root/repo/target/debug/deps/cylindric_axioms-686f95c4130f2d29.d: crates/core/tests/cylindric_axioms.rs

/root/repo/target/debug/deps/cylindric_axioms-686f95c4130f2d29: crates/core/tests/cylindric_axioms.rs

crates/core/tests/cylindric_axioms.rs:
