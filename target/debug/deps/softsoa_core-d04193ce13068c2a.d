/root/repo/target/debug/deps/softsoa_core-d04193ce13068c2a.d: crates/core/src/lib.rs crates/core/src/assignment.rs crates/core/src/compile.rs crates/core/src/constraint.rs crates/core/src/cylindric.rs crates/core/src/domain.rs crates/core/src/generate.rs crates/core/src/ops.rs crates/core/src/problem.rs crates/core/src/solve/mod.rs crates/core/src/solve/branch_bound.rs crates/core/src/solve/bucket.rs crates/core/src/solve/config.rs crates/core/src/solve/enumeration.rs crates/core/src/solve/parallel.rs crates/core/src/solve/pareto.rs crates/core/src/solve/preprocess.rs crates/core/src/solve/stats.rs crates/core/src/testutil.rs crates/core/src/value.rs crates/core/src/var.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_core-d04193ce13068c2a.rmeta: crates/core/src/lib.rs crates/core/src/assignment.rs crates/core/src/compile.rs crates/core/src/constraint.rs crates/core/src/cylindric.rs crates/core/src/domain.rs crates/core/src/generate.rs crates/core/src/ops.rs crates/core/src/problem.rs crates/core/src/solve/mod.rs crates/core/src/solve/branch_bound.rs crates/core/src/solve/bucket.rs crates/core/src/solve/config.rs crates/core/src/solve/enumeration.rs crates/core/src/solve/parallel.rs crates/core/src/solve/pareto.rs crates/core/src/solve/preprocess.rs crates/core/src/solve/stats.rs crates/core/src/testutil.rs crates/core/src/value.rs crates/core/src/var.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/assignment.rs:
crates/core/src/compile.rs:
crates/core/src/constraint.rs:
crates/core/src/cylindric.rs:
crates/core/src/domain.rs:
crates/core/src/generate.rs:
crates/core/src/ops.rs:
crates/core/src/problem.rs:
crates/core/src/solve/mod.rs:
crates/core/src/solve/branch_bound.rs:
crates/core/src/solve/bucket.rs:
crates/core/src/solve/config.rs:
crates/core/src/solve/enumeration.rs:
crates/core/src/solve/parallel.rs:
crates/core/src/solve/pareto.rs:
crates/core/src/solve/preprocess.rs:
crates/core/src/solve/stats.rs:
crates/core/src/testutil.rs:
crates/core/src/value.rs:
crates/core/src/var.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
