/root/repo/target/debug/deps/chaos_properties-c5baf0e8472ecc62.d: crates/nmsccp/tests/chaos_properties.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_properties-c5baf0e8472ecc62.rmeta: crates/nmsccp/tests/chaos_properties.rs Cargo.toml

crates/nmsccp/tests/chaos_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
