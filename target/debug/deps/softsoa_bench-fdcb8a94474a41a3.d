/root/repo/target/debug/deps/softsoa_bench-fdcb8a94474a41a3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/softsoa_bench-fdcb8a94474a41a3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
