/root/repo/target/debug/deps/fig5_fuzzy_agreement-876d718102954ce7.d: crates/bench/benches/fig5_fuzzy_agreement.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_fuzzy_agreement-876d718102954ce7.rmeta: crates/bench/benches/fig5_fuzzy_agreement.rs Cargo.toml

crates/bench/benches/fig5_fuzzy_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
