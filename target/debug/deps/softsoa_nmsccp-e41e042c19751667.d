/root/repo/target/debug/deps/softsoa_nmsccp-e41e042c19751667.d: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs

/root/repo/target/debug/deps/libsoftsoa_nmsccp-e41e042c19751667.rlib: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs

/root/repo/target/debug/deps/libsoftsoa_nmsccp-e41e042c19751667.rmeta: crates/nmsccp/src/lib.rs crates/nmsccp/src/agent.rs crates/nmsccp/src/checked.rs crates/nmsccp/src/concurrent.rs crates/nmsccp/src/explore.rs crates/nmsccp/src/interp.rs crates/nmsccp/src/parser.rs crates/nmsccp/src/resilience.rs crates/nmsccp/src/semantics.rs crates/nmsccp/src/store.rs crates/nmsccp/src/timed.rs

crates/nmsccp/src/lib.rs:
crates/nmsccp/src/agent.rs:
crates/nmsccp/src/checked.rs:
crates/nmsccp/src/concurrent.rs:
crates/nmsccp/src/explore.rs:
crates/nmsccp/src/interp.rs:
crates/nmsccp/src/parser.rs:
crates/nmsccp/src/resilience.rs:
crates/nmsccp/src/semantics.rs:
crates/nmsccp/src/store.rs:
crates/nmsccp/src/timed.rs:
