/root/repo/target/debug/deps/proptest_laws-259c4813606bfb47.d: crates/semiring/tests/proptest_laws.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_laws-259c4813606bfb47.rmeta: crates/semiring/tests/proptest_laws.rs Cargo.toml

crates/semiring/tests/proptest_laws.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
