/root/repo/target/debug/deps/softsoa-71627d043cb50577.d: src/lib.rs

/root/repo/target/debug/deps/softsoa-71627d043cb50577: src/lib.rs

src/lib.rs:
