/root/repo/target/debug/deps/sec5_crisp_integrity-6e8eaa329abc310c.d: crates/bench/benches/sec5_crisp_integrity.rs Cargo.toml

/root/repo/target/debug/deps/libsec5_crisp_integrity-6e8eaa329abc310c.rmeta: crates/bench/benches/sec5_crisp_integrity.rs Cargo.toml

crates/bench/benches/sec5_crisp_integrity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
