/root/repo/target/debug/deps/softsoa_core-1830aba82fc84681.d: crates/core/src/lib.rs crates/core/src/assignment.rs crates/core/src/compile.rs crates/core/src/constraint.rs crates/core/src/cylindric.rs crates/core/src/domain.rs crates/core/src/generate.rs crates/core/src/ops.rs crates/core/src/problem.rs crates/core/src/solve/mod.rs crates/core/src/solve/branch_bound.rs crates/core/src/solve/bucket.rs crates/core/src/solve/config.rs crates/core/src/solve/enumeration.rs crates/core/src/solve/parallel.rs crates/core/src/solve/pareto.rs crates/core/src/solve/preprocess.rs crates/core/src/solve/stats.rs crates/core/src/value.rs crates/core/src/var.rs

/root/repo/target/debug/deps/libsoftsoa_core-1830aba82fc84681.rlib: crates/core/src/lib.rs crates/core/src/assignment.rs crates/core/src/compile.rs crates/core/src/constraint.rs crates/core/src/cylindric.rs crates/core/src/domain.rs crates/core/src/generate.rs crates/core/src/ops.rs crates/core/src/problem.rs crates/core/src/solve/mod.rs crates/core/src/solve/branch_bound.rs crates/core/src/solve/bucket.rs crates/core/src/solve/config.rs crates/core/src/solve/enumeration.rs crates/core/src/solve/parallel.rs crates/core/src/solve/pareto.rs crates/core/src/solve/preprocess.rs crates/core/src/solve/stats.rs crates/core/src/value.rs crates/core/src/var.rs

/root/repo/target/debug/deps/libsoftsoa_core-1830aba82fc84681.rmeta: crates/core/src/lib.rs crates/core/src/assignment.rs crates/core/src/compile.rs crates/core/src/constraint.rs crates/core/src/cylindric.rs crates/core/src/domain.rs crates/core/src/generate.rs crates/core/src/ops.rs crates/core/src/problem.rs crates/core/src/solve/mod.rs crates/core/src/solve/branch_bound.rs crates/core/src/solve/bucket.rs crates/core/src/solve/config.rs crates/core/src/solve/enumeration.rs crates/core/src/solve/parallel.rs crates/core/src/solve/pareto.rs crates/core/src/solve/preprocess.rs crates/core/src/solve/stats.rs crates/core/src/value.rs crates/core/src/var.rs

crates/core/src/lib.rs:
crates/core/src/assignment.rs:
crates/core/src/compile.rs:
crates/core/src/constraint.rs:
crates/core/src/cylindric.rs:
crates/core/src/domain.rs:
crates/core/src/generate.rs:
crates/core/src/ops.rs:
crates/core/src/problem.rs:
crates/core/src/solve/mod.rs:
crates/core/src/solve/branch_bound.rs:
crates/core/src/solve/bucket.rs:
crates/core/src/solve/config.rs:
crates/core/src/solve/enumeration.rs:
crates/core/src/solve/parallel.rs:
crates/core/src/solve/pareto.rs:
crates/core/src/solve/preprocess.rs:
crates/core/src/solve/stats.rs:
crates/core/src/value.rs:
crates/core/src/var.rs:
