/root/repo/target/debug/deps/parser_robustness-6f96ad4409fb90ca.d: crates/nmsccp/tests/parser_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libparser_robustness-6f96ad4409fb90ca.rmeta: crates/nmsccp/tests/parser_robustness.rs Cargo.toml

crates/nmsccp/tests/parser_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
