/root/repo/target/debug/deps/softsoa_semiring-f0f4ce8ee374d4d1.d: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_semiring-f0f4ce8ee374d4d1.rmeta: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs Cargo.toml

crates/semiring/src/lib.rs:
crates/semiring/src/boolean.rs:
crates/semiring/src/extra.rs:
crates/semiring/src/fuzzy.rs:
crates/semiring/src/laws.rs:
crates/semiring/src/probabilistic.rs:
crates/semiring/src/product.rs:
crates/semiring/src/set.rs:
crates/semiring/src/traits.rs:
crates/semiring/src/unit.rs:
crates/semiring/src/weighted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
