/root/repo/target/debug/deps/softsoa-6deb9b568b51b675.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa-6deb9b568b51b675.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
