/root/repo/target/debug/deps/language_properties-aeea9a56777df293.d: crates/nmsccp/tests/language_properties.rs

/root/repo/target/debug/deps/language_properties-aeea9a56777df293: crates/nmsccp/tests/language_properties.rs

crates/nmsccp/tests/language_properties.rs:
