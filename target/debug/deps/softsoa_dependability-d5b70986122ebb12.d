/root/repo/target/debug/deps/softsoa_dependability-d5b70986122ebb12.d: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

/root/repo/target/debug/deps/softsoa_dependability-d5b70986122ebb12: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

crates/dependability/src/lib.rs:
crates/dependability/src/attributes.rs:
crates/dependability/src/availability.rs:
crates/dependability/src/fault.rs:
crates/dependability/src/photo.rs:
crates/dependability/src/refinement.rs:
