/root/repo/target/debug/deps/extended_semirings-906220702a4f19b3.d: tests/extended_semirings.rs Cargo.toml

/root/repo/target/debug/deps/libextended_semirings-906220702a4f19b3.rmeta: tests/extended_semirings.rs Cargo.toml

tests/extended_semirings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
