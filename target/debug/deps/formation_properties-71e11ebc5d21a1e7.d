/root/repo/target/debug/deps/formation_properties-71e11ebc5d21a1e7.d: crates/coalition/tests/formation_properties.rs Cargo.toml

/root/repo/target/debug/deps/libformation_properties-71e11ebc5d21a1e7.rmeta: crates/coalition/tests/formation_properties.rs Cargo.toml

crates/coalition/tests/formation_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
