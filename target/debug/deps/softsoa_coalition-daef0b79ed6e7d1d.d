/root/repo/target/debug/deps/softsoa_coalition-daef0b79ed6e7d1d.d: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs

/root/repo/target/debug/deps/softsoa_coalition-daef0b79ed6e7d1d: crates/coalition/src/lib.rs crates/coalition/src/coalition.rs crates/coalition/src/network.rs crates/coalition/src/propagate.rs crates/coalition/src/scsp.rs crates/coalition/src/solvers.rs crates/coalition/src/stability.rs

crates/coalition/src/lib.rs:
crates/coalition/src/coalition.rs:
crates/coalition/src/network.rs:
crates/coalition/src/propagate.rs:
crates/coalition/src/scsp.rs:
crates/coalition/src/solvers.rs:
crates/coalition/src/stability.rs:
