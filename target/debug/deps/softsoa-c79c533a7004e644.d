/root/repo/target/debug/deps/softsoa-c79c533a7004e644.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa-c79c533a7004e644.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
