/root/repo/target/debug/deps/security_rights-72c3451a34f4c6a6.d: tests/security_rights.rs

/root/repo/target/debug/deps/security_rights-72c3451a34f4c6a6: tests/security_rights.rs

tests/security_rights.rs:
