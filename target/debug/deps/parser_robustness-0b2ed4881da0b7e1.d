/root/repo/target/debug/deps/parser_robustness-0b2ed4881da0b7e1.d: crates/nmsccp/tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-0b2ed4881da0b7e1: crates/nmsccp/tests/parser_robustness.rs

crates/nmsccp/tests/parser_robustness.rs:
