/root/repo/target/debug/deps/extended_semirings-375cf959d55710ad.d: tests/extended_semirings.rs

/root/repo/target/debug/deps/extended_semirings-375cf959d55710ad: tests/extended_semirings.rs

tests/extended_semirings.rs:
