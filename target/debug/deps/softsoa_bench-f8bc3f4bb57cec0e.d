/root/repo/target/debug/deps/softsoa_bench-f8bc3f4bb57cec0e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsoftsoa_bench-f8bc3f4bb57cec0e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsoftsoa_bench-f8bc3f4bb57cec0e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
