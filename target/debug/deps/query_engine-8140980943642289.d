/root/repo/target/debug/deps/query_engine-8140980943642289.d: tests/query_engine.rs

/root/repo/target/debug/deps/query_engine-8140980943642289: tests/query_engine.rs

tests/query_engine.rs:
