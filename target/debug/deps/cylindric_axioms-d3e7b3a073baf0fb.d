/root/repo/target/debug/deps/cylindric_axioms-d3e7b3a073baf0fb.d: crates/core/tests/cylindric_axioms.rs Cargo.toml

/root/repo/target/debug/deps/libcylindric_axioms-d3e7b3a073baf0fb.rmeta: crates/core/tests/cylindric_axioms.rs Cargo.toml

crates/core/tests/cylindric_axioms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
