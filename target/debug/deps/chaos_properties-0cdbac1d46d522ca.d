/root/repo/target/debug/deps/chaos_properties-0cdbac1d46d522ca.d: crates/nmsccp/tests/chaos_properties.rs

/root/repo/target/debug/deps/chaos_properties-0cdbac1d46d522ca: crates/nmsccp/tests/chaos_properties.rs

crates/nmsccp/tests/chaos_properties.rs:
