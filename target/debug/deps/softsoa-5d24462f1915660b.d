/root/repo/target/debug/deps/softsoa-5d24462f1915660b.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/softsoa-5d24462f1915660b: crates/cli/src/main.rs

crates/cli/src/main.rs:
