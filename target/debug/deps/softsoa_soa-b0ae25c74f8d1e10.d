/root/repo/target/debug/deps/softsoa_soa-b0ae25c74f8d1e10.d: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs

/root/repo/target/debug/deps/softsoa_soa-b0ae25c74f8d1e10: crates/soa/src/lib.rs crates/soa/src/broker.rs crates/soa/src/chaos.rs crates/soa/src/compose.rs crates/soa/src/orchestrator.rs crates/soa/src/qos.rs crates/soa/src/query.rs crates/soa/src/registry.rs crates/soa/src/sim.rs

crates/soa/src/lib.rs:
crates/soa/src/broker.rs:
crates/soa/src/chaos.rs:
crates/soa/src/compose.rs:
crates/soa/src/orchestrator.rs:
crates/soa/src/qos.rs:
crates/soa/src/query.rs:
crates/soa/src/registry.rs:
crates/soa/src/sim.rs:
