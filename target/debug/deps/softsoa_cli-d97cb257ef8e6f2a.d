/root/repo/target/debug/deps/softsoa_cli-d97cb257ef8e6f2a.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_cli-d97cb257ef8e6f2a.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/format.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
