/root/repo/target/debug/deps/softsoa_dependability-a36079acb20e8613.d: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_dependability-a36079acb20e8613.rmeta: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs Cargo.toml

crates/dependability/src/lib.rs:
crates/dependability/src/attributes.rs:
crates/dependability/src/availability.rs:
crates/dependability/src/fault.rs:
crates/dependability/src/photo.rs:
crates/dependability/src/refinement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
