/root/repo/target/debug/deps/paper_experiments-8df9a10c4e94add8.d: tests/paper_experiments.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_experiments-8df9a10c4e94add8.rmeta: tests/paper_experiments.rs Cargo.toml

tests/paper_experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
