/root/repo/target/debug/deps/solver_properties-929852124cec5baa.d: tests/solver_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsolver_properties-929852124cec5baa.rmeta: tests/solver_properties.rs Cargo.toml

tests/solver_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
