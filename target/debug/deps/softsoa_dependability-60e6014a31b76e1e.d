/root/repo/target/debug/deps/softsoa_dependability-60e6014a31b76e1e.d: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_dependability-60e6014a31b76e1e.rmeta: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs Cargo.toml

crates/dependability/src/lib.rs:
crates/dependability/src/attributes.rs:
crates/dependability/src/availability.rs:
crates/dependability/src/fault.rs:
crates/dependability/src/photo.rs:
crates/dependability/src/refinement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
