/root/repo/target/debug/deps/ex1_tell_negotiation-d0415e577f7e9905.d: crates/bench/benches/ex1_tell_negotiation.rs Cargo.toml

/root/repo/target/debug/deps/libex1_tell_negotiation-d0415e577f7e9905.rmeta: crates/bench/benches/ex1_tell_negotiation.rs Cargo.toml

crates/bench/benches/ex1_tell_negotiation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
