/root/repo/target/debug/deps/ex2_retract_relaxation-8cdd7e3745581510.d: crates/bench/benches/ex2_retract_relaxation.rs Cargo.toml

/root/repo/target/debug/deps/libex2_retract_relaxation-8cdd7e3745581510.rmeta: crates/bench/benches/ex2_retract_relaxation.rs Cargo.toml

crates/bench/benches/ex2_retract_relaxation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
