/root/repo/target/debug/deps/sec6_coalition_formation-fea9431c250b3c9b.d: crates/bench/benches/sec6_coalition_formation.rs Cargo.toml

/root/repo/target/debug/deps/libsec6_coalition_formation-fea9431c250b3c9b.rmeta: crates/bench/benches/sec6_coalition_formation.rs Cargo.toml

crates/bench/benches/sec6_coalition_formation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
