/root/repo/target/debug/deps/language-220a317afe09b042.d: tests/language.rs

/root/repo/target/debug/deps/language-220a317afe09b042: tests/language.rs

tests/language.rs:
