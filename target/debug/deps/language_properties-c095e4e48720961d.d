/root/repo/target/debug/deps/language_properties-c095e4e48720961d.d: crates/nmsccp/tests/language_properties.rs Cargo.toml

/root/repo/target/debug/deps/liblanguage_properties-c095e4e48720961d.rmeta: crates/nmsccp/tests/language_properties.rs Cargo.toml

crates/nmsccp/tests/language_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
