/root/repo/target/debug/deps/softsoa-c6fc60839a6c173b.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/softsoa-c6fc60839a6c173b: crates/cli/src/main.rs

crates/cli/src/main.rs:
