/root/repo/target/debug/deps/semiring_ops-c9456fb0451324f5.d: crates/bench/benches/semiring_ops.rs Cargo.toml

/root/repo/target/debug/deps/libsemiring_ops-c9456fb0451324f5.rmeta: crates/bench/benches/semiring_ops.rs Cargo.toml

crates/bench/benches/semiring_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
