/root/repo/target/debug/deps/sec5_probabilistic_integrity-20635ce2e6f21206.d: crates/bench/benches/sec5_probabilistic_integrity.rs Cargo.toml

/root/repo/target/debug/deps/libsec5_probabilistic_integrity-20635ce2e6f21206.rmeta: crates/bench/benches/sec5_probabilistic_integrity.rs Cargo.toml

crates/bench/benches/sec5_probabilistic_integrity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
