/root/repo/target/debug/deps/softsoa-a9766e6d0764e812.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa-a9766e6d0764e812.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
