/root/repo/target/debug/deps/softsoa_semiring-74bee05b88e96af1.d: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs

/root/repo/target/debug/deps/softsoa_semiring-74bee05b88e96af1: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs

crates/semiring/src/lib.rs:
crates/semiring/src/boolean.rs:
crates/semiring/src/extra.rs:
crates/semiring/src/fuzzy.rs:
crates/semiring/src/laws.rs:
crates/semiring/src/probabilistic.rs:
crates/semiring/src/product.rs:
crates/semiring/src/set.rs:
crates/semiring/src/traits.rs:
crates/semiring/src/unit.rs:
crates/semiring/src/weighted.rs:
