/root/repo/target/debug/deps/softsoa_cli-205f7490856adf38.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

/root/repo/target/debug/deps/libsoftsoa_cli-205f7490856adf38.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

/root/repo/target/debug/deps/libsoftsoa_cli-205f7490856adf38.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/format.rs:
