/root/repo/target/debug/deps/softsoa-e4dd2d9c03fa9a74.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa-e4dd2d9c03fa9a74.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
