/root/repo/target/debug/deps/proptest-bdcf7e2e6952d05b.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-bdcf7e2e6952d05b.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-bdcf7e2e6952d05b.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
