/root/repo/target/debug/deps/softsoa-c6b52f898d315bf4.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/softsoa-c6b52f898d315bf4: crates/cli/src/main.rs

crates/cli/src/main.rs:
