/root/repo/target/debug/deps/softsoa_bench-1cc9fa2441d9efd4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoftsoa_bench-1cc9fa2441d9efd4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
