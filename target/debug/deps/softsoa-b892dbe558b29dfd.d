/root/repo/target/debug/deps/softsoa-b892dbe558b29dfd.d: src/lib.rs

/root/repo/target/debug/deps/libsoftsoa-b892dbe558b29dfd.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoftsoa-b892dbe558b29dfd.rmeta: src/lib.rs

src/lib.rs:
