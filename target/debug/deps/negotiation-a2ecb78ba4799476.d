/root/repo/target/debug/deps/negotiation-a2ecb78ba4799476.d: tests/negotiation.rs Cargo.toml

/root/repo/target/debug/deps/libnegotiation-a2ecb78ba4799476.rmeta: tests/negotiation.rs Cargo.toml

tests/negotiation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
