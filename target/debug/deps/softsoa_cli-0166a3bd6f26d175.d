/root/repo/target/debug/deps/softsoa_cli-0166a3bd6f26d175.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

/root/repo/target/debug/deps/softsoa_cli-0166a3bd6f26d175: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/format.rs:
