/root/repo/target/debug/deps/solver_properties-0f43b82a9ec6287b.d: tests/solver_properties.rs

/root/repo/target/debug/deps/solver_properties-0f43b82a9ec6287b: tests/solver_properties.rs

tests/solver_properties.rs:
