/root/repo/target/debug/deps/softsoa_dependability-e0e56afb27a38cef.d: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

/root/repo/target/debug/deps/softsoa_dependability-e0e56afb27a38cef: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

crates/dependability/src/lib.rs:
crates/dependability/src/attributes.rs:
crates/dependability/src/availability.rs:
crates/dependability/src/fault.rs:
crates/dependability/src/photo.rs:
crates/dependability/src/refinement.rs:
