/root/repo/target/debug/deps/negotiation-0e5809e3bf3e628b.d: tests/negotiation.rs

/root/repo/target/debug/deps/negotiation-0e5809e3bf3e628b: tests/negotiation.rs

tests/negotiation.rs:
