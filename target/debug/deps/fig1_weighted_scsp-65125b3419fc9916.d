/root/repo/target/debug/deps/fig1_weighted_scsp-65125b3419fc9916.d: crates/bench/benches/fig1_weighted_scsp.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_weighted_scsp-65125b3419fc9916.rmeta: crates/bench/benches/fig1_weighted_scsp.rs Cargo.toml

crates/bench/benches/fig1_weighted_scsp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
