/root/repo/target/debug/deps/security_rights-261dddf1d9b3cae1.d: tests/security_rights.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_rights-261dddf1d9b3cae1.rmeta: tests/security_rights.rs Cargo.toml

tests/security_rights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
