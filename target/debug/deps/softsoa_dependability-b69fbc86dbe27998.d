/root/repo/target/debug/deps/softsoa_dependability-b69fbc86dbe27998.d: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

/root/repo/target/debug/deps/libsoftsoa_dependability-b69fbc86dbe27998.rlib: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

/root/repo/target/debug/deps/libsoftsoa_dependability-b69fbc86dbe27998.rmeta: crates/dependability/src/lib.rs crates/dependability/src/attributes.rs crates/dependability/src/availability.rs crates/dependability/src/fault.rs crates/dependability/src/photo.rs crates/dependability/src/refinement.rs

crates/dependability/src/lib.rs:
crates/dependability/src/attributes.rs:
crates/dependability/src/availability.rs:
crates/dependability/src/fault.rs:
crates/dependability/src/photo.rs:
crates/dependability/src/refinement.rs:
