/root/repo/target/debug/deps/language-35ddc5cebe05f27a.d: tests/language.rs Cargo.toml

/root/repo/target/debug/deps/liblanguage-35ddc5cebe05f27a.rmeta: tests/language.rs Cargo.toml

tests/language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
