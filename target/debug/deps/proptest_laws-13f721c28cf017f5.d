/root/repo/target/debug/deps/proptest_laws-13f721c28cf017f5.d: crates/semiring/tests/proptest_laws.rs

/root/repo/target/debug/deps/proptest_laws-13f721c28cf017f5: crates/semiring/tests/proptest_laws.rs

crates/semiring/tests/proptest_laws.rs:
