/root/repo/target/debug/deps/softsoa_cli-d41aeff8f8b76160.d: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

/root/repo/target/debug/deps/libsoftsoa_cli-d41aeff8f8b76160.rlib: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

/root/repo/target/debug/deps/libsoftsoa_cli-d41aeff8f8b76160.rmeta: crates/cli/src/lib.rs crates/cli/src/commands.rs crates/cli/src/format.rs

crates/cli/src/lib.rs:
crates/cli/src/commands.rs:
crates/cli/src/format.rs:
