/root/repo/target/debug/deps/nmsccp_throughput-f63121a1a54332f4.d: crates/bench/benches/nmsccp_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libnmsccp_throughput-f63121a1a54332f4.rmeta: crates/bench/benches/nmsccp_throughput.rs Cargo.toml

crates/bench/benches/nmsccp_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
