/root/repo/target/debug/deps/softsoa_semiring-90c5e92c8d6d77ad.d: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs

/root/repo/target/debug/deps/libsoftsoa_semiring-90c5e92c8d6d77ad.rlib: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs

/root/repo/target/debug/deps/libsoftsoa_semiring-90c5e92c8d6d77ad.rmeta: crates/semiring/src/lib.rs crates/semiring/src/boolean.rs crates/semiring/src/extra.rs crates/semiring/src/fuzzy.rs crates/semiring/src/laws.rs crates/semiring/src/probabilistic.rs crates/semiring/src/product.rs crates/semiring/src/set.rs crates/semiring/src/traits.rs crates/semiring/src/unit.rs crates/semiring/src/weighted.rs

crates/semiring/src/lib.rs:
crates/semiring/src/boolean.rs:
crates/semiring/src/extra.rs:
crates/semiring/src/fuzzy.rs:
crates/semiring/src/laws.rs:
crates/semiring/src/probabilistic.rs:
crates/semiring/src/product.rs:
crates/semiring/src/set.rs:
crates/semiring/src/traits.rs:
crates/semiring/src/unit.rs:
crates/semiring/src/weighted.rs:
