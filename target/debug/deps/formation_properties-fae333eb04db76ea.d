/root/repo/target/debug/deps/formation_properties-fae333eb04db76ea.d: crates/coalition/tests/formation_properties.rs

/root/repo/target/debug/deps/formation_properties-fae333eb04db76ea: crates/coalition/tests/formation_properties.rs

crates/coalition/tests/formation_properties.rs:
