/root/repo/target/debug/examples/service_query-35acd246c4a6a137.d: examples/service_query.rs Cargo.toml

/root/repo/target/debug/examples/libservice_query-35acd246c4a6a137.rmeta: examples/service_query.rs Cargo.toml

examples/service_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
