/root/repo/target/debug/examples/sla_negotiation-eb1831586fd14f5d.d: examples/sla_negotiation.rs Cargo.toml

/root/repo/target/debug/examples/libsla_negotiation-eb1831586fd14f5d.rmeta: examples/sla_negotiation.rs Cargo.toml

examples/sla_negotiation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
