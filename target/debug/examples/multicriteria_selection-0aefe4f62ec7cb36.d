/root/repo/target/debug/examples/multicriteria_selection-0aefe4f62ec7cb36.d: examples/multicriteria_selection.rs Cargo.toml

/root/repo/target/debug/examples/libmulticriteria_selection-0aefe4f62ec7cb36.rmeta: examples/multicriteria_selection.rs Cargo.toml

examples/multicriteria_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
