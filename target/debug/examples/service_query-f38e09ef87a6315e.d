/root/repo/target/debug/examples/service_query-f38e09ef87a6315e.d: examples/service_query.rs

/root/repo/target/debug/examples/service_query-f38e09ef87a6315e: examples/service_query.rs

examples/service_query.rs:
