/root/repo/target/debug/examples/sla_negotiation-70db62540c04f5e3.d: examples/sla_negotiation.rs

/root/repo/target/debug/examples/sla_negotiation-70db62540c04f5e3: examples/sla_negotiation.rs

examples/sla_negotiation.rs:
