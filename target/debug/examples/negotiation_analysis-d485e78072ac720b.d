/root/repo/target/debug/examples/negotiation_analysis-d485e78072ac720b.d: examples/negotiation_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libnegotiation_analysis-d485e78072ac720b.rmeta: examples/negotiation_analysis.rs Cargo.toml

examples/negotiation_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
