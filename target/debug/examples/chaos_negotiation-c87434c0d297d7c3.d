/root/repo/target/debug/examples/chaos_negotiation-c87434c0d297d7c3.d: examples/chaos_negotiation.rs

/root/repo/target/debug/examples/chaos_negotiation-c87434c0d297d7c3: examples/chaos_negotiation.rs

examples/chaos_negotiation.rs:
