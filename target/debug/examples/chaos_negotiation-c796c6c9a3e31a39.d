/root/repo/target/debug/examples/chaos_negotiation-c796c6c9a3e31a39.d: examples/chaos_negotiation.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_negotiation-c796c6c9a3e31a39.rmeta: examples/chaos_negotiation.rs Cargo.toml

examples/chaos_negotiation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
