/root/repo/target/debug/examples/multicriteria_selection-9c86033285debc38.d: examples/multicriteria_selection.rs

/root/repo/target/debug/examples/multicriteria_selection-9c86033285debc38: examples/multicriteria_selection.rs

examples/multicriteria_selection.rs:
