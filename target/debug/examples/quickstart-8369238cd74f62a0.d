/root/repo/target/debug/examples/quickstart-8369238cd74f62a0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8369238cd74f62a0: examples/quickstart.rs

examples/quickstart.rs:
