/root/repo/target/debug/examples/photo_editing_integrity-a7530a1a3260b352.d: examples/photo_editing_integrity.rs

/root/repo/target/debug/examples/photo_editing_integrity-a7530a1a3260b352: examples/photo_editing_integrity.rs

examples/photo_editing_integrity.rs:
