/root/repo/target/debug/examples/trustworthy_coalitions-36034da72e15e12d.d: examples/trustworthy_coalitions.rs Cargo.toml

/root/repo/target/debug/examples/libtrustworthy_coalitions-36034da72e15e12d.rmeta: examples/trustworthy_coalitions.rs Cargo.toml

examples/trustworthy_coalitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
