/root/repo/target/debug/examples/photo_editing_integrity-9cec67f8b23799bd.d: examples/photo_editing_integrity.rs Cargo.toml

/root/repo/target/debug/examples/libphoto_editing_integrity-9cec67f8b23799bd.rmeta: examples/photo_editing_integrity.rs Cargo.toml

examples/photo_editing_integrity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
