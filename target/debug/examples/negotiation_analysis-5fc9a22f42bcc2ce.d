/root/repo/target/debug/examples/negotiation_analysis-5fc9a22f42bcc2ce.d: examples/negotiation_analysis.rs

/root/repo/target/debug/examples/negotiation_analysis-5fc9a22f42bcc2ce: examples/negotiation_analysis.rs

examples/negotiation_analysis.rs:
