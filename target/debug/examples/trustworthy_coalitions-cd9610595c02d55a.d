/root/repo/target/debug/examples/trustworthy_coalitions-cd9610595c02d55a.d: examples/trustworthy_coalitions.rs

/root/repo/target/debug/examples/trustworthy_coalitions-cd9610595c02d55a: examples/trustworthy_coalitions.rs

examples/trustworthy_coalitions.rs:
