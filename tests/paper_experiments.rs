//! End-to-end reproduction of every numbered artefact of the paper
//! (experiments E1–E8 of DESIGN.md), through the public façade.

use softsoa::coalition::{
    exact_formation, find_blocking, is_stable, scsp_formation, stabilize, FormationConfig,
    Partition, TrustComposition, TrustNetwork,
};
use softsoa::core::{Assignment, Constraint, Domain, Domains, Scsp, Val, Var};
use softsoa::dependability::{check_refinement, locally_refines, meets_requirement, photo};
use softsoa::nmsccp::{
    parse_agent, Interpreter, Interval, Outcome, ParseEnv, Policy, Program, Store,
};
use softsoa::semiring::{Fuzzy, Unit, WeightedInt};
use softsoa::soa::{
    Broker, NegotiationRequest, OfferShape, QosDocument, QosOffer, Registry, ServiceDescription,
};
use softsoa_dependability::Attribute;

/// E1 — Fig. 1: solution ⟨a⟩ → 7, ⟨b⟩ → 16, blevel = 7.
#[test]
fn e1_fig1_weighted_scsp() {
    let x = Var::new("x");
    let y = Var::new("y");
    let p = Scsp::new(WeightedInt)
        .with_domain(x.clone(), Domain::syms(["a", "b"]))
        .with_domain(y.clone(), Domain::syms(["a", "b"]))
        .with_constraint(Constraint::table(
            WeightedInt,
            std::slice::from_ref(&x),
            [(vec![Val::sym("a")], 1), (vec![Val::sym("b")], 9)],
            u64::MAX,
        ))
        .with_constraint(Constraint::table(
            WeightedInt,
            &[x.clone(), y.clone()],
            [
                (vec![Val::sym("a"), Val::sym("a")], 5),
                (vec![Val::sym("a"), Val::sym("b")], 1),
                (vec![Val::sym("b"), Val::sym("a")], 2),
                (vec![Val::sym("b"), Val::sym("b")], 2),
            ],
            u64::MAX,
        ))
        .with_constraint(Constraint::table(
            WeightedInt,
            std::slice::from_ref(&y),
            [(vec![Val::sym("a")], 5), (vec![Val::sym("b")], 5)],
            u64::MAX,
        ))
        .of_interest([x]);

    let solution = p.solve().unwrap();
    let table = solution.solution_constraint().unwrap();
    assert_eq!(table.eval(&Assignment::new().bind("x", "a")), 7);
    assert_eq!(table.eval(&Assignment::new().bind("x", "b")), 16);
    assert_eq!(*solution.blevel(), 7);
    // The paper: "the blevel ... is 7 (related to the solution X = a,
    // Y = b)".
    assert_eq!(
        solution.best_assignment().unwrap().get(&Var::new("x")),
        Some(&Val::sym("a"))
    );
}

/// E2 — Fig. 5: the fuzzy negotiation agrees exactly at level 0.5.
#[test]
fn e2_fig5_fuzzy_agreement() {
    let mut registry = Registry::new();
    registry.publish(ServiceDescription::new(
        "svc",
        "provider",
        "web-service",
        QosDocument::new("svc").with_offer(QosOffer {
            attribute: Attribute::Reliability,
            variable: "x".into(),
            shape: OfferShape::Piecewise {
                points: vec![(1, 1.0), (9, 0.0)],
            },
        }),
    ));
    let request = NegotiationRequest {
        capability: "web-service".into(),
        variable: Var::new("x"),
        domain: Domain::ints(1..=9),
        constraint: Constraint::unary(Fuzzy, "x", |v| {
            Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
        }),
        acceptance: Interval::any(&Fuzzy),
    };
    let sla = Broker::new(Fuzzy, registry)
        .negotiate(&request, QosOffer::to_fuzzy)
        .unwrap();
    assert_eq!(sla.agreed_level, Unit::new(0.5).unwrap());
    let (eta, _) = sla.binding.unwrap();
    assert_eq!(eta.get(&Var::new("x")).unwrap().as_int(), Some(5));
}

fn negotiation_env() -> ParseEnv<WeightedInt> {
    let lin = |a: u64, b: u64| {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
    };
    ParseEnv::new(WeightedInt)
        .with_constraint("c1", lin(1, 3))
        .with_constraint("c3", lin(2, 0))
        .with_constraint("c4", lin(1, 5))
        .with_constraint(
            "c2",
            Constraint::unary(WeightedInt, "y", |v| v.as_int().unwrap() as u64 + 1),
        )
        .with_constraint("one", Constraint::always(WeightedInt))
        .with_level("two", 2u64)
        .with_level("four", 4u64)
        .with_level("ten", 10u64)
}

fn negotiation_domains() -> Domains {
    Domains::new()
        .with("x", Domain::ints(0..=10))
        .with("y", Domain::ints(0..=10))
}

/// E3 — Example 1: σ⇓∅ = 5 ∉ [1, 4], so P2 never succeeds.
#[test]
fn e3_example1_no_agreement() {
    let agent = parse_agent(
        "tell(c4) success || tell(c3) ask(one) ->[four, two] success",
        &negotiation_env(),
    )
    .unwrap();
    let report = Interpreter::new(Program::new())
        .run(agent, Store::empty(WeightedInt, negotiation_domains()))
        .unwrap();
    match report.outcome {
        Outcome::Deadlock { store, .. } => {
            assert_eq!(store.consistency().unwrap(), 5);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// E4 — Example 2: retract(c1) relaxes the store to 2x + 2, σ⇓∅ = 2,
/// and both parties succeed.
#[test]
fn e4_example2_retract_agreement() {
    let agent = parse_agent(
        "tell(c4) retract(c1) ->[ten, two] success || tell(c3) ask(one) ->[four, two] success",
        &negotiation_env(),
    )
    .unwrap();
    let report = Interpreter::new(Program::new())
        .with_policy(Policy::Random(3))
        .run(agent, Store::empty(WeightedInt, negotiation_domains()))
        .unwrap();
    match report.outcome {
        Outcome::Success { store } => {
            assert_eq!(store.consistency().unwrap(), 2);
            // σ ≡ 2x + 2 pointwise.
            for x in 0..=10u64 {
                let eta = Assignment::new().bind("x", x as i64);
                assert_eq!(store.sigma().eval(&eta), 2 * x + 2);
            }
        }
        other => panic!("expected success, got {other:?}"),
    }
}

/// E5 — Example 3: update{x}(c2) leaves the store ≡ y + 4.
#[test]
fn e5_example3_update() {
    let agent = parse_agent("tell(c1) update{x}(c2) success", &negotiation_env()).unwrap();
    let report = Interpreter::new(Program::new())
        .run(agent, Store::empty(WeightedInt, negotiation_domains()))
        .unwrap();
    match report.outcome {
        Outcome::Success { store } => {
            assert_eq!(store.consistency().unwrap(), 4);
            assert!(!store.sigma().scope().contains(&Var::new("x")));
            for y in 0..=10u64 {
                let eta = Assignment::new().bind("y", y as i64);
                assert_eq!(store.sigma().eval(&eta), y + 4);
            }
        }
        other => panic!("expected success, got {other:?}"),
    }
}

/// E6 — Sec. 5 crisp integrity: Imp1 refines Memory, Imp2 does not.
#[test]
fn e6_crisp_integrity() {
    let doms = photo::domains(4096, 512);
    assert!(locally_refines(&photo::imp1(), &photo::memory(), &photo::interface(), &doms).unwrap());
    let report =
        check_refinement(&photo::imp2(), &photo::memory(), &photo::interface(), &doms).unwrap();
    assert!(!report.holds());
    assert!(report.counterexample().is_some());
}

/// E7 — Sec. 5 quantitative: c1(4096, 1024) = 0.96 and requirement
/// checking in the probabilistic semiring.
#[test]
fn e7_probabilistic_integrity() {
    assert!((photo::stage_reliability(4096, 1024).get() - 0.96).abs() < 1e-12);
    let doms = photo::domains(4096, 1024);
    let imp3 = photo::imp3();
    assert!(meets_requirement(&imp3, &photo::memory_prob(Unit::MIN), &doms).unwrap());
    assert!(!meets_requirement(&imp3, &photo::memory_prob(Unit::MAX), &doms).unwrap());
    // The most reliable pipeline run for a 2 Mb input compresses once
    // to ≤ 1 Mb and stays fully reliable afterwards: level 0.98.
    let (eta, level) = photo::best_configuration(2048, &doms).unwrap();
    assert!((level.get() - 0.98).abs() < 1e-12);
    assert_eq!(eta.get(&photo::outcomp()).unwrap().as_int(), Some(2048));
}

/// E8 — Sec. 6: the Fig. 10 blocking situation, its repair, and the
/// agreement between the paper's SCSP encoding and direct search.
#[test]
fn e8_trustworthy_coalitions() {
    let net = TrustNetwork::fig10();
    let fig10 = Partition::new(
        7,
        vec![
            [0, 1, 2].into_iter().collect(),
            [3, 4, 5, 6].into_iter().collect(),
        ],
    )
    .unwrap();
    let blocking = find_blocking(&net, &fig10, TrustComposition::Average).unwrap();
    assert_eq!(blocking.agent, 3); // x4
    assert_eq!(blocking.target, 0); // defects towards C1

    let (repaired, ok) = stabilize(&net, fig10, TrustComposition::Average, 100);
    assert!(ok && is_stable(&net, &repaired, TrustComposition::Average));

    // SCSP encoding ≡ direct exact search on a small network.
    let small = TrustNetwork::random(4, 0);
    let cfg = FormationConfig {
        compose: TrustComposition::Average,
        require_stability: true,
        ..Default::default()
    };
    let direct = exact_formation(&small, cfg).unwrap();
    let encoded = scsp_formation(&small, cfg.compose, true).unwrap().unwrap();
    assert_eq!(direct.score, encoded.score);
    assert!(is_stable(&small, &encoded.partition, cfg.compose));
}
