//! Equivalence suite for the bucket-tree elimination engine: tree
//! solves against the exhaustive enumeration oracle on small random
//! problems, against branch-and-bound on banded instances, across the
//! weighted, fuzzy and probabilistic semirings — plus the width-cap
//! fallback path and a pinned inexact-`×` regression.
//!
//! The distributivity of `×` over `+` makes elimination valid on any
//! semiring, but only *totally ordered* ones reconstruct a witness;
//! everything here runs on the three totally ordered instances the
//! engine accepts.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use softsoa::core::generate::{
    banded_fuzzy, banded_probabilistic, banded_weighted, random_fuzzy, random_probabilistic,
    random_weighted, RandomScsp,
};
use softsoa::core::solve::{
    plan_elimination, BranchAndBound, Engine, EnumerationSolver, Solver, SolverConfig, VarOrder,
};
use softsoa::core::{Scsp, Var};
use softsoa::semiring::{Fuzzy, Probabilistic, Semiring, Unit, WeightedInt};

/// A branch-and-bound solver routed through the tree engine.
fn tree_solver(engine: Engine, width_cap: usize) -> BranchAndBound {
    BranchAndBound::with_config(
        VarOrder::MostConstrained,
        SolverConfig::default()
            .with_engine(engine)
            .with_width_cap(width_cap),
    )
}

/// Opens interest to every variable so witnesses are total
/// assignments the oracle can evaluate.
fn total_interest<S: Semiring>(problem: &Scsp<S>) -> Scsp<S> {
    let all: Vec<Var> = problem.domains().iter().map(|(v, _)| v.clone()).collect();
    problem.clone().of_interest(all)
}

/// Solves `problem` with `engine` and checks the blevel against
/// `oracle`'s under `close`, and that the returned witness actually
/// achieves the claimed blevel (canonical constraint-order product).
fn check_against<S: Semiring>(
    semiring: &S,
    problem: &Scsp<S>,
    engine: &BranchAndBound,
    oracle: &dyn Solver<S>,
    close: impl Fn(&S::Value, &S::Value) -> bool,
) -> Result<(), TestCaseError> {
    let tree = engine
        .solve(problem)
        .map_err(|e| TestCaseError(format!("tree solve failed: {e:?}")))?;
    let reference = oracle
        .solve(problem)
        .map_err(|e| TestCaseError(format!("oracle solve failed: {e:?}")))?;
    prop_assert!(
        close(tree.blevel(), reference.blevel()),
        "tree {:?} vs oracle {:?}",
        tree.blevel(),
        reference.blevel()
    );
    prop_assert_eq!(
        tree.best_assignment().is_some(),
        reference.best_assignment().is_some(),
        "witness presence must agree"
    );
    if let Some(eta) = tree.best_assignment() {
        let levels: Result<Vec<S::Value>, _> = problem
            .constraints()
            .iter()
            .map(|c| c.try_eval(eta))
            .collect();
        if let Ok(levels) = levels {
            let achieved = semiring.product(levels.iter());
            prop_assert!(
                close(&achieved, tree.blevel()),
                "witness {} achieves {:?}, blevel claims {:?}",
                eta,
                achieved,
                tree.blevel()
            );
        }
    }
    Ok(())
}

fn small_cfg() -> impl Strategy<Value = RandomScsp> {
    (2usize..6, 2usize..4, 1usize..7, 1usize..3, any::<u64>()).prop_map(
        |(vars, domain_size, constraints, arity, seed)| RandomScsp {
            vars,
            domain_size,
            constraints,
            arity,
            seed,
        },
    )
}

fn unit_close(a: &Unit, b: &Unit) -> bool {
    (a.get() - b.get()).abs() <= 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weighted: tree ≡ exhaustive enumeration on small random
    /// problems, bit-exact (integer `×` is exact).
    #[test]
    fn tree_matches_enumeration_weighted(cfg in small_cfg()) {
        let problem = total_interest(&random_weighted(&cfg));
        check_against(
            &WeightedInt, &problem,
            &tree_solver(Engine::TreeDecompose, 16),
            &EnumerationSolver::new(), |a, b| a == b,
        )?;
    }

    /// Fuzzy: idempotent min-`×`, bit-exact equality.
    #[test]
    fn tree_matches_enumeration_fuzzy(cfg in small_cfg()) {
        let problem = total_interest(&random_fuzzy(&cfg));
        check_against(
            &Fuzzy, &problem,
            &tree_solver(Engine::TreeDecompose, 16),
            &EnumerationSolver::new(), |a, b| a == b,
        )?;
    }

    /// Probabilistic: `×` is floating-point multiplication, and the
    /// tree engine associates the product along the bucket tree rather
    /// than in constraint order — equality up to `1e-9`.
    #[test]
    fn tree_matches_enumeration_probabilistic(cfg in small_cfg()) {
        let problem = total_interest(&random_probabilistic(&cfg));
        check_against(
            &Probabilistic, &problem,
            &tree_solver(Engine::TreeDecompose, 16),
            &EnumerationSolver::new(), unit_close,
        )?;
    }

    /// Banded instances (the tree engine's home turf): tree ≡
    /// branch-and-bound on every semiring, and the planned induced
    /// width respects the band.
    #[test]
    fn tree_matches_bnb_on_banded(
        n in 4usize..14,
        domain in 2usize..4,
        band in 1usize..4,
        seed in any::<u64>(),
    ) {
        let engine = tree_solver(Engine::TreeDecompose, 8);
        let bnb = BranchAndBound::default();

        let weighted = banded_weighted(n, domain, band, seed);
        let plan = plan_elimination(&weighted).unwrap();
        prop_assert!(
            plan.induced_width <= band,
            "band {} instance planned at width {}",
            band,
            plan.induced_width
        );
        check_against(&WeightedInt, &weighted, &engine, &bnb, |a, b| a == b)?;
        check_against(
            &Fuzzy, &banded_fuzzy(n, domain, band, seed),
            &engine, &bnb, |a, b| a == b,
        )?;
        check_against(
            &Probabilistic, &banded_probabilistic(n, domain, band, seed),
            &engine, &bnb, unit_close,
        )?;
    }

    /// `Engine::Auto` must never differ from the default
    /// branch-and-bound, whether it elects the tree engine (narrow
    /// instances) or declines (cap 1 forces the decline on any
    /// instance with a binary constraint).
    #[test]
    fn auto_engine_agrees_with_bnb(cfg in small_cfg(), cap in 1usize..12) {
        let problem = total_interest(&random_weighted(&cfg));
        check_against(
            &WeightedInt, &problem,
            &tree_solver(Engine::Auto, cap),
            &BranchAndBound::default(), |a, b| a == b,
        )?;
    }

    /// Forcing `Engine::TreeDecompose` onto instances it cannot fit
    /// (width cap 1) falls back to seeded search with identical
    /// results — the fallback seed is a correct bound, never a wrong
    /// answer.
    #[test]
    fn width_cap_fallback_matches_bnb(
        n in 4usize..10,
        seed in any::<u64>(),
    ) {
        let problem = banded_weighted(n, 3, 2, seed);
        check_against(
            &WeightedInt, &problem,
            &tree_solver(Engine::TreeDecompose, 1),
            &BranchAndBound::default(), |a, b| a == b,
        )?;
    }
}

/// Pinned inexact-`×` regression: a fixed probabilistic chain whose
/// bucket-tree product re-associates the floating-point fold. The
/// blevel must stay within tolerance of the enumeration oracle *and*
/// of the witness's canonical-order evaluation — this pins the
/// documented contract that the tree engine reports the DP-associated
/// product, not a re-derived canonical one.
#[test]
fn pinned_probabilistic_chain_reassociation() {
    let problem = total_interest(&banded_probabilistic(7, 3, 1, 0xDEC0DE));
    let tree = tree_solver(Engine::TreeDecompose, 4)
        .solve(&problem)
        .unwrap();
    let oracle = EnumerationSolver::new().solve(&problem).unwrap();
    assert!(
        unit_close(tree.blevel(), oracle.blevel()),
        "tree {:?} vs oracle {:?}",
        tree.blevel(),
        oracle.blevel()
    );
    let eta = tree.best_assignment().expect("consistent instance");
    let levels: Vec<Unit> = problem
        .constraints()
        .iter()
        .map(|c| c.try_eval(eta).unwrap())
        .collect();
    let achieved = Probabilistic.product(levels.iter());
    assert!(
        unit_close(&achieved, tree.blevel()),
        "witness achieves {achieved:?}, blevel claims {:?}",
        tree.blevel()
    );
}

/// The fallback path is visible in the stats: a width-1 cap on a
/// width-2 instance must record `fallback: true` with zero clusters
/// solved by elimination, while a fitting cap records the tree shape.
#[test]
fn fallback_and_tree_solves_are_distinguishable_in_stats() {
    let problem = banded_weighted(8, 3, 2, 7);

    let fallen = tree_solver(Engine::TreeDecompose, 1)
        .solve(&problem)
        .unwrap();
    let stats = fallen.stats().expect("stats ride along");
    let tree = stats
        .tree
        .as_ref()
        .expect("tree stats on the fallback path");
    assert!(tree.fallback, "cap 1 cannot fit a width-2 band");

    let solved = tree_solver(Engine::TreeDecompose, 8)
        .solve(&problem)
        .unwrap();
    let stats = solved.stats().expect("stats ride along");
    let tree = stats.tree.as_ref().expect("tree stats on the solved path");
    assert!(!tree.fallback, "cap 8 fits a width-2 band");
    assert!(tree.clusters > 0, "clusters reported");
    assert!(tree.max_separator <= 8, "separator under the cap");
}
