//! Property-based tests of the contended allocation objectives.
//!
//! Each case builds a random contention instance — capacity-limited
//! flat providers and clients with random acceptance floors — and
//! allocates it on a *fresh* broker, so every per-client effective
//! utility is simply the granted softness (no ledger history). Within
//! [`MAX_EXACT_CLIENTS`] the allocator is exact, which turns the
//! objectives into checkable global statements: leximin maximises the
//! worst-off client, Nash maximises the proportional-fair product, and
//! the utilitarian objective maximises total softness — each at least
//! matching whatever the FCFS baseline achieves.

use proptest::prelude::*;

use softsoa::core::{Constraint, Domain, Var};
use softsoa::nmsccp::Interval;
use softsoa::semiring::{Fuzzy, Unit};
use softsoa::soa::server::protocol::WireSemiring;
use softsoa::soa::{
    Broker, ContendedRequest, ContentionOutcome, Fairness, NegotiationRequest, OfferShape,
    QosDocument, QosOffer, Registry, ServiceDescription, MAX_EXACT_CLIENTS,
};
use softsoa_dependability::Attribute;

/// A random contention instance: flat providers `(level, slots)` and
/// per-client acceptance floors.
#[derive(Debug, Clone)]
struct Instance {
    providers: Vec<(f64, u32)>,
    floors: Vec<f64>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((30u32..95, 1u32..3), 1..4),
        proptest::collection::vec(0u32..75, 2..MAX_EXACT_CLIENTS),
    )
        .prop_map(|(providers, floors)| Instance {
            providers: providers
                .into_iter()
                .map(|(level, slots)| (f64::from(level) / 100.0, slots))
                .collect(),
            floors: floors.into_iter().map(|f| f64::from(f) / 100.0).collect(),
        })
}

fn registry(instance: &Instance) -> Registry {
    let mut registry = Registry::new();
    for (p, (level, slots)) in instance.providers.iter().enumerate() {
        let service = format!("svc-{p:02}");
        registry.publish(
            ServiceDescription::new(
                service.as_str(),
                format!("provider-{p:02}"),
                "compute",
                QosDocument::new(&service).with_offer(QosOffer {
                    attribute: Attribute::Reliability,
                    variable: "x".into(),
                    shape: OfferShape::Constant { level: *level },
                }),
            )
            .with_capacity(*slots),
        );
    }
    registry
}

fn batch(instance: &Instance) -> Vec<ContendedRequest<Fuzzy>> {
    instance
        .floors
        .iter()
        .enumerate()
        .map(|(i, floor)| ContendedRequest {
            client: format!("client-{i:02}"),
            request: NegotiationRequest {
                capability: "compute".into(),
                variable: Var::new("x"),
                domain: Domain::ints(1..=9),
                constraint: Constraint::always(Fuzzy),
                acceptance: Interval::levels(Unit::clamped(*floor), Unit::MAX),
            },
        })
        .collect()
}

/// Allocates the instance under `fairness` on a fresh broker and
/// returns the per-client utility vector (granted softness, 0 when
/// denied) in batch order.
fn allocate(instance: &Instance, fairness: Fairness) -> Vec<f64> {
    let broker = Broker::new(Fuzzy, registry(instance));
    let allocation = broker.negotiate_contended(&batch(instance), fairness, QosOffer::to_fuzzy);
    allocation
        .outcomes
        .iter()
        .map(|(_, outcome)| match outcome {
            ContentionOutcome::Granted(sla) => Fuzzy::softness(&sla.agreed_level),
            _ => 0.0,
        })
        .collect()
}

fn min_utility(utilities: &[f64]) -> f64 {
    utilities.iter().copied().fold(f64::INFINITY, f64::min)
}

/// The Nash objective the allocator maximises: `Π (1 + e_i) / 2`.
fn nash_product(utilities: &[f64]) -> f64 {
    utilities.iter().map(|e| (1.0 + e) / 2.0).product()
}

const EPS: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FCFS baseline never Pareto-dominates the leximin
    /// allocation: arrival-order greed cannot make someone better off
    /// without making someone else worse off than leximin does.
    #[test]
    fn fcfs_never_pareto_dominates_leximin(instance in instance_strategy()) {
        let leximin = allocate(&instance, Fairness::Leximin);
        let fcfs = allocate(&instance, Fairness::Fcfs);
        let weakly_better = leximin
            .iter()
            .zip(&fcfs)
            .all(|(l, f)| f + EPS >= *l);
        let strictly_better = leximin
            .iter()
            .zip(&fcfs)
            .any(|(l, f)| *f > l + EPS);
        prop_assert!(
            !(weakly_better && strictly_better),
            "fcfs {fcfs:?} Pareto-dominates leximin {leximin:?}"
        );
    }

    /// Exact leximin maximises the worst-off client: its minimum
    /// utility is at least the FCFS baseline's minimum.
    #[test]
    fn leximin_min_utility_at_least_fcfs(instance in instance_strategy()) {
        let leximin = allocate(&instance, Fairness::Leximin);
        let fcfs = allocate(&instance, Fairness::Fcfs);
        prop_assert!(
            min_utility(&leximin) + EPS >= min_utility(&fcfs),
            "leximin {leximin:?} has a worse floor than fcfs {fcfs:?}"
        );
    }

    /// The exact Nash allocation globally maximises the
    /// proportional-fair product, so every other objective's
    /// allocation — a feasible point of the same instance — scores no
    /// higher. In particular no single-client deviation reachable
    /// through another objective beats it.
    #[test]
    fn nash_product_is_maximal(instance in instance_strategy()) {
        let nash = nash_product(&allocate(&instance, Fairness::Nash));
        for other in [Fairness::Fcfs, Fairness::Leximin, Fairness::Utilitarian] {
            let rival = nash_product(&allocate(&instance, other));
            prop_assert!(
                nash + EPS >= rival,
                "{other} scores {rival} over nash {nash}"
            );
        }
    }

    /// The exact utilitarian allocation maximises total softness.
    #[test]
    fn utilitarian_sum_is_maximal(instance in instance_strategy()) {
        let sum = allocate(&instance, Fairness::Utilitarian).iter().sum::<f64>();
        for other in [Fairness::Fcfs, Fairness::Leximin, Fairness::Nash] {
            let rival = allocate(&instance, other).iter().sum::<f64>();
            prop_assert!(
                sum + EPS >= rival,
                "{other} sums {rival} over utilitarian {sum}"
            );
        }
    }

    /// No objective ever grants a service beyond its declared
    /// capacity, and every granted agreement clears its client's
    /// acceptance floor.
    #[test]
    fn capacity_and_acceptance_are_respected(instance in instance_strategy()) {
        for fairness in [
            Fairness::Fcfs,
            Fairness::Utilitarian,
            Fairness::Leximin,
            Fairness::Nash,
        ] {
            let broker = Broker::new(Fuzzy, registry(&instance));
            let allocation =
                broker.negotiate_contended(&batch(&instance), fairness, QosOffer::to_fuzzy);
            let mut grants = std::collections::BTreeMap::new();
            for (client, outcome) in &allocation.outcomes {
                if let ContentionOutcome::Granted(sla) = outcome {
                    *grants.entry(sla.service.clone()).or_insert(0u32) += 1;
                    let index: usize = client["client-".len()..].parse().unwrap();
                    prop_assert!(
                        Fuzzy::softness(&sla.agreed_level) + EPS >= instance.floors[index],
                        "{client} granted below its floor"
                    );
                }
            }
            for (service, granted) in grants {
                let slots = instance.providers
                    [service.as_str()["svc-".len()..].parse::<usize>().unwrap()]
                .1;
                prop_assert!(
                    granted <= slots,
                    "{fairness}: {} granted {granted} of {slots} slots",
                    service.as_str()
                );
            }
        }
    }
}
