//! Integration tests of the nmsccp language: parser, sequential and
//! concurrent executors, timed stores, procedure calls and hiding.

use softsoa::core::{Constraint, Domain, Domains, Var};
use softsoa::nmsccp::{
    parse_program, run_sessions, Agent, AgentOutcome, ConcurrentExecutor, EventStatus, Interpreter,
    Interval, Outcome, ParseEnv, Policy, Program, Store, TimedAction, TimedEvent, TimedInterpreter,
};
use softsoa::semiring::WeightedInt;

fn lin(a: u64, b: u64) -> Constraint<WeightedInt> {
    Constraint::unary(WeightedInt, "x", move |v| {
        a * v.as_int().unwrap() as u64 + b
    })
}

fn env() -> ParseEnv<WeightedInt> {
    ParseEnv::new(WeightedInt)
        .with_constraint("c1", lin(1, 3))
        .with_constraint("c3", lin(2, 0))
        .with_constraint("c4", lin(1, 5))
        .with_constraint("one", Constraint::always(WeightedInt))
        .with_level("two", 2u64)
        .with_level("four", 4u64)
        .with_level("ten", 10u64)
}

fn doms() -> Domains {
    Domains::new().with("x", Domain::ints(0..=10))
}

/// A full program text: clause declarations plus an initial agent with
/// procedure calls, executed to success.
#[test]
fn parsed_program_with_procedures_runs() {
    let text = "
        # provider publishes its policy, then signals
        publish(x) :: tell(c3) success .
        main(x) :: publish(x) .
        main(x) || ask(c3) ->[ten, top] success
    ";
    let (program, agent) = parse_program(text, &env()).unwrap();
    assert_eq!(program.len(), 2);
    let report = Interpreter::new(program)
        .with_policy(Policy::Random(11))
        .run(agent, Store::empty(WeightedInt, doms()))
        .unwrap();
    assert!(report.outcome.is_success());
    assert_eq!(report.outcome.store().consistency().unwrap(), 0);
}

/// Hiding gives each call its own local variable: two parallel hidden
/// tells do not interfere on `x`.
#[test]
fn hiding_isolates_local_state() {
    let tell_local = |cost: u64| {
        Agent::hide(
            "x",
            Agent::tell(lin(0, cost), Interval::any(&WeightedInt), Agent::success()),
        )
    };
    let report = Interpreter::new(Program::new())
        .run(
            Agent::par(tell_local(1), tell_local(2)),
            Store::empty(WeightedInt, doms()),
        )
        .unwrap();
    assert!(report.outcome.is_success());
    let store = report.outcome.store();
    // Both constants combined: 1 + 2 = 3 hours, over fresh variables.
    assert_eq!(store.consistency().unwrap(), 3);
    assert!(!store.sigma().scope().contains(&Var::new("x")));
}

/// The sequential and concurrent executors agree on the outcome of the
/// Example 2 negotiation.
#[test]
fn sequential_and_concurrent_agree_on_example2() {
    let any = Interval::any(&WeightedInt);
    let p1 = || {
        Agent::tell(
            lin(1, 5),
            any.clone(),
            Agent::retract(lin(1, 3), Interval::levels(10u64, 2u64), Agent::success()),
        )
    };
    let p2 = || {
        Agent::tell(
            lin(2, 0),
            any.clone(),
            Agent::ask(
                Constraint::always(WeightedInt),
                Interval::levels(4u64, 1u64),
                Agent::success(),
            ),
        )
    };

    let sequential = Interpreter::new(Program::new())
        .with_policy(Policy::Random(5))
        .run(Agent::par(p1(), p2()), Store::empty(WeightedInt, doms()))
        .unwrap();
    assert!(sequential.outcome.is_success());

    let concurrent = ConcurrentExecutor::new(Program::new())
        .with_seed(5)
        .run(vec![p1(), p2()], Store::empty(WeightedInt, doms()))
        .unwrap();
    assert!(concurrent.all_succeeded());
    assert_eq!(
        concurrent.store.consistency().unwrap(),
        sequential.outcome.store().consistency().unwrap()
    );
}

/// Many independent negotiation sessions run in parallel and each
/// reproduces its own result.
#[test]
fn parallel_sessions_are_isolated() {
    let sessions: Vec<_> = (0..6u64)
        .map(|i| {
            let agent = Agent::tell(lin(1, i), Interval::any(&WeightedInt), Agent::success());
            (agent, Store::empty(WeightedInt, doms()))
        })
        .collect();
    let reports = run_sessions(&Program::new(), sessions, 0).unwrap();
    for (i, report) in reports.iter().enumerate() {
        assert!(report.outcome.is_success());
        assert_eq!(report.outcome.store().consistency().unwrap(), i as u64);
    }
}

/// The concurrent executor detects a three-way deadlock where every
/// agent waits on a constraint nobody will tell.
#[test]
fn three_way_deadlock() {
    let waiter =
        |c: Constraint<WeightedInt>| Agent::ask(c, Interval::any(&WeightedInt), Agent::success());
    let report = ConcurrentExecutor::new(Program::new())
        .run(
            vec![waiter(lin(1, 1)), waiter(lin(2, 2)), waiter(lin(3, 3))],
            Store::empty(WeightedInt, doms()),
        )
        .unwrap();
    assert!(report
        .agents
        .iter()
        .all(|a| a.outcome == AgentOutcome::Deadlock));
}

/// Timed environment events both relax and tighten a running store.
#[test]
fn timed_schedule_drives_the_negotiation() {
    // The agent waits for an agreement within [1, 4] hours; the
    // environment first tells an expensive policy, then retracts it.
    let agent = Agent::ask(
        Constraint::always(WeightedInt),
        Interval::levels(4u64, 1u64),
        Agent::success(),
    );
    let schedule = vec![
        TimedEvent {
            at_step: 0,
            action: TimedAction::Tell(lin(1, 7)),
        },
        TimedEvent {
            at_step: 1,
            action: TimedAction::Retract(lin(1, 5)),
        },
    ];
    let report = TimedInterpreter::new(Program::new(), schedule)
        .run(agent, Store::empty(WeightedInt, doms()))
        .unwrap();
    assert!(report.report.outcome.is_success());
    // x + 7 ÷ (x + 5) = 2̄: within the interval.
    assert_eq!(report.report.outcome.store().consistency().unwrap(), 2);
    assert!(report
        .events
        .iter()
        .all(|(_, status)| *status == EventStatus::Applied));
}

/// Stress: a pipeline of guarded handovers across five concurrent
/// agents completes deterministically under every seed.
#[test]
fn five_stage_concurrent_pipeline() {
    let stage = |level: u64, next_level: u64| {
        Agent::ask(
            lin(0, level),
            Interval::any(&WeightedInt),
            Agent::tell(
                lin(0, next_level - level),
                Interval::any(&WeightedInt),
                Agent::success(),
            ),
        )
    };
    for seed in 0..5 {
        let mut agents = vec![Agent::tell(
            lin(0, 1),
            Interval::any(&WeightedInt),
            Agent::success(),
        )];
        for i in 1..5u64 {
            agents.push(stage(i, i + 1));
        }
        let report = ConcurrentExecutor::new(Program::new())
            .with_seed(seed)
            .run(agents, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.all_succeeded(), "seed {seed}");
        assert_eq!(report.store.consistency().unwrap(), 5, "seed {seed}");
    }
}

/// Constraint-valued thresholds (the C2–C4 checked transitions of
/// Fig. 3) work through the parser: interval bounds that name
/// constraints compare the whole store pointwise, not just its level.
#[test]
fn constraint_thresholds_via_parser() {
    use softsoa::nmsccp::{parse_agent, ParseEnv};
    // Lower threshold φ1 = 3x + 9 (every store must stay at least as
    // good); upper threshold φ2 = x (no store may beat paying x hours
    // for x failures).
    let env = ParseEnv::new(WeightedInt)
        .with_constraint("c3", lin(2, 0))
        .with_constraint("c4", lin(1, 5))
        .with_constraint("phi_lo", lin(3, 9))
        .with_constraint("phi_hi", lin(1, 0));
    // C4 interval on the tell of c4 over a store already holding c3:
    // σ' = 3x + 5 satisfies φ1 ⊑ σ' (3x+9 ≥ 3x+5 pointwise) and
    // σ' ⊑ φ2 (3x+5 ≥ x pointwise) → enabled.
    let agent = parse_agent("tell(c3) tell(c4) ->[phi_lo, phi_hi] success", &env).unwrap();
    let report = Interpreter::new(Program::new())
        .run(agent, Store::empty(WeightedInt, doms()))
        .unwrap();
    assert!(report.outcome.is_success());

    // Swap the thresholds: the interval is contradictory, the tell is
    // permanently disabled, and validation catches it statically.
    let bad = parse_agent("tell(c3) tell(c4) ->[phi_hi, phi_lo] success", &env).unwrap();
    assert!(bad.validate_intervals(&WeightedInt, &doms()).is_err());
    let report = Interpreter::new(Program::new())
        .run(bad, Store::empty(WeightedInt, doms()))
        .unwrap();
    assert!(matches!(report.outcome, Outcome::Deadlock { .. }));
}

/// Fuel exhaustion is reported, not looped forever, in both executors.
#[test]
fn livelock_is_bounded() {
    let program: Program<WeightedInt> = Program::new().with_clause(
        "spin",
        [],
        Agent::tell(
            Constraint::always(WeightedInt),
            Interval::any(&WeightedInt),
            Agent::call("spin", []),
        ),
    );
    let report = Interpreter::new(program.clone())
        .with_max_steps(25)
        .run(Agent::call("spin", []), Store::empty(WeightedInt, doms()))
        .unwrap();
    assert!(matches!(report.outcome, Outcome::OutOfFuel { .. }));

    let concurrent = ConcurrentExecutor::new(program)
        .with_max_steps(25)
        .run(
            vec![Agent::call("spin", [])],
            Store::empty(WeightedInt, doms()),
        )
        .unwrap();
    assert_eq!(concurrent.agents[0].outcome, AgentOutcome::OutOfFuel);
}
