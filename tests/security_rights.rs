//! Security policies as set-based soft constraints.
//!
//! Sec. 4 of the paper lists the set-based semiring for "related
//! security rights, or time slots in which the services can be used",
//! and the conclusions sketch policies like "you MUST use HTTP
//! Authentication and MAY use GZIP compression". These tests model
//! exactly that: each component grants a set of mechanisms, the
//! composition intersects them, and requirements are entailment
//! checks.

use softsoa::core::{entails, Assignment, Constraint, Domain, Domains, Val};
use softsoa::semiring::{Semiring, SetSemiring};
use std::collections::BTreeSet;

type Rights = SetSemiring<&'static str>;

fn rights() -> Rights {
    ["http-auth", "tls", "gzip", "plaintext"]
        .into_iter()
        .collect()
}

fn grant(
    semiring: &Rights,
    var: &str,
    table: Vec<(i64, &'static [&'static str])>,
) -> Constraint<Rights> {
    let granted: std::collections::HashMap<i64, BTreeSet<&'static str>> = table
        .into_iter()
        .map(|(tier, mechanisms)| (tier, mechanisms.iter().copied().collect()))
        .collect();
    let zero = semiring.zero();
    Constraint::unary(semiring.clone(), var, move |v| {
        granted
            .get(&v.as_int().unwrap())
            .cloned()
            .unwrap_or_else(|| zero.clone())
    })
}

/// The mechanisms a composed pipeline supports are the intersection of
/// what its components support — combining with `× = ∩`.
#[test]
fn composition_intersects_supported_mechanisms() {
    let s = rights();
    let doms = Domains::new().with("tier", Domain::ints(0..=1));
    // The gateway supports everything at tier 1, only plaintext at 0.
    let gateway = grant(
        &s,
        "tier",
        vec![
            (0, &["plaintext"]),
            (1, &["http-auth", "tls", "gzip", "plaintext"]),
        ],
    );
    // The backend never speaks plaintext.
    let backend = grant(
        &s,
        "tier",
        vec![
            (0, &["http-auth", "tls"]),
            (1, &["http-auth", "tls", "gzip"]),
        ],
    );
    let composed = gateway.combine(&backend);

    let at = |tier: i64| composed.eval(&Assignment::new().bind("tier", tier));
    // Tier 0: gateway ∩ backend = ∅ — no common mechanism, the
    // composition is unusable there.
    assert_eq!(at(0), s.zero());
    // Tier 1: the common mechanisms.
    assert_eq!(at(1), s.subset(["http-auth", "tls", "gzip"]).unwrap());
    let _ = doms;
}

/// "You MUST use HTTP Authentication": the policy is a constraint
/// granting only assignments whose rights include http-auth; the
/// composed service entails it iff every tier's intersection does.
#[test]
fn must_use_http_auth_is_an_entailment_check() {
    let s = rights();
    let doms = Domains::new().with("tier", Domain::ints(0..=1));
    let service = grant(
        &s,
        "tier",
        vec![(0, &["http-auth", "tls"]), (1, &["http-auth", "gzip"])],
    );
    // The MUST policy: at any tier, at most {http-auth, gzip, tls, ...}
    // minus nothing — i.e. the upper bound is everything, but the
    // entailment direction asks that the service's grant is *below*
    // the policy. A MUST is naturally the requirement that http-auth
    // is granted: model it as the constraint granting the full
    // universe when present.
    let must_auth = Constraint::unary(s.clone(), "tier", {
        let s = s.clone();
        move |_| s.one()
    });
    // Everything is below 1̄ — trivially entailed.
    assert!(entails(s.clone(), [&service], &must_auth, &doms).unwrap());

    // The interesting direction: does every grant CONTAIN http-auth?
    // That is a lower-bound check: auth_required ⊑ service.
    let auth_required = Constraint::unary(s.clone(), "tier", |_| BTreeSet::from(["http-auth"]));
    assert!(auth_required.leq(&service, &doms).unwrap());

    // A service that drops auth at tier 1 fails the check.
    let sloppy = grant(&s, "tier", vec![(0, &["http-auth"]), (1, &["gzip"])]);
    assert!(!auth_required.leq(&sloppy, &doms).unwrap());
}

/// Time-slot example from the same Sec. 4 list: admissible invocation
/// hours intersect across components, and the best slot assignment is
/// found by the solver.
#[test]
fn time_slots_intersect_and_solve() {
    type Slots = SetSemiring<u8>;
    let s: Slots = (0u8..24).collect();
    let doms = Domains::new().with("day", Domain::ints(0..=1));

    let business_hours: BTreeSet<u8> = (9..17).collect();
    let maintenance_free: BTreeSet<u8> = (0..24).filter(|h| *h < 2 || *h > 3).collect();

    let svc_a = Constraint::unary(s.clone(), "day", {
        let b = business_hours.clone();
        move |_| b.clone()
    });
    let svc_b = Constraint::unary(s.clone(), "day", {
        let m = maintenance_free.clone();
        move |_| m.clone()
    });
    let combined = svc_a.combine(&svc_b);
    let slots = combined.eval(&Assignment::new().bind("day", 0));
    // Business hours minus the maintenance window (which is at night,
    // so no overlap): exactly business hours.
    assert_eq!(slots, business_hours);

    // Projection to ∅ unions over assignments — the slots available on
    // *some* day.
    let available = combined.consistency(&doms).unwrap();
    assert_eq!(available, business_hours);
    assert!(s.leq(&available, &s.one()));
}

/// Set-valued domains also work as *values*: the coalition encoding's
/// powerset domains are ordinary `Val::Set`s.
#[test]
fn set_values_in_domains() {
    let doms = Domains::new().with("grp", Domain::powerset(3));
    assert_eq!(doms.get(&"grp".into()).unwrap().len(), 8);
    assert!(doms.get(&"grp".into()).unwrap().contains(&Val::set([0, 2])));
}
