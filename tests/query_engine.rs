//! Integration tests of the SOA query engine through the façade:
//! joint optimisation, compiled-problem inspection, budgets and
//! deregistration under load.

use softsoa::core::solve::{BranchAndBound, Solver, VarOrder};
use softsoa::core::{vars, Constraint, Domain, Var};
use softsoa::semiring::{Weight, Weighted};
use softsoa::soa::{
    Broker, OfferShape, QosDocument, QosOffer, QueryError, QueryStage, Registry,
    ServiceDescription, ServiceId, ServiceQuery,
};
use softsoa_dependability::Attribute;

fn linear_provider(
    id: &str,
    capability: &str,
    var: &str,
    slope: f64,
    intercept: f64,
) -> ServiceDescription {
    ServiceDescription::new(
        id,
        "org",
        capability,
        QosDocument::new(id).with_offer(QosOffer {
            attribute: Attribute::Availability,
            variable: var.into(),
            shape: OfferShape::Linear { slope, intercept },
        }),
    )
}

fn three_stage_registry() -> Registry {
    let mut registry = Registry::new();
    registry.publish(linear_provider("s-a", "storage", "s", 4.0, 2.0));
    registry.publish(linear_provider("s-b", "storage", "s", 1.0, 5.0));
    registry.publish(linear_provider("f-a", "filter", "f", 6.0, 1.0));
    registry.publish(linear_provider("f-b", "filter", "f", 2.0, 4.0));
    registry.publish(linear_provider("d-a", "delivery", "d", 3.0, 3.0));
    registry.publish(linear_provider("d-b", "delivery", "d", 8.0, 0.0));
    registry
}

fn crisp_min(var: &'static str, min: i64) -> Constraint<Weighted> {
    Constraint::crisp(Weighted, &vars([var]), move |v| {
        v[0].as_int().unwrap() >= min
    })
}

fn three_stage_query() -> ServiceQuery<Weighted> {
    let tiers = Domain::ints(0..=2);
    ServiceQuery {
        stages: vec![
            QueryStage {
                capability: "storage".into(),
                variable: Var::new("s"),
                domain: tiers.clone(),
                requirement: crisp_min("s", 1),
            },
            QueryStage {
                capability: "filter".into(),
                variable: Var::new("f"),
                domain: tiers.clone(),
                requirement: Constraint::always(Weighted),
            },
            QueryStage {
                capability: "delivery".into(),
                variable: Var::new("d"),
                domain: tiers,
                requirement: Constraint::always(Weighted),
            },
        ],
        cross_constraints: vec![Constraint::crisp(Weighted, &vars(["f", "d"]), |v| {
            v[0].as_int().unwrap() + v[1].as_int().unwrap() >= 2
        })],
        min_level: None,
    }
}

#[test]
fn three_stage_joint_plan_is_cost_optimal() {
    let broker = Broker::new(Weighted, three_stage_registry());
    let plan = broker
        .query(&three_stage_query(), QosOffer::to_weighted)
        .unwrap();
    // Hand-computed optimum: storage tier 1 via s-a (6); quality floor
    // met by filter tier 2 via f-b (8) and delivery tier 0 via d-b (0):
    // total 14. (Any cheaper split violates a constraint.)
    assert_eq!(plan.level, Weight::new(14.0).unwrap());
    assert_eq!(plan.selections.len(), 3);
    let f = plan.binding.get(&Var::new("f")).unwrap().as_int().unwrap();
    let d = plan.binding.get(&Var::new("d")).unwrap().as_int().unwrap();
    assert!(f + d >= 2);
}

#[test]
fn compiled_problem_is_solvable_by_any_solver() {
    let broker = Broker::new(Weighted, three_stage_registry());
    let problem = broker
        .compile_query(&three_stage_query(), QosOffer::to_weighted)
        .unwrap();
    // 3 choice variables + 3 QoS variables.
    assert_eq!(problem.con().len(), 6);
    // The compiled problem is an ordinary SCSP: solve it directly.
    let direct = BranchAndBound::new(VarOrder::SmallestDomain)
        .solve(&problem)
        .unwrap();
    assert_eq!(*direct.blevel(), Weight::new(14.0).unwrap());
}

#[test]
fn budget_infeasibility_is_no_plan() {
    let broker = Broker::new(Weighted, three_stage_registry());
    let mut query = three_stage_query();
    query.min_level = Some(Weight::new(10.0).unwrap()); // below the optimum cost of 14
    assert!(matches!(
        broker.query(&query, QosOffer::to_weighted),
        Err(QueryError::NoPlan)
    ));
    // A generous budget passes.
    query.min_level = Some(Weight::new(20.0).unwrap());
    assert!(broker.query(&query, QosOffer::to_weighted).is_ok());
}

#[test]
fn deregistration_reroutes_the_plan() {
    let mut broker = Broker::new(Weighted, three_stage_registry());
    let before = broker
        .query(&three_stage_query(), QosOffer::to_weighted)
        .unwrap();
    // Remove the filter provider the plan chose; the query must fall
    // back to the other one (and get more expensive, never cheaper).
    let chosen_filter = before.selections[1].0.clone();
    broker.registry_mut().deregister(&chosen_filter);
    let after = broker
        .query(&three_stage_query(), QosOffer::to_weighted)
        .unwrap();
    assert_ne!(after.selections[1].0, chosen_filter);
    // Losing a provider can only make the plan worse-or-equal in the
    // semiring order (costlier, for weighted).
    assert!(Weighted.leq(&after.level, &before.level));
    // Removing every filter provider kills the stage outright.
    broker.registry_mut().deregister(&ServiceId::new("f-a"));
    broker.registry_mut().deregister(&ServiceId::new("f-b"));
    match broker.query(&three_stage_query(), QosOffer::to_weighted) {
        Err(QueryError::NoProvider { stage, .. }) => assert_eq!(stage, 1),
        other => panic!("expected NoProvider, got {other:?}"),
    }
}

use softsoa::semiring::Semiring;
