//! Differential test harness for the incremental re-solve engine:
//! random delta scripts (add / retract / update) replayed against an
//! [`IncrementalSolver`], with a from-scratch [`BranchAndBound`] solve
//! of the materialised problem after every step as the oracle — across
//! the weighted, fuzzy and probabilistic semirings.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use softsoa::core::generate::{random_fuzzy, random_probabilistic, random_weighted, RandomScsp};
use softsoa::core::solve::{BranchAndBound, ConstraintId, IncrementalSolver, Solver};
use softsoa::core::{Constraint, Domain, Scsp, Var};
use softsoa::semiring::{Fuzzy, Probabilistic, Semiring, Unit, WeightedInt};

/// One scripted delta. Indices are reduced modulo the live constraint
/// count at replay time, so every script is applicable to every
/// problem.
#[derive(Debug, Clone)]
enum Op {
    /// Add the first constraint of a fresh random problem drawn with
    /// this seed.
    Add(u64),
    /// Retract the `i % live`-th live constraint.
    Retract(usize),
    /// Replace the `i % live`-th live constraint with a freshly drawn
    /// one.
    Update(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u64>().prop_map(Op::Add),
        any::<usize>().prop_map(Op::Retract),
        (any::<usize>(), any::<u64>()).prop_map(|(i, s)| Op::Update(i, s)),
    ]
}

fn cfg_strategy() -> impl Strategy<Value = RandomScsp> {
    (2usize..5, 2usize..4, 1usize..6, 1usize..3, any::<u64>()).prop_map(
        |(vars, domain_size, constraints, arity, seed)| RandomScsp {
            vars,
            domain_size,
            constraints,
            arity,
            seed,
        },
    )
}

/// Replays `script` against an incremental solver seeded from
/// `make(cfg)` and checks, after every delta, that (a) the incremental
/// blevel matches a from-scratch branch-and-bound solve of the
/// materialised problem, and (b) the incremental witness actually
/// achieves its blevel. `close` is the semiring's equality (exact for
/// weighted/fuzzy, `1e-9`-tolerant for probabilistic).
fn differential<S: Semiring>(
    semiring: S,
    cfg: &RandomScsp,
    make: impl Fn(&RandomScsp) -> Scsp<S>,
    script: &[Op],
    close: impl Fn(&S::Value, &S::Value) -> bool,
) -> Result<(), TestCaseError> {
    let base = make(cfg);
    let (solver, ids) = IncrementalSolver::from_problem(&base);
    // Interest in every variable, so witnesses are total assignments
    // we can evaluate the store on.
    let all_vars: Vec<Var> = base.domains().iter().map(|(v, _)| v.clone()).collect();
    let mut solver = solver.of_interest(all_vars);
    let mut live: Vec<ConstraintId> = ids;
    for (step, op) in script.iter().enumerate() {
        match *op {
            Op::Add(seed) => {
                let pool = make(&RandomScsp { seed, ..*cfg });
                if let Some(c) = pool.constraints().first() {
                    live.push(solver.add_constraint(c.clone()));
                }
            }
            Op::Retract(i) => {
                if !live.is_empty() {
                    let id = live.remove(i % live.len());
                    solver.retract_constraint(id);
                }
            }
            Op::Update(i, seed) => {
                if !live.is_empty() {
                    let pool = make(&RandomScsp { seed, ..*cfg });
                    if let Some(c) = pool.constraints().first() {
                        solver.update_constraint(live[i % live.len()], c.clone());
                    }
                }
            }
        }
        let problem = solver.problem();
        let incremental = solver.solve().unwrap();
        let scratch = BranchAndBound::default().solve(&problem).unwrap();
        prop_assert!(
            close(incremental.blevel(), scratch.blevel()),
            "step {step} ({op:?}): incremental {:?} vs from-scratch {:?}",
            incremental.blevel(),
            scratch.blevel()
        );
        if let Some(eta) = incremental.best_assignment() {
            let levels: Result<Vec<S::Value>, _> = problem
                .constraints()
                .iter()
                .map(|c| c.try_eval(eta))
                .collect();
            if let Ok(levels) = levels {
                let achieved = semiring.product(levels.iter());
                prop_assert!(
                    close(&achieved, incremental.blevel()),
                    "step {step} ({op:?}): witness {eta} achieves {achieved:?}, \
                     blevel claims {:?}",
                    incremental.blevel()
                );
            }
        }
    }
    Ok(())
}

fn unit_close(a: &Unit, b: &Unit) -> bool {
    (a.get() - b.get()).abs() <= 1e-9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weighted semiring: incremental ≡ from-scratch after every delta.
    #[test]
    fn incremental_matches_scratch_weighted(
        cfg in cfg_strategy(),
        script in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        differential(WeightedInt, &cfg, random_weighted, &script, |a, b| a == b)?;
    }

    /// Fuzzy semiring (idempotent, exact ×): same differential check.
    #[test]
    fn incremental_matches_scratch_fuzzy(
        cfg in cfg_strategy(),
        script in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        differential(Fuzzy, &cfg, random_fuzzy, &script, |a, b| a == b)?;
    }

    /// Probabilistic semiring: inexact ×, so the component-wise
    /// product may re-associate the fold — equality up to `1e-9`.
    #[test]
    fn incremental_matches_scratch_probabilistic(
        cfg in cfg_strategy(),
        script in proptest::collection::vec(op_strategy(), 1..8),
    ) {
        differential(Probabilistic, &cfg, random_probabilistic, &script, unit_close)?;
    }
}

/// Deterministic structured smoke test: two independent clusters are
/// bridged, tightened, un-bridged and finally emptied, with the
/// from-scratch oracle consulted at every step. This pins the
/// component-merge / component-split transitions that random scripts
/// only occasionally hit.
#[test]
fn structured_bridge_script_matches_scratch() {
    let unary = |v: &str, slope: u64| {
        Constraint::unary(WeightedInt, v, move |val| {
            slope * val.as_int().unwrap() as u64
        })
    };
    let bridge = |w: u64| {
        Constraint::binary(WeightedInt, "a1", "b1", move |x, y| {
            w * x.as_int().unwrap().abs_diff(y.as_int().unwrap() + 1)
        })
    };
    let mut solver = IncrementalSolver::new(WeightedInt)
        .with_domain("a0", Domain::ints(0..4))
        .with_domain("a1", Domain::ints(0..4))
        .with_domain("b0", Domain::ints(0..4))
        .with_domain("b1", Domain::ints(0..4))
        .of_interest(["a0", "a1", "b0", "b1"]);
    let mut live = vec![
        solver.add_constraint(unary("a0", 1)),
        solver.add_constraint(Constraint::binary(WeightedInt, "a0", "a1", |x, y| {
            x.as_int().unwrap().abs_diff(y.as_int().unwrap())
        })),
        solver.add_constraint(unary("b0", 2)),
        solver.add_constraint(Constraint::binary(WeightedInt, "b0", "b1", |x, y| {
            (x.as_int().unwrap() + y.as_int().unwrap()) as u64
        })),
    ];

    let check = |solver: &mut IncrementalSolver<WeightedInt>, label: &str| {
        let scratch = BranchAndBound::default().solve(&solver.problem()).unwrap();
        let incremental = solver.solve().unwrap();
        assert_eq!(
            incremental.blevel(),
            scratch.blevel(),
            "{label}: incremental diverged from from-scratch"
        );
    };

    check(&mut solver, "baseline (two clusters)");

    // Bridge the clusters: the two components merge into one.
    let id = solver.add_constraint(bridge(1));
    live.push(id);
    check(&mut solver, "bridged (merged component)");
    let merged_resolves = solver.stats().components_resolved;

    // Tighten the bridge in place: same structure, new version — the
    // merged component re-solves, warm-started from its witness.
    solver.update_constraint(id, bridge(3));
    check(&mut solver, "tightened bridge");
    assert!(
        solver.stats().components_resolved > merged_resolves,
        "tightening must dirty the merged component"
    );
    assert!(
        solver.stats().warm_seeds >= 1,
        "tightening should warm-start from the previous optimum"
    );

    // Un-bridge: the clusters split back; their original cached
    // results are still valid and must be replayed, not re-searched.
    solver.retract_constraint(live.pop().unwrap());
    let before_split = solver.stats().components_resolved;
    check(&mut solver, "split back (bridge retracted)");
    assert_eq!(
        solver.stats().components_resolved,
        before_split,
        "splitting back must replay the clusters from cache"
    );

    // Drain the problem: retracting everything leaves isolated
    // interest variables and blevel 1̄ (cost 0).
    for id in live.drain(..) {
        solver.retract_constraint(id);
        check(&mut solver, "draining");
    }
    assert_eq!(*solver.solve().unwrap().blevel(), 0);
}
