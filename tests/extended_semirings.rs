//! End-to-end scenarios for the extension semirings ([`Capacity`] and
//! [`Lukasiewicz`]) — the "other [instances] not yet defined" the
//! semiring framework was designed to absorb.

use softsoa::core::{Constraint, Domain, Scsp, Val, Var};
use softsoa::nmsccp::{Agent, Interpreter, Interval, Program, Store};
use softsoa::semiring::{Capacity, Lukasiewicz, Semiring, Unit, Weight};

fn mbps(v: f64) -> Weight {
    Weight::new(v).unwrap()
}

/// Bandwidth-aware route selection: the end-to-end bandwidth of a
/// route is the bottleneck (min) of its links, and the solver picks
/// the route with the widest bottleneck — the classic QoS-routing
/// problem, solved by the same SCSP machinery as everything else.
#[test]
fn capacity_semiring_selects_widest_route() {
    // Route r ∈ {0, 1, 2}; two hops per route with fixed capacities.
    let hop = |caps: [f64; 3], label: &str| {
        Constraint::unary(Capacity, "r", move |v| {
            mbps(caps[v.as_int().unwrap() as usize])
        })
        .with_label(label)
    };
    let p = Scsp::new(Capacity)
        .with_domain("r", Domain::ints(0..3))
        // Route 0: 100 then 10; route 1: 40 then 40; route 2: 80 then 20.
        .with_constraint(hop([100.0, 40.0, 80.0], "hop1"))
        .with_constraint(hop([10.0, 40.0, 20.0], "hop2"))
        .of_interest(["r"]);
    let solution = p.solve().unwrap();
    // Bottlenecks: 10, 40, 20 → route 1 wins at 40 Mb/s.
    assert_eq!(*solution.blevel(), mbps(40.0));
    assert_eq!(
        solution.best_assignment().unwrap().get(&Var::new("r")),
        Some(&Val::Int(1))
    );
}

/// The capacity semiring is residuated like every other instance, so
/// the nonmonotonic store operations work unchanged. Because its `×`
/// is idempotent (min), residuation *over*-relaxes: dividing the
/// bottleneck by the narrow link yields the top (`∞`), not the wider
/// link — min forgets which operand was binding. The Galois property
/// still holds: re-telling the narrow link restores the store exactly.
#[test]
fn capacity_store_retraction_over_relaxes() {
    let doms = softsoa::core::Domains::new().with("r", Domain::ints(0..2));
    let wide = Constraint::unary(Capacity, "r", |_| mbps(100.0)).with_label("wide");
    let narrow = Constraint::unary(Capacity, "r", |_| mbps(10.0)).with_label("narrow");
    let store = Store::empty(Capacity, doms)
        .tell(&wide)
        .unwrap()
        .tell(&narrow)
        .unwrap();
    assert_eq!(store.consistency().unwrap(), mbps(10.0));
    let relaxed = store.retract(&narrow).unwrap();
    assert_eq!(relaxed.consistency().unwrap(), Weight::INFINITY);
    // b × (a ÷ b) = a: re-telling the narrow link lands back on the
    // original bottleneck.
    let back = relaxed.tell(&narrow).unwrap();
    assert_eq!(back.consistency().unwrap(), mbps(10.0));
}

/// An nmsccp negotiation over bandwidth: the client requires at least
/// 30 Mb/s end to end; the provider's narrow offer deadlocks the
/// session, its upgrade succeeds.
#[test]
fn capacity_negotiation_with_bandwidth_floor() {
    let doms = softsoa::core::Domains::new().with("r", Domain::ints(0..2));
    let offer = |cap: f64| Constraint::unary(Capacity, "r", move |_| mbps(cap)).with_label("offer");
    // Interval: lower = 30 Mb/s (at least), upper = top (no cap).
    let accept = Interval::levels(mbps(30.0), Weight::INFINITY);
    let session = |cap: f64| {
        let agent = Agent::tell(
            offer(cap),
            Interval::any(&Capacity),
            Agent::ask(
                Constraint::always(Capacity),
                accept.clone(),
                Agent::success(),
            ),
        );
        Interpreter::new(Program::new())
            .run(agent, Store::empty(Capacity, doms.clone()))
            .unwrap()
    };
    assert!(!session(10.0).outcome.is_success());
    assert!(session(80.0).outcome.is_success());
}

/// Łukasiewicz SLA-deviation accounting: each stage's shortfall from
/// full satisfaction accumulates, and the composition bottoms out once
/// the total shortfall exceeds 1 — stricter than fuzzy min, softer
/// than a hard conjunction.
#[test]
fn lukasiewicz_accumulates_sla_deviations() {
    let s = Lukasiewicz;
    let stage = |levels: [f64; 2], label: &str| {
        Constraint::unary(s, "plan", move |v| {
            Unit::clamped(levels[v.as_int().unwrap() as usize])
        })
        .with_label(label)
    };
    let p = Scsp::new(s)
        .with_domain("plan", Domain::ints(0..2))
        // Plan 0: two mild deviations (0.9, 0.9); plan 1: one perfect
        // stage and one poor one (1.0, 0.75).
        .with_constraint(stage([0.9, 1.0], "stage-a"))
        .with_constraint(stage([0.9, 0.75], "stage-b"))
        .of_interest(["plan"]);
    let solution = p.solve().unwrap();
    // Łukasiewicz: plan 0 scores 0.8 (shortfalls add), plan 1 scores
    // 0.75 — mild deviations beat one bad stage, unlike fuzzy min
    // which would score them 0.9 vs 0.75 identically in ranking but
    // would hide the accumulation.
    assert!((solution.blevel().get() - 0.8).abs() < 1e-12);
    assert_eq!(
        solution.best_assignment().unwrap().get(&Var::new("plan")),
        Some(&Val::Int(0))
    );

    // Three deviations of 0.6 bottom out entirely (total shortfall
    // 1.2 > 1), while three of 0.7 still leave 0.1.
    let triple_06 = Lukasiewicz.product([Unit::clamped(0.6); 3].iter());
    assert_eq!(triple_06, Unit::MIN);
    let triple_07 = Lukasiewicz.product([Unit::clamped(0.7); 3].iter());
    assert!((triple_07.get() - 0.1).abs() < 1e-9);
}

/// Both extension instances satisfy the residuation Galois property
/// through the constraint layer (retract-after-tell restores levels).
#[test]
fn extension_semirings_roundtrip_through_stores() {
    let doms = softsoa::core::Domains::new().with("x", Domain::ints(0..3));
    // Lukasiewicz store round trip.
    let c = Constraint::unary(Lukasiewicz, "x", |v| {
        Unit::clamped(1.0 - v.as_int().unwrap() as f64 * 0.25)
    });
    let store = Store::empty(Lukasiewicz, doms);
    let told = store.tell(&c).unwrap();
    let back = told.retract(&c).unwrap();
    assert_eq!(back.consistency().unwrap(), store.consistency().unwrap());
}
