//! Property-based cross-crate tests: solver agreement and algebraic
//! identities of the soft constraint system.

use std::collections::BTreeSet;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use softsoa::core::generate::{
    chain_weighted, random_fuzzy, random_probabilistic, random_product, random_weighted, RandomScsp,
};
use softsoa::core::solve::{
    BranchAndBound, BucketElimination, EliminationOrder, EnumerationSolver, Parallelism,
    ParetoBranchAndBound, Solution, Solver, SolverConfig, VarOrder,
};
use softsoa::core::{combine_all, Constraint, Domain, Domains, Scsp, Var};
use softsoa::semiring::{Probabilistic, Residuated, Semiring, Unit, WeightedInt};

fn cfg_strategy() -> impl Strategy<Value = RandomScsp> {
    (2usize..6, 2usize..4, 1usize..8, 1usize..3, any::<u64>()).prop_map(
        |(vars, domain_size, constraints, arity, seed)| RandomScsp {
            vars,
            domain_size,
            constraints,
            arity,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three solvers compute the same blevel on random weighted
    /// problems.
    #[test]
    fn solvers_agree_weighted(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        for order in [VarOrder::Input, VarOrder::SmallestDomain, VarOrder::MostConstrained] {
            let bnb = BranchAndBound::new(order).solve(&p).unwrap();
            prop_assert_eq!(bnb.blevel(), reference.blevel());
        }
        for order in [EliminationOrder::InputReverse, EliminationOrder::MinDegree] {
            let be = BucketElimination::new(order).solve(&p).unwrap();
            prop_assert_eq!(be.blevel(), reference.blevel());
            // The solution tables must agree extensionally.
            let t1 = be.solution_constraint().unwrap();
            let t2 = reference.solution_constraint().unwrap();
            prop_assert!(t1.equivalent(t2, p.domains()).unwrap());
        }
    }

    /// Same agreement on fuzzy problems (idempotent ×).
    #[test]
    fn solvers_agree_fuzzy(cfg in cfg_strategy()) {
        let p = random_fuzzy(&cfg);
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        let bnb = BranchAndBound::default().solve(&p).unwrap();
        let be = BucketElimination::default().solve(&p).unwrap();
        prop_assert_eq!(bnb.blevel(), reference.blevel());
        prop_assert_eq!(be.blevel(), reference.blevel());
    }

    /// Chains have induced width 1; bucket elimination must match the
    /// reference there too.
    #[test]
    fn solvers_agree_on_chains(n in 3usize..8, domain in 2usize..4, seed in any::<u64>()) {
        let p = chain_weighted(n, domain, seed);
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        let be = BucketElimination::default().solve(&p).unwrap();
        prop_assert_eq!(be.blevel(), reference.blevel());
    }

    /// ⊗ is commutative and associative extensionally; 1̄ is its unit.
    #[test]
    fn combination_laws(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        if p.constraints().len() < 2 { return Ok(()); }
        let a = &p.constraints()[0];
        let b = &p.constraints()[1];
        prop_assert!(a.combine(b).equivalent(&b.combine(a), doms).unwrap());
        let one = Constraint::always(WeightedInt);
        prop_assert!(a.combine(&one).equivalent(a, doms).unwrap());
        if let Some(c) = p.constraints().get(2) {
            let left = a.combine(b).combine(c);
            let right = a.combine(&b.combine(c));
            prop_assert!(left.equivalent(&right, doms).unwrap());
        }
    }

    /// Retract-after-tell: the general residuation identity
    /// `((σ ⊗ c) ÷ c) ⊗ c ≡ σ ⊗ c` holds even when `c` forbids tuples
    /// outright (`∞` entries). The stronger `(σ ⊗ c) ÷ c ≡ σ` requires
    /// `c` to stay finite: dividing by the semiring zero yields the
    /// top, erasing what σ said there.
    #[test]
    fn divide_inverts_combine(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        if p.constraints().len() < 2 { return Ok(()); }
        let sigma = combine_all(WeightedInt, &p.constraints()[1..]);
        let c = &p.constraints()[0];
        let told = sigma.combine(c);
        let back = told.divide(c);
        prop_assert!(back.combine(c).equivalent(&told, doms).unwrap());
        // Restrict to finite (non-zero) divisors for the strong form.
        let finite = c.materialize(doms).unwrap();
        let strictly_finite = doms
            .tuples(finite.scope())
            .unwrap()
            .all(|t| finite.eval_tuple(&t) != u64::MAX);
        if strictly_finite {
            prop_assert!(back.equivalent(&sigma, doms).unwrap());
        }
    }

    /// Combination is dominated by its operands: (a ⊗ b) ⊑ a.
    #[test]
    fn combination_is_decreasing(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        if p.constraints().len() < 2 { return Ok(()); }
        let a = &p.constraints()[0];
        let b = &p.constraints()[1];
        prop_assert!(a.combine(b).leq(a, doms).unwrap());
        prop_assert!(a.combine(b).leq(b, doms).unwrap());
    }

    /// Projection and consistency: projecting twice equals projecting
    /// once, and ⇓∅ of a projection equals ⇓∅ of the original.
    #[test]
    fn projection_laws(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        let all = combine_all(WeightedInt, p.constraints());
        let keep: Vec<Var> = all.scope().iter().take(1).cloned().collect();
        let once = all.project(&keep, doms).unwrap();
        let twice = once.project(&keep, doms).unwrap();
        prop_assert!(once.equivalent(&twice, doms).unwrap());
        prop_assert_eq!(
            once.consistency(doms).unwrap(),
            all.consistency(doms).unwrap()
        );
    }

    /// The residuation Galois property lifts to constraints:
    /// c2 ⊗ (c1 ÷ c2) ⊑ c1.
    #[test]
    fn constraint_residuation_underapproximates(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        if p.constraints().len() < 2 { return Ok(()); }
        let c1 = &p.constraints()[0];
        let c2 = &p.constraints()[1];
        let q = c1.divide(c2);
        prop_assert!(c2.combine(&q).leq(c1, doms).unwrap());
    }
}

/// The frontier of a solution as an order-free set of rendered
/// `(assignment, level)` pairs, for cross-solver comparison.
fn frontier_set<S: Semiring>(solution: &Solution<S>) -> BTreeSet<String> {
    solution
        .best()
        .iter()
        .map(|(eta, level)| format!("{eta} -> {level:?}"))
        .collect()
}

/// Every engine configuration (compiled evaluation, 1 or 3 worker
/// threads) of the enumeration, branch-and-bound and bucket solvers
/// must reproduce the lazy sequential reference on a totally ordered
/// semiring.
fn check_total_order_engines<S: Semiring>(p: &Scsp<S>) -> Result<(), TestCaseError> {
    let reference = EnumerationSolver::new().solve(p).unwrap();
    for threads in [1, 3] {
        let config = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
        let enumeration = EnumerationSolver::with_config(config).solve(p).unwrap();
        prop_assert_eq!(enumeration.blevel(), reference.blevel());
        let t1 = enumeration.solution_constraint().unwrap();
        let t2 = reference.solution_constraint().unwrap();
        prop_assert!(t1.equivalent(t2, p.domains()).unwrap());
        prop_assert_eq!(frontier_set(&enumeration), frontier_set(&reference));

        let bnb = BranchAndBound::with_config(VarOrder::Input, config)
            .solve(p)
            .unwrap();
        prop_assert_eq!(bnb.blevel(), reference.blevel());

        let be = BucketElimination::with_config(EliminationOrder::InputReverse, config)
            .solve(p)
            .unwrap();
        prop_assert_eq!(be.blevel(), reference.blevel());
        let t3 = be.solution_constraint().unwrap();
        prop_assert!(t3.equivalent(t2, p.domains()).unwrap());
    }
    Ok(())
}

/// Whether every frontier element of `a` is dominated-or-equalled by
/// some frontier element of `b`. Only this direction is meaningful
/// against the enumeration reference on partial orders: its `con`-table
/// entries are `+`-aggregates (least upper bounds) over the eliminated
/// variables, which no single assignment need attain.
fn frontier_covered<S: Semiring>(semiring: &S, a: &Solution<S>, b: &Solution<S>) -> bool {
    a.best()
        .iter()
        .all(|(_, x)| b.best().iter().any(|(_, y)| semiring.leq(x, y)))
}

/// The probabilistic engines agree up to floating-point rounding: the
/// compiled evaluator multiplies constraint levels in scope-completion
/// order rather than declaration order, which can differ in the last
/// ulp on ℝ-valued semirings.
fn check_probabilistic_engines(p: &Scsp<Probabilistic>) -> Result<(), TestCaseError> {
    let close = |a: &Unit, b: &Unit| (a.get() - b.get()).abs() <= 1e-9;
    let reference = EnumerationSolver::new().solve(p).unwrap();
    for threads in [1, 3] {
        let config = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
        let enumeration = EnumerationSolver::with_config(config).solve(p).unwrap();
        prop_assert!(close(enumeration.blevel(), reference.blevel()));
        let bnb = BranchAndBound::with_config(VarOrder::Input, config)
            .solve(p)
            .unwrap();
        prop_assert!(close(bnb.blevel(), reference.blevel()));
        let be = BucketElimination::with_config(EliminationOrder::InputReverse, config)
            .solve(p)
            .unwrap();
        prop_assert!(close(be.blevel(), reference.blevel()));
    }
    Ok(())
}

/// The partial-order engines (Pareto branch-and-bound, bucket
/// elimination) must reproduce the reference blevel and a
/// Pareto-equivalent frontier at every thread count.
fn check_partial_order_engines<S: Semiring>(p: &Scsp<S>) -> Result<(), TestCaseError> {
    let reference = EnumerationSolver::new().solve(p).unwrap();
    let pareto_reference = ParetoBranchAndBound::with_config(SolverConfig::reference())
        .solve(p)
        .unwrap();
    for threads in [1, 3] {
        let config = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
        let enumeration = EnumerationSolver::with_config(config).solve(p).unwrap();
        prop_assert_eq!(enumeration.blevel(), reference.blevel());
        prop_assert_eq!(frontier_set(&enumeration), frontier_set(&reference));

        let pareto = ParetoBranchAndBound::with_config(config).solve(p).unwrap();
        prop_assert_eq!(pareto.blevel(), reference.blevel());
        // Determinism: the compiled parallel frontier is identical (in
        // content, not just up to domination) to the lazy sequential one.
        prop_assert_eq!(frontier_set(&pareto), frontier_set(&pareto_reference));
        // And every witness it reports is consistent with the
        // enumeration aggregates.
        prop_assert!(frontier_covered(p.semiring(), &pareto, &reference));

        let be = BucketElimination::with_config(EliminationOrder::InputReverse, config)
            .solve(p)
            .unwrap();
        prop_assert_eq!(be.blevel(), reference.blevel());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Compiled + parallel engines agree with the lazy reference on
    /// random weighted problems.
    #[test]
    fn parallel_engines_agree_weighted(cfg in cfg_strategy()) {
        check_total_order_engines(&random_weighted(&cfg))?;
    }

    /// ... on random fuzzy problems (idempotent ×).
    #[test]
    fn parallel_engines_agree_fuzzy(cfg in cfg_strategy()) {
        check_total_order_engines(&random_fuzzy(&cfg))?;
    }

    /// ... on random probabilistic problems (× is ℝ multiplication, so
    /// agreement is up to rounding).
    #[test]
    fn parallel_engines_agree_probabilistic(cfg in cfg_strategy()) {
        check_probabilistic_engines(&random_probabilistic(&cfg))?;
    }

    /// ... and on the partially ordered product semiring, where the
    /// frontier itself must match.
    #[test]
    fn parallel_engines_agree_product(cfg in cfg_strategy()) {
        check_partial_order_engines(&random_product(&cfg))?;
    }
}

/// The shrunk configurations recorded in
/// `solver_properties.proptest-regressions`, re-run deterministically
/// on every engine so the historical failures stay covered even when
/// the regression file is not replayed.
#[test]
fn pinned_regression_configs_stay_green() {
    let pinned = [
        RandomScsp {
            vars: 2,
            domain_size: 2,
            constraints: 2,
            arity: 2,
            seed: 3797179113194468951,
        },
        RandomScsp {
            vars: 3,
            domain_size: 2,
            constraints: 1,
            arity: 1,
            seed: 4927027093462901669,
        },
        RandomScsp {
            vars: 3,
            domain_size: 2,
            constraints: 1,
            arity: 1,
            seed: 1496016651266552688,
        },
    ];
    for cfg in pinned {
        let p = random_weighted(&cfg);
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        for order in [
            VarOrder::Input,
            VarOrder::SmallestDomain,
            VarOrder::MostConstrained,
        ] {
            let bnb = BranchAndBound::new(order).solve(&p).unwrap();
            assert_eq!(bnb.blevel(), reference.blevel(), "{cfg:?}");
        }
        for order in [EliminationOrder::InputReverse, EliminationOrder::MinDegree] {
            let be = BucketElimination::new(order).solve(&p).unwrap();
            assert_eq!(be.blevel(), reference.blevel(), "{cfg:?}");
            let t1 = be.solution_constraint().unwrap();
            let t2 = reference.solution_constraint().unwrap();
            assert!(t1.equivalent(t2, p.domains()).unwrap(), "{cfg:?}");
        }
        check_total_order_engines(&p).unwrap();
        check_partial_order_engines(&random_product(&cfg)).unwrap();
    }
}

/// A deterministic sanity check that bucket elimination scales where
/// enumeration cannot: a 14-variable chain (4^14 ≈ 2.7·10⁸ tuples for
/// enumeration) solves instantly by elimination.
#[test]
fn bucket_elimination_handles_long_chains() {
    let p = chain_weighted(14, 4, 9);
    let be = BucketElimination::new(EliminationOrder::MinDegree)
        .solve(&p)
        .unwrap();
    // A chain of |x_i + k_i − x_{i+1}| constraints is always
    // 0-satisfiable when every offset stays in range... not guaranteed
    // for all seeds, but the blevel must at least be finite.
    assert!(*be.blevel() < u64::MAX);
}

/// Residuation sanity on the semiring itself, driven through the
/// constraint layer with a handcrafted store.
#[test]
fn weighted_store_algebra_roundtrip() {
    let doms = Domains::new().with("x", Domain::ints(0..=6));
    let s = WeightedInt;
    let c_a = Constraint::unary(s, "x", |v| 3 * v.as_int().unwrap() as u64 + 1);
    let c_b = Constraint::unary(s, "x", |v| v.as_int().unwrap() as u64 + 2);
    let combined = c_a.combine(&c_b);
    let back_a = combined.divide(&c_b);
    let back_b = combined.divide(&c_a);
    assert!(back_a.equivalent(&c_a, &doms).unwrap());
    assert!(back_b.equivalent(&c_b, &doms).unwrap());
    // And the semiring-level identity behind it.
    assert_eq!(s.div(&s.times(&7, &3), &3), 7);
}
