//! Property-based cross-crate tests: solver agreement and algebraic
//! identities of the soft constraint system.

use proptest::prelude::*;
use softsoa::core::generate::{chain_weighted, random_fuzzy, random_weighted, RandomScsp};
use softsoa::core::solve::{
    BranchAndBound, BucketElimination, EliminationOrder, EnumerationSolver, Solver, VarOrder,
};
use softsoa::core::{combine_all, Constraint, Domain, Domains, Var};
use softsoa::semiring::{Residuated, Semiring, WeightedInt};

fn cfg_strategy() -> impl Strategy<Value = RandomScsp> {
    (2usize..6, 2usize..4, 1usize..8, 1usize..3, any::<u64>()).prop_map(
        |(vars, domain_size, constraints, arity, seed)| RandomScsp {
            vars,
            domain_size,
            constraints,
            arity,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three solvers compute the same blevel on random weighted
    /// problems.
    #[test]
    fn solvers_agree_weighted(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        for order in [VarOrder::Input, VarOrder::SmallestDomain, VarOrder::MostConstrained] {
            let bnb = BranchAndBound::new(order).solve(&p).unwrap();
            prop_assert_eq!(bnb.blevel(), reference.blevel());
        }
        for order in [EliminationOrder::InputReverse, EliminationOrder::MinDegree] {
            let be = BucketElimination::new(order).solve(&p).unwrap();
            prop_assert_eq!(be.blevel(), reference.blevel());
            // The solution tables must agree extensionally.
            let t1 = be.solution_constraint().unwrap();
            let t2 = reference.solution_constraint().unwrap();
            prop_assert!(t1.equivalent(t2, p.domains()).unwrap());
        }
    }

    /// Same agreement on fuzzy problems (idempotent ×).
    #[test]
    fn solvers_agree_fuzzy(cfg in cfg_strategy()) {
        let p = random_fuzzy(&cfg);
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        let bnb = BranchAndBound::default().solve(&p).unwrap();
        let be = BucketElimination::default().solve(&p).unwrap();
        prop_assert_eq!(bnb.blevel(), reference.blevel());
        prop_assert_eq!(be.blevel(), reference.blevel());
    }

    /// Chains have induced width 1; bucket elimination must match the
    /// reference there too.
    #[test]
    fn solvers_agree_on_chains(n in 3usize..8, domain in 2usize..4, seed in any::<u64>()) {
        let p = chain_weighted(n, domain, seed);
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        let be = BucketElimination::default().solve(&p).unwrap();
        prop_assert_eq!(be.blevel(), reference.blevel());
    }

    /// ⊗ is commutative and associative extensionally; 1̄ is its unit.
    #[test]
    fn combination_laws(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        if p.constraints().len() < 2 { return Ok(()); }
        let a = &p.constraints()[0];
        let b = &p.constraints()[1];
        prop_assert!(a.combine(b).equivalent(&b.combine(a), doms).unwrap());
        let one = Constraint::always(WeightedInt);
        prop_assert!(a.combine(&one).equivalent(a, doms).unwrap());
        if let Some(c) = p.constraints().get(2) {
            let left = a.combine(b).combine(c);
            let right = a.combine(&b.combine(c));
            prop_assert!(left.equivalent(&right, doms).unwrap());
        }
    }

    /// Retract-after-tell: the general residuation identity
    /// `((σ ⊗ c) ÷ c) ⊗ c ≡ σ ⊗ c` holds even when `c` forbids tuples
    /// outright (`∞` entries). The stronger `(σ ⊗ c) ÷ c ≡ σ` requires
    /// `c` to stay finite: dividing by the semiring zero yields the
    /// top, erasing what σ said there.
    #[test]
    fn divide_inverts_combine(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        if p.constraints().len() < 2 { return Ok(()); }
        let sigma = combine_all(WeightedInt, &p.constraints()[1..]);
        let c = &p.constraints()[0];
        let told = sigma.combine(c);
        let back = told.divide(c);
        prop_assert!(back.combine(c).equivalent(&told, doms).unwrap());
        // Restrict to finite (non-zero) divisors for the strong form.
        let finite = c.materialize(doms).unwrap();
        let strictly_finite = doms
            .tuples(finite.scope())
            .unwrap()
            .all(|t| finite.eval_tuple(&t) != u64::MAX);
        if strictly_finite {
            prop_assert!(back.equivalent(&sigma, doms).unwrap());
        }
    }

    /// Combination is dominated by its operands: (a ⊗ b) ⊑ a.
    #[test]
    fn combination_is_decreasing(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        if p.constraints().len() < 2 { return Ok(()); }
        let a = &p.constraints()[0];
        let b = &p.constraints()[1];
        prop_assert!(a.combine(b).leq(a, doms).unwrap());
        prop_assert!(a.combine(b).leq(b, doms).unwrap());
    }

    /// Projection and consistency: projecting twice equals projecting
    /// once, and ⇓∅ of a projection equals ⇓∅ of the original.
    #[test]
    fn projection_laws(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        let all = combine_all(WeightedInt, p.constraints());
        let keep: Vec<Var> = all.scope().iter().take(1).cloned().collect();
        let once = all.project(&keep, doms).unwrap();
        let twice = once.project(&keep, doms).unwrap();
        prop_assert!(once.equivalent(&twice, doms).unwrap());
        prop_assert_eq!(
            once.consistency(doms).unwrap(),
            all.consistency(doms).unwrap()
        );
    }

    /// The residuation Galois property lifts to constraints:
    /// c2 ⊗ (c1 ÷ c2) ⊑ c1.
    #[test]
    fn constraint_residuation_underapproximates(cfg in cfg_strategy()) {
        let p = random_weighted(&cfg);
        let doms = p.domains();
        if p.constraints().len() < 2 { return Ok(()); }
        let c1 = &p.constraints()[0];
        let c2 = &p.constraints()[1];
        let q = c1.divide(c2);
        prop_assert!(c2.combine(&q).leq(c1, doms).unwrap());
    }
}

/// A deterministic sanity check that bucket elimination scales where
/// enumeration cannot: a 14-variable chain (4^14 ≈ 2.7·10⁸ tuples for
/// enumeration) solves instantly by elimination.
#[test]
fn bucket_elimination_handles_long_chains() {
    let p = chain_weighted(14, 4, 9);
    let be = BucketElimination::new(EliminationOrder::MinDegree)
        .solve(&p)
        .unwrap();
    // A chain of |x_i + k_i − x_{i+1}| constraints is always
    // 0-satisfiable when every offset stays in range... not guaranteed
    // for all seeds, but the blevel must at least be finite.
    assert!(*be.blevel() < u64::MAX);
}

/// Residuation sanity on the semiring itself, driven through the
/// constraint layer with a handcrafted store.
#[test]
fn weighted_store_algebra_roundtrip() {
    let doms = Domains::new().with("x", Domain::ints(0..=6));
    let s = WeightedInt;
    let c_a = Constraint::unary(s, "x", |v| 3 * v.as_int().unwrap() as u64 + 1);
    let c_b = Constraint::unary(s, "x", |v| v.as_int().unwrap() as u64 + 2);
    let combined = c_a.combine(&c_b);
    let back_a = combined.divide(&c_b);
    let back_b = combined.divide(&c_a);
    assert!(back_a.equivalent(&c_a, &doms).unwrap());
    assert!(back_b.equivalent(&c_b, &doms).unwrap());
    // And the semiring-level identity behind it.
    assert_eq!(s.div(&s.times(&7, &3), &3), 7);
}
