//! Integration tests of the broker negotiation protocol, service
//! composition, monitoring and failure injection.

use softsoa::core::{Constraint, Domain, Var};
use softsoa::nmsccp::Interval;
use softsoa::semiring::{Fuzzy, Probabilistic, Unit, Weight, Weighted};
use softsoa::soa::{
    Broker, NegotiationError, NegotiationRequest, OfferShape, QosDocument, QosOffer, Registry,
    ServiceDescription, ServiceId, SimConfig, SimService, SlaMonitor,
};
use softsoa_dependability::Attribute;

fn reliability_offer(variable: &str, shape: OfferShape) -> QosOffer {
    QosOffer {
        attribute: Attribute::Reliability,
        variable: variable.into(),
        shape,
    }
}

fn provider(id: &str, capability: &str, variable: &str, shape: OfferShape) -> ServiceDescription {
    ServiceDescription::new(
        id,
        "acme",
        capability,
        QosDocument::new(id).with_offer(reliability_offer(variable, shape)),
    )
}

fn fuzzy_request(floor: f64) -> NegotiationRequest<Fuzzy> {
    NegotiationRequest {
        capability: "filter".into(),
        variable: Var::new("x"),
        domain: Domain::ints(0..=10),
        constraint: Constraint::unary(Fuzzy, "x", |v| {
            Unit::clamped(v.as_int().unwrap() as f64 / 10.0)
        }),
        acceptance: Interval::levels(Unit::clamped(floor), Unit::MAX),
    }
}

#[test]
fn broker_selects_among_many_providers() {
    let mut registry = Registry::new();
    for (id, peak) in [("p1", 0.4), ("p2", 0.9), ("p3", 0.6)] {
        registry.publish(provider(
            id,
            "filter",
            "x",
            OfferShape::Constant { level: peak },
        ));
    }
    let broker = Broker::new(Fuzzy, registry);
    let slas = broker
        .negotiate_all(&fuzzy_request(0.0), QosOffer::to_fuzzy)
        .unwrap();
    assert_eq!(slas.len(), 3);
    let best = broker
        .negotiate(&fuzzy_request(0.0), QosOffer::to_fuzzy)
        .unwrap();
    assert_eq!(best.service, ServiceId::new("p2"));
    assert_eq!(best.agreed_level, Unit::clamped(0.9));
}

#[test]
fn acceptance_floor_filters_agreements() {
    let mut registry = Registry::new();
    registry.publish(provider(
        "weak",
        "filter",
        "x",
        OfferShape::Constant { level: 0.3 },
    ));
    registry.publish(provider(
        "strong",
        "filter",
        "x",
        OfferShape::Constant { level: 0.7 },
    ));
    let broker = Broker::new(Fuzzy, registry);
    // Floor 0.5: only "strong" passes.
    let slas = broker
        .negotiate_all(&fuzzy_request(0.5), QosOffer::to_fuzzy)
        .unwrap();
    assert_eq!(slas.len(), 1);
    assert_eq!(slas[0].service, ServiceId::new("strong"));
    // Floor 0.8: nobody passes.
    let err = broker
        .negotiate(&fuzzy_request(0.8), QosOffer::to_fuzzy)
        .unwrap_err();
    assert!(matches!(err, NegotiationError::NoAgreement(_)));
}

#[test]
fn failure_injection_deregistering_the_only_provider() {
    let mut registry = Registry::new();
    registry.publish(provider(
        "only",
        "filter",
        "x",
        OfferShape::Constant { level: 0.9 },
    ));
    let mut broker = Broker::new(Fuzzy, registry);
    assert!(broker
        .negotiate(&fuzzy_request(0.0), QosOffer::to_fuzzy)
        .is_ok());
    // The provider goes away (simulated crash): rediscovery fails.
    broker.registry_mut().deregister(&ServiceId::new("only"));
    let err = broker
        .negotiate(&fuzzy_request(0.0), QosOffer::to_fuzzy)
        .unwrap_err();
    assert!(matches!(err, NegotiationError::NoProvider(_)));
}

#[test]
fn weighted_negotiation_with_linear_policies() {
    // The paper's Sec. 4.1 setting through the broker: x failures to
    // absorb, hours as cost; provider charges 2x, client x + 3.
    let mut registry = Registry::new();
    registry.publish(provider(
        "recovery",
        "failure-mgmt",
        "x",
        OfferShape::Linear {
            slope: 2.0,
            intercept: 0.0,
        },
    ));
    let request = NegotiationRequest {
        capability: "failure-mgmt".into(),
        variable: Var::new("x"),
        domain: Domain::ints(0..=10),
        constraint: Constraint::unary(Weighted, "x", |v| {
            Weight::saturating(v.as_int().unwrap() as f64 + 3.0)
        }),
        acceptance: Interval::levels(Weight::new(10.0).unwrap(), Weight::ZERO),
    };
    let sla = Broker::new(Weighted, registry)
        .negotiate(&request, QosOffer::to_weighted)
        .unwrap();
    // σ = 3x + 3, best at x = 0 → 3 hours.
    assert_eq!(sla.agreed_level, Weight::new(3.0).unwrap());
}

#[test]
fn composition_aggregates_reliability_across_stages() {
    let mut registry = Registry::new();
    registry.publish(provider(
        "red",
        "red-filter",
        "r",
        OfferShape::Constant { level: 0.9 },
    ));
    registry.publish(provider(
        "bw",
        "bw-filter",
        "b",
        OfferShape::Constant { level: 0.96 },
    ));
    registry.publish(provider(
        "comp",
        "compression",
        "c",
        OfferShape::Constant { level: 0.99 },
    ));
    let stage = |capability: &str, var: &str| NegotiationRequest {
        capability: capability.into(),
        variable: Var::new(var),
        domain: Domain::ints(0..=1),
        constraint: Constraint::always(Probabilistic),
        acceptance: Interval::any(&Probabilistic),
    };
    let broker = Broker::new(Probabilistic, registry);
    let composition = broker
        .compose(
            &[
                stage("red-filter", "r"),
                stage("bw-filter", "b"),
                stage("compression", "c"),
            ],
            QosOffer::to_probabilistic,
        )
        .unwrap();
    let expected = 0.9 * 0.96 * 0.99;
    assert!((composition.end_to_end_level.get() - expected).abs() < 1e-12);
    assert_eq!(composition.slas.len(), 3);
    // The composed interface at ∅ is the end-to-end level.
    let iface = composition.interface(&[]).unwrap();
    assert_eq!(
        iface.eval(&softsoa::core::Assignment::new()),
        composition.end_to_end_level
    );
}

#[test]
fn monitoring_detects_sla_violations_of_a_negotiated_binding() {
    let mut registry = Registry::new();
    registry.publish(provider(
        "svc",
        "filter",
        "x",
        OfferShape::Constant { level: 0.95 },
    ));
    let broker = Broker::new(Probabilistic, registry);
    let request = NegotiationRequest {
        capability: "filter".into(),
        variable: Var::new("x"),
        domain: Domain::ints(0..=1),
        constraint: Constraint::always(Probabilistic),
        acceptance: Interval::any(&Probabilistic),
    };
    let sla = broker
        .negotiate(&request, QosOffer::to_probabilistic)
        .unwrap();
    assert_eq!(sla.agreed_level, Unit::clamped(0.95));

    // An honest service passes the monitor...
    let mut honest = SimService::new(SimConfig {
        reliability: 0.95,
        seed: 5,
        ..Default::default()
    });
    let report = SlaMonitor::default().observe(&mut honest, sla.agreed_level);
    assert!(!report.violated);

    // ...a dishonest one is flagged.
    let mut dishonest = SimService::new(SimConfig {
        reliability: 0.70,
        seed: 5,
        ..Default::default()
    });
    let report = SlaMonitor::default().observe(&mut dishonest, sla.agreed_level);
    assert!(report.violated);
}

#[test]
fn negotiate_compose_orchestrate_end_to_end() {
    use softsoa::soa::{Orchestrator, SimConfig};

    // 1. Negotiate a two-stage composition...
    let mut registry = Registry::new();
    registry.publish(provider(
        "red",
        "red-filter",
        "r",
        OfferShape::Constant { level: 0.95 },
    ));
    registry.publish(provider(
        "bw",
        "bw-filter",
        "b",
        OfferShape::Constant { level: 0.99 },
    ));
    let stage = |capability: &str, var: &str| NegotiationRequest {
        capability: capability.into(),
        variable: Var::new(var),
        domain: Domain::ints(0..=1),
        constraint: Constraint::always(Probabilistic),
        acceptance: Interval::any(&Probabilistic),
    };
    let broker = Broker::new(Probabilistic, registry);
    let composition = broker
        .compose(
            &[stage("red-filter", "r"), stage("bw-filter", "b")],
            QosOffer::to_probabilistic,
        )
        .unwrap();

    // 2. ...deploy it: the red filter under-delivers at runtime.
    let mut orch = Orchestrator::new(0)
        .with_stage(
            composition.slas[0].service.clone(),
            SimConfig {
                reliability: 0.80,
                seed: 21,
                ..Default::default()
            },
        )
        .with_stage(
            composition.slas[1].service.clone(),
            SimConfig {
                reliability: 0.99,
                seed: 22,
                ..Default::default()
            },
        );
    let report = orch.run_workload(4_000);

    // 3. The measured end-to-end reliability falls short of the agreed
    // composition level, and the verdicts blame exactly the red filter.
    assert!(report.end_to_end_reliability < composition.end_to_end_level.get());
    let verdicts =
        Orchestrator::check_slas(&report, &composition.slas, |sla| sla.agreed_level, 0.02);
    assert_eq!(verdicts.len(), 2);
    assert!(verdicts[0].violated, "red filter must be flagged");
    assert!(!verdicts[1].violated, "bw filter is honest");
}

#[test]
fn qos_documents_roundtrip_through_the_wire_format() {
    let doc = QosDocument::new("svc")
        .with_offer(reliability_offer(
            "x",
            OfferShape::Linear {
                slope: 0.05,
                intercept: 0.8,
            },
        ))
        .with_offer(QosOffer {
            attribute: Attribute::Availability,
            variable: "slots".into(),
            shape: OfferShape::Range { min: 1, max: 8 },
        });
    let json = doc.to_json().unwrap();
    assert_eq!(QosDocument::from_json(&json).unwrap(), doc);
}

#[test]
fn relaxation_retract_never_worsens_the_agreement() {
    // R7 `retract` driven through the broker: a client concession
    // (dividing out part of its policy) is nonmonotonic removal, and
    // the resulting agreement level must never be worse than the one
    // the un-relaxed policy achieved.
    let mut registry = Registry::new();
    registry.publish(provider(
        "svc",
        "filter",
        "x",
        OfferShape::Constant { level: 0.8 },
    ));
    let broker = Broker::new(Fuzzy, registry);

    // The client's policy is its base preference capped at 0.3 — too
    // strict for a 0.5 acceptance floor.
    let cap = Constraint::unary(Fuzzy, "x", |_| Unit::clamped(0.3));
    let mut strict = fuzzy_request(0.5);
    strict.constraint = strict.constraint.combine(&cap);

    let err = broker.negotiate(&strict, QosOffer::to_fuzzy).unwrap_err();
    assert!(matches!(err, NegotiationError::NoAgreement(_)));

    // The level the strict policy actually achieves (floor dropped).
    let mut strict_any = strict.clone();
    strict_any.acceptance = Interval::levels(Unit::MIN, Unit::MAX);
    let strict_level = broker
        .negotiate(&strict_any, QosOffer::to_fuzzy)
        .unwrap()
        .agreed_level;

    // One concession — retracting the cap — turns the rejection into
    // an agreement inside the interval, and cannot worsen the level.
    let (sla, concessions) = broker
        .negotiate_with_relaxation(&strict, &[cap], QosOffer::to_fuzzy)
        .unwrap();
    assert_eq!(concessions, 1);
    assert!(sla.agreed_level >= Unit::clamped(0.5), "interval check");
    assert!(
        sla.agreed_level >= strict_level,
        "retract must never worsen: {:?} vs {:?}",
        sla.agreed_level,
        strict_level
    );
}

#[test]
fn qos_republication_updates_bindings_across_epochs() {
    // R8 `update` driven through the broker: a provider re-publishes
    // its QoS document, the epoch-versioned registry publishes the new
    // snapshot atomically, and the incremental binding path re-solves
    // against the new offer — while readers holding the old snapshot
    // keep seeing the old epoch.
    let mut registry = Registry::new();
    registry.publish(provider(
        "svc",
        "filter",
        "x",
        OfferShape::Constant { level: 0.6 },
    ));
    let mut broker = Broker::new(Fuzzy, registry).with_incremental(true);

    let before = broker
        .negotiate(&fuzzy_request(0.5), QosOffer::to_fuzzy)
        .unwrap();
    assert_eq!(before.agreed_level, Unit::clamped(0.6));

    let stale = broker.registry();
    // Upgrade: same service id, better constant offer.
    broker.registry_mut().publish(provider(
        "svc",
        "filter",
        "x",
        OfferShape::Constant { level: 0.9 },
    ));
    assert!(
        stale.epoch() < broker.registry().epoch(),
        "re-publication must bump the registry epoch"
    );

    let after = broker
        .negotiate(&fuzzy_request(0.5), QosOffer::to_fuzzy)
        .unwrap();
    assert_eq!(after.agreed_level, Unit::clamped(0.9));
    assert!(after.agreed_level >= before.agreed_level);

    // Downgrade below the floor: the interval check must now reject.
    broker.registry_mut().publish(provider(
        "svc",
        "filter",
        "x",
        OfferShape::Constant { level: 0.2 },
    ));
    let err = broker
        .negotiate(&fuzzy_request(0.5), QosOffer::to_fuzzy)
        .unwrap_err();
    assert!(matches!(err, NegotiationError::NoAgreement(_)));
}
