//! Workspace-local shim of the `criterion` benchmark API (no crates.io
//! access in this build environment).
//!
//! Implements a small but honest measuring harness: per benchmark it
//! warms up, auto-calibrates an iteration count, takes `sample_size`
//! timed samples, and reports min/median/mean wall-clock time per
//! iteration on stdout. The API mirrors the subset the workspace's
//! benches use: `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, `criterion_group!`, `criterion_main!`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time spent measuring one benchmark.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(400);
/// Warm-up budget before sampling starts.
const WARMUP_BUDGET: Duration = Duration::from_millis(100);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Applies command-line arguments (`cargo bench -- <filter>`).
    ///
    /// Recognises a positional substring filter and ignores harness
    /// flags such as `--bench` that cargo passes through.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" => {}
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                        self.sample_size = n;
                    }
                }
                s if s.starts_with("--") => {
                    // Unknown harness flag; skip a possible value.
                    let _ = s;
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id().label;
        self.run_one(&label, self.sample_size, f);
        self
    }

    fn run_one<F>(&self, label: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            stats: None,
        };
        f(&mut bencher);
        match bencher.stats {
            Some(stats) => println!("{label:<60} {stats}"),
            None => println!("{label:<60} (no measurement)"),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs `f` as the benchmark `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&label, samples, f);
        self
    }

    /// Runs `f` with an input value as the benchmark `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report is printed eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion of the various id forms accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// The canonical id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing statistics for one benchmark, in ns per iteration.
struct Stats {
    min: f64,
    median: f64,
    mean: f64,
    iters_per_sample: u64,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "median {:>12}  min {:>12}  mean {:>12}  ({} iters/sample)",
            fmt_ns(self.median),
            fmt_ns(self.min),
            fmt_ns(self.mean),
            self.iters_per_sample
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Passed to each benchmark closure; runs the timed loop.
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Measures `routine`, preventing its result from being optimised
    /// away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: find an iteration count such that one
        // sample lasts long enough for the clock to resolve it.
        let mut iters: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_micros(200) || warmup_start.elapsed() >= WARMUP_BUDGET {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        // Fit the sample loop into the measurement budget.
        let per_sample = MEASUREMENT_BUDGET
            .checked_div(self.sample_size as u32)
            .unwrap_or(Duration::from_millis(10));
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            let mut done: u64 = 0;
            while done < iters {
                black_box(routine());
                done += 1;
            }
            let elapsed = t.elapsed();
            samples.push(elapsed.as_nanos() as f64 / iters as f64);
            if elapsed > per_sample.saturating_mul(4) {
                // A single sample blew the budget; stop early rather
                // than hang the harness on very slow benchmarks.
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.stats = Some(Stats {
            min,
            median,
            mean,
            iters_per_sample: iters,
        });
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_format_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("solver", 10).label, "solver/10");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
