//! Workspace-local JSON codec over the serde shim's [`Value`] tree.
//!
//! Provides `to_string`, `to_string_pretty` and `from_str` with the
//! `serde_json::Error` type the workspace names. The parser is a
//! recursive-descent JSON reader (escapes, `\uXXXX` with surrogate
//! pairs, nesting-depth cap); the writer emits compact or two-space
//! indented JSON.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// A JSON encoding or decoding failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Error {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e)
    }
}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises `value` as two-space indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses `text` into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(items.iter(), out, indent, level, ('[', ']'), |v, o, l| {
            write_value(v, o, indent, l)
        }),
        Value::Obj(pairs) => write_seq(
            pairs.iter(),
            out,
            indent,
            level,
            ('{', '}'),
            |(k, v), o, l| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, o, indent, l);
            },
        ),
    }
}

fn write_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(brackets.0);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out, level + 1);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets.1);
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let text = f.to_string();
        out.push_str(&text);
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl fmt::Display) -> Error {
        Error::new(format!("{} at byte {}", message, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("maximum nesting depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.error("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(self.error("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require a low one.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.error("lone high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("invalid utf-8"))?;
                    let ch = text.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Value {
        parse_value_complete(text).unwrap()
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), Value::Null);
        assert_eq!(parse("true"), Value::Bool(true));
        assert_eq!(parse("-42"), Value::Int(-42));
        assert_eq!(parse("18446744073709551615"), Value::UInt(u64::MAX));
        assert_eq!(parse("2.5"), Value::Float(2.5));
        assert_eq!(parse("1e3"), Value::Float(1000.0));
        assert_eq!(parse("\"a\\nb\\u00e9\""), Value::Str("a\nbé".to_string()));
    }

    #[test]
    fn compounds_parse() {
        let v = parse(r#"{"xs": [1, 2], "nested": {"k": "v"}, "empty": []}"#);
        assert_eq!(
            v.get("xs"),
            Some(&Value::Arr(vec![Value::Int(1), Value::Int(2)]))
        );
        assert_eq!(
            v.get("nested").and_then(|n| n.get("k")),
            Some(&Value::Str("v".into()))
        );
        assert_eq!(v.get("empty"), Some(&Value::Arr(vec![])));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud834\\udd1e\""), Value::Str("𝄞".to_string()));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(parse_value_complete("{").is_err());
        assert!(parse_value_complete("[1,]").is_err());
        assert!(parse_value_complete("1 2").is_err());
        assert!(parse_value_complete("\"\\q\"").is_err());
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse_value_complete(&deep).is_err());
    }

    #[test]
    fn write_round_trips() {
        let value = Value::Obj(vec![
            (
                "a".to_string(),
                Value::Arr(vec![Value::Int(1), Value::Float(0.5)]),
            ),
            ("s".to_string(), Value::Str("q\"\\\n".to_string())),
            ("big".to_string(), Value::UInt(u64::MAX)),
            ("none".to_string(), Value::Null),
        ]);
        let mut compact = String::new();
        write_value(&value, &mut compact, None, 0);
        assert_eq!(parse(&compact), value);
        let mut pretty = String::new();
        write_value(&value, &mut pretty, Some(2), 0);
        assert_eq!(parse(&pretty), value);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_round_trip_through_text() {
        let spec: (Vec<u64>, Option<String>) = (vec![1, 2, 3], None);
        let text = to_string(&spec).unwrap();
        let back: (Vec<u64>, Option<String>) = from_str(&text).unwrap();
        assert_eq!(back, spec);
    }
}
