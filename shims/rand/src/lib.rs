//! Workspace-local shim of the `rand` crate (no crates.io access).
//!
//! Implements the deterministic subset the workspace uses: a seedable
//! [`rngs::StdRng`] (SplitMix64 core — not the upstream ChaCha12, so
//! value *streams* differ from real `rand`, but every consumer in this
//! workspace only relies on determinism per seed), the [`Rng`]
//! extension trait (`random`, `random_range`, `random_ratio`,
//! `random_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::IndexedRandom::choose_multiple`].

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole carrier by
/// [`Rng::random`].
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types over which [`Rng::random_range`] can sample.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`; `hi > lo` guaranteed by callers.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_exclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi_exclusive: $t) -> $t {
                let span = hi_exclusive.wrapping_sub(lo) as u64;
                debug_assert!(span > 0, "empty sample range");
                // Multiply-shift bounded sampling (Lemire); the slight
                // bias for huge spans is irrelevant for test workloads.
                let hi128 = (rng.next_u64() as u128 * span as u128) >> 64;
                lo.wrapping_add(hi128 as u64 as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return <$t>::sample_range(rng, lo, hi);
                }
                <$t>::sample_range(rng, lo, hi + 1)
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i32, i64);

/// Extension methods for random sampling, implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator");
        assert!(numerator <= denominator, "ratio above one");
        u32::sample_range(self, 0, denominator) < numerator
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    ///
    /// Statistically solid for test/benchmark workloads and fully
    /// deterministic per seed; it does *not* reproduce upstream
    /// `rand::rngs::StdRng` value streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from indexable sequences.
    pub trait IndexedRandom {
        /// The element type.
        type Item;

        /// Chooses `amount` distinct elements uniformly at random
        /// (all of them, in random order, if `amount` exceeds the
        /// length).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Chooses one element uniformly at random.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index permutation.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.random_range(i..indices.len());
                indices.swap(i, j);
            }
            indices
                .into_iter()
                .take(amount)
                .map(|i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(0..10);
            assert!(x < 10);
            let y: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: u32 = rng.random_range(0..=10);
            assert!(z <= 10);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ratio_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_ratio(1, 10)).count();
        assert!((700..1300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool: Vec<usize> = (0..10).collect();
        for _ in 0..100 {
            let mut picked: Vec<usize> = pool.choose_multiple(&mut rng, 4).copied().collect();
            assert_eq!(picked.len(), 4);
            picked.sort_unstable();
            picked.dedup();
            assert_eq!(picked.len(), 4);
        }
    }
}
