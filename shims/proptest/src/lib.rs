//! Workspace-local shim of the `proptest` crate (no crates.io access).
//!
//! Provides the API subset the workspace's property tests use: the
//! [`proptest!`]/[`prop_oneof!`]/[`prop_assert!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, `prop_flat_map`,
//! `prop_recursive` and `boxed`, range/tuple/`Just`/`any` strategies,
//! [`collection::vec`], and [`test_runner::Config`].
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case reports its case index, and the
//!   run is reproducible because each test derives its RNG seed from
//!   the test name (override with `PROPTEST_SEED`);
//! - `&str` regex strategies generate printable strings of the
//!   requested rough length rather than full regex-directed text
//!   (the workspace only uses `"\\PC{0,64}"`);
//! - `.proptest-regressions` files are not replayed; regression
//!   inputs are pinned in ordinary unit tests instead.

// Re-exported so the `proptest!` macro expansion can name the RNG via
// `$crate::rand` even in crates that do not depend on `rand` directly.
#[doc(hidden)]
pub use rand;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// builds out of it.
        fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            U: Strategy,
            F: Fn(Self::Value) -> U,
        {
            FlatMap { inner: self, f }
        }

        /// Recursively extends this leaf strategy `depth` times via
        /// `recurse`, mixing shallower cases back in at every level.
        ///
        /// The `_desired_size`/`_expected_branch_size` hints of real
        /// proptest are accepted and ignored.
        fn prop_recursive<B, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            B: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> B,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current.clone()).boxed();
                current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
            }
            current
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Object-safe view used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut StdRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V> {
        inner: Arc<dyn DynStrategy<V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            self.inner.dyn_generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        U: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U::Value;

        fn generate(&self, rng: &mut StdRng) -> U::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let mut pick = rng.random_range(0..self.total);
            for (weight, arm) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return arm.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Types with a canonical whole-carrier strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uniform {
        ($($t:ty => $sample:expr),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    let f: fn(&mut StdRng) -> $t = $sample;
                    f(rng)
                }
            }
        )*};
    }

    impl_arbitrary_uniform! {
        bool => |rng| rng.random(),
        u8 => |rng| rng.random(),
        u32 => |rng| rng.random(),
        u64 => |rng| rng.random(),
        usize => |rng| rng.random(),
        i64 => |rng| rng.random(),
        f64 => |rng| rng.random(),
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Produces the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: rand::SampleUniform + PartialOrd + Copy,
        Range<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: rand::SampleUniform + PartialOrd + Copy,
        RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    /// Regex-flavoured string strategy: the workspace only uses
    /// printable-character classes, so generate `0..=64` printable
    /// chars (mostly ASCII, occasionally multi-byte) regardless of
    /// the exact pattern.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let len = rng.random_range(0..=64usize);
            (0..len)
                .map(|_| {
                    if rng.random_ratio(1, 8) {
                        // Some non-ASCII printable characters.
                        ['é', 'λ', '→', '√', '∞', '中', '𝄞'][rng.random_range(0..7usize)]
                    } else {
                        rng.random_range(0x20u32..0x7f) as u8 as char
                    }
                })
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` element count.
        fn size_bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn size_bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn size_bounds(self) -> (usize, usize) {
            self.into_inner()
        }
    }

    /// Strategy for vectors with the given element strategy and size.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates `Vec`s whose length lies within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.size_bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// Derives the deterministic per-test RNG seed: a stable hash of
    /// An explicit property failure, produced by `return Err(..)` from a
    /// test body. The shim's `prop_assert!` family panics instead, so this
    /// mostly exists to give test bodies a concrete `Result` error type.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// the test name unless `PROPTEST_SEED` overrides it.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse() {
                return seed;
            }
        }
        // FNV-1a, stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Property-test entry point mirroring proptest's macro shape.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($param:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config = $config;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $param = ($strategy).generate(&mut rng);)+
                // Mirror proptest: the body runs in a `Result`-returning
                // closure so `return Ok(())` early-exits are valid.
                let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    #[allow(unused_must_use, unreachable_code, clippy::unused_unit)]
                    {
                        $body;
                    }
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if !matches!(outcome, ::std::result::Result::Ok(::std::result::Result::Ok(()))) {
                    panic!(
                        "property {} failed at case {case}/{} (seed {seed}); \
                         rerun with PROPTEST_SEED={seed}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Assertion inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(0u8..10, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds, tuples compose, maps apply.
        #[test]
        fn generated_values_obey_bounds(
            x in 3usize..9,
            (lo, hi) in (0u64..5, 10u64..20),
            v in small_vec(),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(lo < 5 && (10..20).contains(&hi));
            prop_assert!(v.len() < 5 && v.iter().all(|&b| b < 10));
            let _ = flag;
        }

        #[test]
        fn oneof_and_recursive_terminate(n in oneof_strategy(), depth in nested()) {
            prop_assert!(n == 1 || n == 7);
            prop_assert!(depth <= 4);
        }
    }

    fn oneof_strategy() -> impl Strategy<Value = u8> {
        prop_oneof![4 => Just(1u8), 1 => Just(7u8)]
    }

    fn nested() -> BoxedStrategy<u8> {
        Just(0u8).prop_recursive(4, 8, 2, |inner| inner.prop_map(|d| d + 1))
    }

    #[test]
    fn string_strategy_is_printable() {
        use crate::strategy::Strategy;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        for _ in 0..50 {
            let s = "\\PC{0,64}".generate(&mut rng);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn flat_map_feeds_downstream_strategy() {
        use crate::strategy::Strategy;
        let strategy = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..3, n));
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
        for _ in 0..50 {
            let v = strategy.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
