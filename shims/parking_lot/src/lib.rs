//! Workspace-local shim of the `parking_lot` API over `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API subset it uses: [`Mutex`] with a
//! non-poisoning `lock()`, and [`Condvar`] whose `wait` borrows the
//! guard mutably (parking_lot style) instead of consuming it.

use std::sync;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic while holding the lock does not poison it
    /// for later callers (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily
/// move the underlying std guard out while re-acquiring the lock.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Blocks until notified, releasing the guarded lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let clone = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*clone;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
            true
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(handle.join().unwrap());
    }

    #[test]
    fn lock_is_not_poisoned_by_panics() {
        let m = Arc::new(Mutex::new(0));
        let clone = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
