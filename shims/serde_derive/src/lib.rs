//! `#[derive(Serialize, Deserialize)]` for the workspace's serde shim.
//!
//! Hand-rolled over `proc_macro` token trees (`syn`/`quote` are not
//! available offline). Supports exactly the shapes this workspace
//! serialises:
//!
//! - structs with named fields;
//! - enums with unit, newtype and struct variants (externally tagged);
//! - container attributes `#[serde(rename_all = "kebab-case")]` and
//!   `#[serde(untagged)]` (unit/newtype variants only);
//! - field attributes `#[serde(default)]` and
//!   `#[serde(default = "path")]`.
//!
//! Anything outside that subset fails the build with an explicit
//! message rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---- model -----------------------------------------------------------

struct Container {
    name: String,
    kebab: bool,
    untagged: bool,
    data: Data,
}

enum Data {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: Option<FieldDefault>,
}

enum FieldDefault {
    DefaultTrait,
    Path(String),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

// ---- parsing ---------------------------------------------------------

struct ContainerAttrs {
    kebab: bool,
    untagged: bool,
}

/// Reads `#[serde(...)]` container attributes, skipping everything else
/// (doc comments, other attributes).
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> (ContainerAttrs, Option<FieldDefault>) {
    let mut attrs = ContainerAttrs {
        kebab: false,
        untagged: false,
    };
    let mut default = None;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(group)) = tokens.get(*i + 1) else {
            panic!("expected attribute body after `#`");
        };
        *i += 2;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.get(1) else {
            panic!("expected `#[serde(...)]` arguments");
        };
        let args: Vec<TokenTree> = args.stream().into_iter().collect();
        let mut j = 0;
        while j < args.len() {
            let name = match &args[j] {
                TokenTree::Ident(id) => id.to_string(),
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    j += 1;
                    continue;
                }
                other => panic!("unsupported serde attribute token `{other}`"),
            };
            match name.as_str() {
                "untagged" => {
                    attrs.untagged = true;
                    j += 1;
                }
                "rename_all" => {
                    let lit = attr_value(&args, &mut j);
                    assert!(
                        lit == "kebab-case",
                        "serde shim derive only supports rename_all = \"kebab-case\", got {lit:?}"
                    );
                    attrs.kebab = true;
                }
                "default" => {
                    if matches!(args.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        default = Some(FieldDefault::Path(attr_value(&args, &mut j)));
                    } else {
                        default = Some(FieldDefault::DefaultTrait);
                        j += 1;
                    }
                }
                other => panic!("unsupported serde attribute `{other}` (shim derive)"),
            }
        }
    }
    (attrs, default)
}

/// Parses `name = "literal"` starting at `args[*j]`; advances past it.
fn attr_value(args: &[TokenTree], j: &mut usize) -> String {
    assert!(
        matches!(args.get(*j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '='),
        "expected `=` in serde attribute"
    );
    let Some(TokenTree::Literal(lit)) = args.get(*j + 2) else {
        panic!("expected string literal in serde attribute");
    };
    *j += 3;
    let text = lit.to_string();
    text.trim_matches('"').to_string()
}

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let (attrs, _) = take_attrs(&tokens, &mut i);

    // Optional visibility: `pub`, `pub(crate)`, ...
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let Some(TokenTree::Group(body)) = tokens.get(i) else {
        panic!("serde shim derive requires a braced body on `{name}` (no tuple/unit structs)");
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "serde shim derive requires named fields on `{name}`"
    );
    let body: Vec<TokenTree> = body.stream().into_iter().collect();

    let data = match kind.as_str() {
        "struct" => Data::Struct(parse_fields(&body, &name)),
        "enum" => Data::Enum(parse_variants(&body, &name)),
        other => panic!("cannot derive serde traits for `{other} {name}`"),
    };
    Container {
        name,
        kebab: attrs.kebab,
        untagged: attrs.untagged,
        data,
    }
}

fn parse_fields(tokens: &[TokenTree], container: &str) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_, default) = take_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name in `{container}`, found {other}"),
        };
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{container}.{name}`"
        );
        i += 1;
        // Skip the type: everything up to a comma at angle-bracket
        // depth 0 (generic arguments hide their commas behind depth).
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(tokens: &[TokenTree], container: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (_, default) = take_attrs(tokens, &mut i);
        assert!(
            default.is_none(),
            "serde shim derive does not support `default` on variants of `{container}`"
        );
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name in `{container}`, found {other}"),
        };
        i += 1;
        let kind = match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantKind::Struct(parse_fields(&inner, container))
            }
            _ => VariantKind::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// `RoundRobin` -> `round-robin` (serde's kebab-case rule).
fn kebab(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

impl Container {
    fn wire_name(&self, variant: &str) -> String {
        if self.kebab {
            kebab(variant)
        } else {
            variant.to_string()
        }
    }
}

// ---- codegen: Serialize ---------------------------------------------

fn serialize_fields_expr(fields: &[Field], access_prefix: &str) -> String {
    let mut code = String::from(
        "{ let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for field in fields {
        code.push_str(&format!(
            "obj.push((\"{name}\".to_string(), \
             ::serde::Serialize::to_value({access_prefix}{name})));\n",
            name = field.name,
        ));
    }
    code.push_str("::serde::Value::Obj(obj) }");
    code
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    let name = &container.name;
    let body = match &container.data {
        Data::Struct(fields) => serialize_fields_expr(fields, "&self."),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                let wire = container.wire_name(vname);
                let arm = match (&variant.kind, container.untagged) {
                    (VariantKind::Unit, false) => {
                        format!("{name}::{vname} => ::serde::Value::Str(\"{wire}\".to_string()),\n")
                    }
                    (VariantKind::Unit, true) => {
                        format!("{name}::{vname} => ::serde::Value::Null,\n")
                    }
                    (VariantKind::Newtype, false) => format!(
                        "{name}::{vname}(inner) => ::serde::Value::Obj(vec![(\
                         \"{wire}\".to_string(), ::serde::Serialize::to_value(inner))]),\n"
                    ),
                    (VariantKind::Newtype, true) => {
                        format!("{name}::{vname}(inner) => ::serde::Serialize::to_value(inner),\n")
                    }
                    (VariantKind::Struct(fields), untagged) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let fields_expr = serialize_fields_expr(fields, "");
                        let payload = if untagged {
                            fields_expr
                        } else {
                            format!(
                                "::serde::Value::Obj(vec![(\"{wire}\".to_string(), \
                                 {fields_expr})])"
                            )
                        };
                        format!(
                            "{name}::{vname} {{ {} }} => {payload},\n",
                            bindings.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serialize impl parses")
}

// ---- codegen: Deserialize -------------------------------------------

/// Expression (re)constructing one field from `pairs`.
fn field_expr(field: &Field, container: &str) -> String {
    let name = &field.name;
    let missing = match &field.default {
        Some(FieldDefault::DefaultTrait) => "::std::default::Default::default()".to_string(),
        Some(FieldDefault::Path(path)) => format!("{path}()"),
        None => format!(
            "::serde::Deserialize::from_value(&::serde::Value::Null)\
             .map_err(|_| ::serde::Error::missing_field(\"{name}\", \"{container}\"))?"
        ),
    };
    format!(
        "{name}: match pairs.iter().find(|(k, _)| k == \"{name}\") {{\n\
         Some((_, v)) => ::serde::Deserialize::from_value(v)\
         .map_err(|e| e.in_field(\"{name}\"))?,\n\
         None => {missing},\n\
         }},\n"
    )
}

fn deserialize_struct_body(constructor: &str, fields: &[Field], container: &str) -> String {
    let mut code = format!("Ok({constructor} {{\n");
    for field in fields {
        code.push_str(&field_expr(field, container));
    }
    code.push_str("})");
    code
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    let name = &container.name;
    let body = match &container.data {
        Data::Struct(fields) => format!(
            "match value {{\n\
             ::serde::Value::Obj(pairs) => {},\n\
             other => Err(::serde::Error::expected(\"object\", other)),\n\
             }}",
            deserialize_struct_body(name, fields, name)
        ),
        Data::Enum(variants) if container.untagged => {
            let mut tries = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.kind {
                    VariantKind::Unit => tries.push_str(&format!(
                        "if matches!(value, ::serde::Value::Null) \
                         {{ return Ok({name}::{vname}); }}\n"
                    )),
                    VariantKind::Newtype => tries.push_str(&format!(
                        "if let Ok(inner) = ::serde::Deserialize::from_value(value) \
                         {{ return Ok({name}::{vname}(inner)); }}\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let ctor = format!("{name}::{vname}");
                        let inner = deserialize_struct_body(&ctor, fields, name);
                        tries.push_str(&format!(
                            "if let ::serde::Value::Obj(pairs) = value {{\n\
                             let attempt = (|| -> ::std::result::Result<{name}, ::serde::Error> \
                             {{ {inner} }})();\n\
                             if let Ok(parsed) = attempt {{ return Ok(parsed); }}\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "{{\n{tries}\
                 Err(::serde::Error::custom(\
                 \"no untagged variant of {name} matched the input\"))\n}}"
            )
        }
        Data::Enum(variants) => {
            let mut string_arms = String::new();
            let mut object_arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                let wire = container.wire_name(vname);
                match &variant.kind {
                    VariantKind::Unit => {
                        string_arms.push_str(&format!("\"{wire}\" => Ok({name}::{vname}),\n"))
                    }
                    VariantKind::Newtype => object_arms.push_str(&format!(
                        "\"{wire}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)\
                         .map_err(|e| e.in_field(\"{wire}\"))?)),\n"
                    )),
                    VariantKind::Struct(fields) => {
                        let ctor = format!("{name}::{vname}");
                        let inner_body = deserialize_struct_body(&ctor, fields, name);
                        object_arms.push_str(&format!(
                            "\"{wire}\" => match inner {{\n\
                             ::serde::Value::Obj(pairs) => {inner_body},\n\
                             other => Err(::serde::Error::expected(\
                             \"object payload for variant `{wire}`\", other)),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match value {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {string_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{\n\
                 {object_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(::serde::Error::expected(\
                 \"variant name or single-key object\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<{name}, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("deserialize impl parses")
}
