//! Workspace-local shim of the `serde` data model (no crates.io
//! access in this build environment).
//!
//! Instead of serde's visitor architecture, this shim centres on a
//! concrete JSON-like [`Value`] tree: [`Serialize`] renders into it,
//! [`Deserialize`] reads from it, and the companion `serde_json` shim
//! converts it to and from JSON text. The `derive` feature re-exports
//! `#[derive(Serialize, Deserialize)]` macros (from the workspace's
//! `serde_derive` shim) that understand the attribute subset used in
//! this repository: `rename_all = "kebab-case"`, `untagged`,
//! `default`, and `default = "path"`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree both traits plug into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integers representable as `i64`.
    Int(i64),
    /// Integers above `i64::MAX` (e.g. `u64::MAX` tuple costs).
    UInt(u64),
    /// All other JSON numbers.
    Float(f64),
    /// JSON strings.
    Str(String),
    /// JSON arrays.
    Arr(Vec<Value>),
    /// JSON objects, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// A (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a free-form message.
    pub fn custom(message: impl fmt::Display) -> Error {
        Error {
            message: message.to_string(),
        }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Error {
        Error::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// Missing required field error.
    pub fn missing_field(field: &str, container: &str) -> Error {
        Error::custom(format!("missing field `{field}` in {container}"))
    }

    /// Adds field context to an existing error.
    pub fn in_field(self, field: &str) -> Error {
        Error::custom(format!("{}: {}", field, self.message))
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses a data tree into `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<bool, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("boolean", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let n: i64 = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(wide),
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                let n: u64 = match value {
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("negative integer for unsigned field"))?,
                    Value::UInt(n) => *n,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<$t, Error> {
                match value {
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Float(f) => Ok(*f as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<String, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Arc<str> {
    fn from_value(value: &Value) -> Result<Arc<str>, Error> {
        String::from_value(value).map(Arc::from)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Option<T>, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Vec<T>, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<[T; N], Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, found {len}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<BTreeMap<String, V>, Error> {
        match value {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v).map_err(|e| e.in_field(k))?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::expected(
                        concat!("array of ", stringify!($len), " elements"),
                        other,
                    )),
                }
            }
        }
    };
}

impl_tuple!(A:0; 1);
impl_tuple!(A:0, B:1; 2);
impl_tuple!(A:0, B:1, C:2; 3);
impl_tuple!(A:0, B:1, C:2, D:3; 4);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn numbers_cross_convert() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(i64::from_value(&Value::Float(4.0)).unwrap(), 4);
        assert!(i64::from_value(&Value::Float(4.5)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i64>::from_value(&Value::Int(2)).unwrap(), Some(2));
        assert_eq!(None::<i64>.to_value(), Value::Null);
    }

    #[test]
    fn compounds_round_trip() {
        let v = vec![(vec![1i64, 2], 0.5f64)];
        let round = Vec::<(Vec<i64>, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);

        let arr: [i64; 3] = [1, 2, 3];
        assert_eq!(<[i64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        assert!(<[i64; 2]>::from_value(&arr.to_value()).is_err());

        let mut map = BTreeMap::new();
        map.insert("k".to_string(), 9u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_value(&map.to_value()).unwrap(),
            map
        );
    }
}
