//! `softsoa` — Soft Constraints for Dependable Service-Oriented
//! Architectures.
//!
//! A Rust implementation of *Stefano Bistarelli and Francesco Santini,
//! "Soft Constraints for Dependable Service Oriented Architectures"*
//! (DSN 2008 Workshops). This façade crate re-exports the whole
//! workspace under one name:
//!
//! - [`semiring`] — absorptive, residuated c-semirings (weighted,
//!   fuzzy, probabilistic, set-based, classical, Cartesian products);
//! - [`core`] — soft constraints, the operators `⊗ ÷ ⇓ ∃x ⊑`,
//!   SCSPs and three solvers;
//! - [`nmsccp`] — the nonmonotonic soft concurrent constraint
//!   language with checked transitions, sequential/concurrent/timed
//!   executors and a textual syntax;
//! - [`soa`] — services, registry, the QoS broker and SLA
//!   negotiation/composition/monitoring;
//! - [`dependability`] — the attribute taxonomy and integrity as
//!   refinement, with the photo-editing case study;
//! - [`coalition`] — trust networks and trustworthy coalition
//!   formation.
//!
//! # Quick start
//!
//! Solve the paper's Fig. 1 weighted SCSP:
//!
//! ```
//! use softsoa::core::{Scsp, Constraint, Domain, Val, Var};
//! use softsoa::semiring::WeightedInt;
//!
//! let p = Scsp::new(WeightedInt)
//!     .with_domain("x", Domain::syms(["a", "b"]))
//!     .with_domain("y", Domain::syms(["a", "b"]))
//!     .with_constraint(Constraint::table(
//!         WeightedInt, &[Var::new("x")],
//!         [(vec![Val::sym("a")], 1), (vec![Val::sym("b")], 9)], u64::MAX))
//!     .with_constraint(Constraint::table(
//!         WeightedInt, &[Var::new("x"), Var::new("y")],
//!         [
//!             (vec![Val::sym("a"), Val::sym("a")], 5),
//!             (vec![Val::sym("a"), Val::sym("b")], 1),
//!             (vec![Val::sym("b"), Val::sym("a")], 2),
//!             (vec![Val::sym("b"), Val::sym("b")], 2),
//!         ], u64::MAX))
//!     .with_constraint(Constraint::table(
//!         WeightedInt, &[Var::new("y")],
//!         [(vec![Val::sym("a")], 5), (vec![Val::sym("b")], 5)], u64::MAX))
//!     .of_interest(["x"]);
//!
//! assert_eq!(p.blevel()?, 7);
//! # Ok::<(), softsoa::core::SolveError>(())
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios: SLA
//! negotiation through the broker, photo-pipeline integrity analysis
//! and trustworthy coalition formation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use softsoa_coalition as coalition;
pub use softsoa_core as core;
pub use softsoa_dependability as dependability;
pub use softsoa_nmsccp as nmsccp;
pub use softsoa_semiring as semiring;
pub use softsoa_soa as soa;
pub use softsoa_telemetry as telemetry;
