//! Property tests for the daemon's line-JSON framing layer.
//!
//! The framing contract, stated as properties over arbitrary payloads
//! and arbitrary chunk boundaries:
//!
//! - **Round trip** — however the byte stream is split across reads
//!   (one byte at a time, several frames per chunk, cuts inside
//!   multi-byte characters), decoding returns exactly the encoded
//!   payload sequence, then a clean `Closed`.
//! - **Truncation** — a stream that ends mid-frame yields every
//!   complete frame first, then a typed `Truncated` carrying the
//!   number of stranded bytes — never a silent partial payload.
//! - **Oversize** — a frame exceeding the limit is rejected with a
//!   typed `Oversized` no matter how it is chunked, *including* when
//!   its terminator is already buffered; the reader stays poisoned
//!   afterwards.

use std::io::{self, Read};

use proptest::collection::vec;
use proptest::prelude::*;
use softsoa_soa::server::transport::{
    encode_frame, FrameError, FrameReader, DEFAULT_MAX_FRAME_BYTES,
};

/// Yields a byte stream split at caller-chosen positions, one segment
/// per `read` call — the adversarial scheduler for the reader.
struct ChunkedReader {
    data: Vec<u8>,
    cuts: Vec<usize>,
    pos: usize,
    next_cut: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, mut cuts: Vec<usize>) -> ChunkedReader {
        cuts.sort_unstable();
        ChunkedReader {
            data,
            cuts,
            pos: 0,
            next_cut: 0,
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let end = loop {
            match self.cuts.get(self.next_cut) {
                Some(&cut) if cut <= self.pos => self.next_cut += 1,
                Some(&cut) => break cut.min(self.data.len()),
                None => break self.data.len(),
            }
        };
        let n = (end - self.pos)
            .min(buf.len())
            .max(1)
            .min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #[test]
    fn frames_round_trip_across_arbitrary_chunk_boundaries(
        payloads in vec(".*", 1..8usize),
        cuts in vec(0usize..600, 0..48usize),
    ) {
        let mut bytes = Vec::new();
        for payload in &payloads {
            bytes.extend_from_slice(&encode_frame(payload));
        }
        let mut reader =
            FrameReader::new(ChunkedReader::new(bytes, cuts), DEFAULT_MAX_FRAME_BYTES);
        for payload in &payloads {
            prop_assert_eq!(&reader.read_frame().unwrap(), payload);
        }
        prop_assert!(matches!(reader.read_frame(), Err(FrameError::Closed)));
    }

    #[test]
    fn truncated_streams_yield_complete_frames_then_a_typed_rejection(
        payloads in vec(".*", 0..5usize),
        tail_len in 1usize..40,
        cuts in vec(0usize..600, 0..24usize),
    ) {
        let mut bytes = Vec::new();
        for payload in &payloads {
            bytes.extend_from_slice(&encode_frame(payload));
        }
        // A final frame whose terminator never arrives.
        let tail: String = "x".repeat(tail_len);
        bytes.extend_from_slice(tail.as_bytes());
        let mut reader =
            FrameReader::new(ChunkedReader::new(bytes, cuts), DEFAULT_MAX_FRAME_BYTES);
        for payload in &payloads {
            prop_assert_eq!(&reader.read_frame().unwrap(), payload);
        }
        match reader.read_frame() {
            Err(FrameError::Truncated { buffered }) => prop_assert_eq!(buffered, tail_len),
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    #[test]
    fn oversized_frames_are_rejected_however_chunked(
        limit in 8usize..64,
        excess in 1usize..64,
        terminated in any::<bool>(),
        cuts in vec(0usize..200, 0..16usize),
    ) {
        let mut bytes = vec![b'y'; limit + excess];
        if terminated {
            bytes.push(b'\n');
            bytes.extend_from_slice(&encode_frame("after"));
        }
        let mut reader = FrameReader::new(ChunkedReader::new(bytes, cuts), limit);
        match reader.read_frame() {
            Err(FrameError::Oversized { limit: reported }) => {
                prop_assert_eq!(reported, limit);
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
        // Poisoned: the frame after the oversized one is unreachable.
        prop_assert!(matches!(
            reader.read_frame(),
            Err(FrameError::Oversized { .. })
        ));
    }
}
