//! End-to-end fairness smoke test: the contended load generator
//! drives a fairness-enabled daemon through the full stack — TCP
//! transport, batching window, contended allocator, cross-batch
//! ledger — and the typed reports separate the objectives.
//!
//! The fixed-seed scenario is 6 stable clients racing for 2
//! single-slot providers across 3 waves (6 grants total): exact
//! leximin rotates the scarce slots so every client is bound at least
//! once, while the FCFS baseline keeps re-granting the earliest
//! arrivals and starves the tail. This is the assertion the CI
//! `fairness-smoke` job runs.

use std::time::Duration;

use softsoa_semiring::Fuzzy;
use softsoa_soa::server::loadgen::{run_contended_self_hosted, ContentionConfig};
use softsoa_soa::Fairness;

fn scenario(fairness: Fairness) -> ContentionConfig {
    ContentionConfig {
        waves: 3,
        clients_per_wave: 6,
        providers: 2,
        slots_per_provider: 1,
        fairness,
        transport_fault_rate: 0.0,
        seed: 7,
    }
}

#[test]
fn leximin_serves_every_client_where_fcfs_starves() {
    let (leximin, drain) =
        run_contended_self_hosted(Fuzzy, &scenario(Fairness::Leximin), Duration::from_secs(2))
            .expect("leximin daemon");
    assert_eq!(leximin.hung, 0, "{leximin:?}");
    assert_eq!(leximin.starved_clients, 0, "{leximin:?}");
    assert!(leximin.bound_total >= 1, "{leximin:?}");
    assert!(drain.within_deadline, "{drain:?}");

    let (fcfs, _) =
        run_contended_self_hosted(Fuzzy, &scenario(Fairness::Fcfs), Duration::from_secs(2))
            .expect("fcfs daemon");
    assert_eq!(fcfs.hung, 0, "{fcfs:?}");
    assert!(fcfs.starved_clients >= 1, "{fcfs:?}");
    assert!(
        leximin.jain_bound >= fcfs.jain_bound,
        "leximin jain {} < fcfs jain {}",
        leximin.jain_bound,
        fcfs.jain_bound
    );
}

#[test]
fn nash_also_zeroes_starvation_end_to_end() {
    let (nash, _) =
        run_contended_self_hosted(Fuzzy, &scenario(Fairness::Nash), Duration::from_secs(2))
            .expect("nash daemon");
    assert_eq!(nash.hung, 0, "{nash:?}");
    assert_eq!(nash.starved_clients, 0, "{nash:?}");
}

#[test]
fn abandoning_clients_never_wedge_a_batch() {
    // A quarter of each wave sends its request and vanishes; the
    // leader publishes to dead peers and the batcher must drop the
    // orphaned replies instead of wedging the window. Every surviving
    // session still terminates with a typed outcome.
    let config = ContentionConfig {
        transport_fault_rate: 0.25,
        ..scenario(Fairness::Leximin)
    };
    let (report, drain) =
        run_contended_self_hosted(Fuzzy, &config, Duration::from_secs(2)).expect("chaotic daemon");
    assert_eq!(report.hung, 0, "{report:?}");
    assert!(report.outcomes.contains_key("abandoned"), "{report:?}");
    assert!(drain.within_deadline, "{drain:?}");
}
