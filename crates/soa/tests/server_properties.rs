//! End-to-end tests for the negotiation daemon's fault envelope.
//!
//! Every test here exercises a *robustness invariant* over real TCP
//! sockets on the loopback interface:
//!
//! - well-behaved clients get `bound` agreements and epoch-bumping
//!   registry mutations;
//! - overload is shed with a fast typed reply, never queued into
//!   starvation;
//! - stalled and truncating clients get typed timeouts/errors at the
//!   deadline, never a hang;
//! - shutdown drains gracefully within its deadline and reports what
//!   it served, aborted and shed;
//! - and the headline acceptance check: a fixed-seed chaos load
//!   (hundreds of concurrent sessions, >10% hostile transports, store
//!   faults injected into every negotiation) terminates every single
//!   session with a typed outcome — zero hung clients — and leaves the
//!   broker's caches bounded.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use softsoa_dependability::Attribute;
use softsoa_semiring::Fuzzy;
use softsoa_soa::server::loadgen::{self, LoadConfig};
use softsoa_soa::server::protocol::{NegotiateRequest, PublishRequest, Reply, Request, ShedReason};
use softsoa_soa::server::transport::TransportChaos;
use softsoa_soa::{
    NegotiationServer, OfferShape, QosOffer, ServerConfig, ServerHandle, StoreChaos,
};
use softsoa_telemetry::Telemetry;

fn start(config: ServerConfig) -> ServerHandle<Fuzzy> {
    NegotiationServer::start(
        Fuzzy,
        loadgen::seed_providers(6),
        config,
        Telemetry::disabled(),
    )
    .expect("server starts")
}

/// Sends one request frame and reads one reply frame.
fn roundtrip(stream: &TcpStream, request: &Request) -> Reply {
    let mut s = stream;
    s.write_all(format!("{}\n", request.to_json()).as_bytes())
        .expect("request written");
    read_reply(stream).expect("a reply frame")
}

fn read_reply(stream: &TcpStream) -> Option<Reply> {
    let mut s = stream;
    let mut buffer = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte) {
            Ok(0) => return None,
            Ok(_) if byte[0] == b'\n' => {
                let text = String::from_utf8(buffer).expect("utf-8 reply");
                return Some(Reply::parse(&text).expect("well-formed reply"));
            }
            Ok(_) => buffer.push(byte[0]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn negotiate() -> Request {
    Request::Negotiate(NegotiateRequest {
        capability: "compute".into(),
        variable: "x".into(),
        domain: [0, 8],
        policy: OfferShape::Linear {
            slope: -0.01,
            intercept: 0.9,
        },
        accept: [0.2, 1.0],
        client: None,
    })
}

#[test]
fn negotiation_binds_end_to_end() {
    let handle = start(ServerConfig::default());
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    match roundtrip(&stream, &Request::Ping) {
        Reply::Pong { .. } => {}
        other => panic!("expected pong, got {other:?}"),
    }
    match roundtrip(&stream, &negotiate()) {
        Reply::Bound { level, binding, .. } => {
            assert!(level > 0.2, "agreed level {level} inside acceptance");
            assert!(binding.is_some(), "a binding witness rides along");
        }
        other => panic!("expected bound, got {other:?}"),
    }
    drop(stream);
    let report = handle.shutdown(Duration::from_secs(2));
    assert!(report.within_deadline, "clean drain: {report:?}");
}

#[test]
fn publish_and_deregister_bump_the_epoch() {
    let handle = start(ServerConfig::default());
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let before = match roundtrip(&stream, &Request::Ping) {
        Reply::Pong { epoch } => epoch,
        other => panic!("expected pong, got {other:?}"),
    };
    let publish = Request::Publish(PublishRequest {
        service: "svc-new".into(),
        provider: "acme".into(),
        capability: "compute".into(),
        offer: QosOffer {
            attribute: Attribute::Reliability,
            variable: "x".into(),
            shape: OfferShape::Linear {
                slope: 0.02,
                intercept: 0.5,
            },
        },
        capacity: None,
    });
    let published = match roundtrip(&stream, &publish) {
        Reply::Published { epoch } => epoch,
        other => panic!("expected published, got {other:?}"),
    };
    assert!(published > before, "publish bumps the epoch");
    match roundtrip(
        &stream,
        &Request::Deregister {
            service: "svc-new".into(),
        },
    ) {
        Reply::Deregistered { epoch, existed } => {
            assert!(existed, "the service we just published exists");
            assert!(epoch > published, "deregister bumps the epoch");
        }
        other => panic!("expected deregistered, got {other:?}"),
    }
    drop(stream);
    handle.shutdown(Duration::from_secs(2));
}

#[test]
fn overload_is_shed_with_a_fast_typed_reply() {
    let config = ServerConfig {
        workers: 1,
        queue_limit: 1,
        session_deadline: Duration::from_millis(900),
        ..ServerConfig::default()
    };
    let handle = start(config);
    let addr = handle.local_addr();

    // Occupy the only worker with a stalled session, and fill the
    // queue slot with a second one.
    let hold = |_: usize| {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut s = &stream;
        s.write_all(b"{\"op\":").expect("half a frame");
        stream
    };
    let in_flight = hold(0);
    // Let the only worker take it off the queue before filling the
    // queue slot, so admission state is deterministic.
    std::thread::sleep(Duration::from_millis(250));
    let queued = hold(1);
    std::thread::sleep(Duration::from_millis(150));

    // Everything beyond worker + queue must be refused, fast.
    let mut sheds = 0;
    for _ in 0..4 {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        if let Some(Reply::Shed {
            reason: ShedReason::Overloaded,
        }) = read_reply(&stream)
        {
            sheds += 1;
        }
    }
    assert!(sheds >= 3, "expected fast overload sheds, got {sheds}");

    // The stalled sessions still terminate with typed timeouts.
    for stream in [in_flight, queued] {
        match read_reply(&stream) {
            Some(Reply::TimedOut { .. }) | None => {}
            other => panic!("expected a typed timeout or close, got {other:?}"),
        }
    }
    let report = handle.shutdown(Duration::from_secs(2));
    assert!(report.within_deadline, "clean drain: {report:?}");
}

#[test]
fn stalled_client_times_out_with_a_typed_reply() {
    let config = ServerConfig {
        session_deadline: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let handle = start(config);
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut s = &stream;
    s.write_all(b"{\"op\":\"negot").expect("half a frame");
    // Say nothing more: the deadline must answer for us.
    match read_reply(&stream) {
        Some(Reply::TimedOut { .. }) => {}
        other => panic!("expected timed-out, got {other:?}"),
    }
    handle.shutdown(Duration::from_secs(1));
}

#[test]
fn truncated_frame_gets_a_typed_error() {
    let handle = start(ServerConfig::default());
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut s = &stream;
    s.write_all(b"{\"op\":\"ping\"}")
        .expect("unterminated frame");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("write side closed");
    match read_reply(&stream) {
        Some(Reply::Error { code, .. }) => {
            assert_eq!(format!("{code:?}"), "TruncatedFrame");
        }
        other => panic!("expected truncated-frame error, got {other:?}"),
    }
    handle.shutdown(Duration::from_secs(1));
}

#[test]
fn drain_aborts_overrunning_sessions_with_typed_replies() {
    let config = ServerConfig {
        session_deadline: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let handle = start(config);
    let addr = handle.local_addr();

    // A session that would outlive any reasonable drain.
    let straggler = TcpStream::connect(addr).expect("connect");
    straggler
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    {
        let mut s = &straggler;
        s.write_all(b"{\"op\":").expect("half a frame");
    }
    std::thread::sleep(Duration::from_millis(150));

    let report = handle.shutdown(Duration::from_millis(300));
    assert!(report.aborted >= 1, "the straggler was aborted: {report:?}");
    assert!(report.within_deadline, "drain met its deadline: {report:?}");
    // The aborted client still received a typed reply.
    match read_reply(&straggler) {
        Some(Reply::TimedOut { .. }) => {}
        other => panic!("expected a typed abort reply, got {other:?}"),
    }
}

/// The PR's acceptance test: a fixed-seed chaos load — hundreds of
/// concurrent sessions, >10% hostile transports, store-level faults in
/// every negotiation, server-side wire chaos, registry churn — where
/// **every session terminates with a typed outcome and nobody hangs**,
/// followed by a clean drain, with the broker's caches still bounded.
#[test]
fn chaos_load_terminates_every_session_with_a_typed_outcome() {
    let server = ServerConfig {
        workers: 8,
        queue_limit: 96,
        session_deadline: Duration::from_millis(800),
        store_chaos: Some(StoreChaos {
            seed: 41,
            fault_rate: 0.3,
        }),
        transport_chaos: Some(TransportChaos {
            seed: 17,
            fault_rate: 0.05,
            stall: Duration::from_millis(2),
            ..TransportChaos::default()
        }),
        ..ServerConfig::default()
    };
    let load = LoadConfig {
        clients: 240,
        concurrency: 24,
        transport_fault_rate: 0.15,
        churn_rate: 0.2,
        seed: 1008,
    };
    let report = loadgen::run_self_hosted(
        Fuzzy,
        loadgen::seed_providers(8),
        server,
        &load,
        Duration::from_secs(3),
    )
    .expect("self-hosted run");

    assert_eq!(report.load.sessions, 240, "every client ran");
    assert_eq!(
        report.load.hung, 0,
        "no session may hang: {:?}",
        report.load.outcomes
    );
    // Every tallied outcome is a known typed label.
    for label in report.load.outcomes.keys() {
        assert!(
            matches!(
                label.as_str(),
                "bound"
                    | "degraded"
                    | "shed"
                    | "timed-out"
                    | "error"
                    | "pong"
                    | "published"
                    | "deregistered"
                    | "closed"
                    | "abandoned"
                    | "connect-failed"
            ),
            "unexpected outcome label `{label}`: {:?}",
            report.load.outcomes
        );
    }
    let bound = report.load.outcomes.get("bound").copied().unwrap_or(0)
        + report.load.outcomes.get("degraded").copied().unwrap_or(0);
    assert!(
        bound >= 100,
        "most well-behaved sessions should bind: {:?}",
        report.load.outcomes
    );
    assert!(
        report.drain.within_deadline,
        "graceful drain met its deadline: {:?}",
        report.drain
    );
    // Flat memory under churn: the bounded tables stayed bounded.
    assert!(
        report.load.cache_entries <= report.load.cache_capacity,
        "cache bounded: {} <= {}",
        report.load.cache_entries,
        report.load.cache_capacity
    );
    assert!(
        report.load.final_epoch > 0,
        "churn clients actually churned the registry"
    );
}

#[test]
fn incremental_binding_state_is_reused_across_sessions() {
    // Two *separate* TCP sessions negotiate the same shape. The
    // persistent binding solvers live on the broker (shared across
    // worker clones), so the second session's solve must reuse the
    // state the first one built: its search warm-starts from the
    // previous optimum instead of starting cold.
    let (telemetry, sink) = Telemetry::recording();
    let handle: ServerHandle<Fuzzy> = NegotiationServer::start(
        Fuzzy,
        loadgen::seed_providers(6),
        ServerConfig {
            incremental: true,
            ..ServerConfig::default()
        },
        telemetry,
    )
    .expect("server starts");

    let mut levels = Vec::new();
    for session in 0..2 {
        let stream = TcpStream::connect(handle.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        match roundtrip(&stream, &negotiate()) {
            Reply::Bound { level, .. } => levels.push(level),
            other => panic!("session {session}: expected bound, got {other:?}"),
        }
        drop(stream);
    }
    assert_eq!(levels[0], levels[1], "identical agreements across sessions");

    let report = handle.shutdown(Duration::from_secs(2));
    assert!(report.within_deadline, "clean drain: {report:?}");

    let counters = sink.snapshot().counters;
    assert_eq!(
        counters.get("server.incremental.negotiations").copied(),
        Some(2),
        "both sessions adopted the incremental binding path: {counters:?}"
    );
    assert!(
        counters.get("server/solver.incremental.solves").copied() >= Some(2),
        "both bindings went through the persistent engine: {counters:?}"
    );
    assert!(
        counters
            .get("server/solver.incremental.warm_seeds")
            .copied()
            >= Some(1),
        "the second session warm-started from the first's state: {counters:?}"
    );
}
