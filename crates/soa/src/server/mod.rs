//! The negotiation broker daemon: a std-only TCP server exposing
//! discovery → negotiation → binding over a line-JSON protocol, built
//! around an explicit fault envelope.
//!
//! The runtime is deliberately boring — `std::net` sockets, a bounded
//! accept-queue, a fixed worker pool — so every robustness property is
//! a *local, testable invariant* rather than an emergent one:
//!
//! * **Deadlines.** Every session carries a wall-clock deadline from
//!   the moment it is accepted; every socket read and write carries a
//!   timeout; every negotiation runs on the step-bounded virtual clock
//!   of the resilience machinery. No blocking operation is unbounded,
//!   so no session can hang.
//! * **Backpressure.** The accept-queue ([`admission`]) is the only
//!   buffer and it is bounded; when it fills, new connections get a
//!   fast typed `shed` reply instead of silently queueing.
//! * **Graceful drain.** Shutdown ([`shutdown`]) stops admitting,
//!   serves what is queued and in flight while the drain deadline
//!   allows, then aborts the rest with typed replies — and reports
//!   exactly what happened as a [`DrainReport`].
//! * **Transport chaos.** The deterministic per-connection fault plans
//!   of [`transport`] (drops, stalls, truncation, slow-loris) exercise
//!   the envelope from the wire side with a fixed seed.

pub(crate) mod admission;
mod batch;
pub mod loadgen;
pub mod protocol;
mod session;
mod shutdown;
pub mod transport;

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use softsoa_telemetry::Telemetry;

use crate::broker::{Broker, BrokerConfig};
use crate::contention::Fairness;
use crate::registry::Registry;
use crate::server::admission::{AdmissionQueue, Pending};
use crate::server::batch::Batcher;
use crate::server::protocol::{Reply, ShedReason, WireSemiring};
use crate::server::session::{run_session, SessionContext, SessionEnd};
use crate::server::shutdown::Control;
use crate::server::transport::{FrameWriter, TransportChaos, DEFAULT_MAX_FRAME_BYTES};

pub use shutdown::DrainReport;

/// How often blocked acceptor/worker loops re-check shutdown state.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
const TAKE_TICK: Duration = Duration::from_millis(25);

/// Store-level chaos knobs for the daemon: every negotiation runs
/// through the resilient interpreter with this fault plan seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreChaos {
    /// Seed for the per-provider fault plans.
    pub seed: u64,
    /// Probability a fault fires at each eligible step.
    pub fault_rate: f64,
}

/// Daemon configuration. [`ServerConfig::default`] is tuned for the
/// load generator and the test suite: short ticks, a two-second
/// session budget, chaos off.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving sessions.
    pub workers: usize,
    /// Accept-queue bound; beyond it connections are shed.
    pub queue_limit: usize,
    /// Wall-clock budget per session, measured from accept.
    pub session_deadline: Duration,
    /// Socket read timeout — the session loop's tick: deadline and
    /// drain state are re-checked at least this often.
    pub read_timeout: Duration,
    /// Socket write timeout (bounds a peer that stops reading).
    pub write_timeout: Duration,
    /// Hard bound on a single request frame.
    pub max_frame_bytes: usize,
    /// Step budget for one negotiation on the resilient interpreter's
    /// virtual clock (only consulted when `store_chaos` is on).
    pub negotiation_deadline_steps: usize,
    /// Store-level chaos (fault injection inside negotiations).
    pub store_chaos: Option<StoreChaos>,
    /// Transport-level chaos applied server-side to admitted
    /// connections (deterministic per connection id).
    pub transport_chaos: Option<TransportChaos>,
    /// Capacities for the broker's bounded tables.
    pub broker: BrokerConfig,
    /// Whether binding solves go through persistent incremental
    /// solvers (recommended under registry churn).
    pub incremental: bool,
    /// Contended-allocation objective. `None` keeps the historical
    /// per-session FCFS path; `Some` routes every negotiate request
    /// through the batching window so clients arriving together
    /// compete for capacity under the objective
    /// ([`crate::Broker::negotiate_contended`]).
    pub fairness: Option<Fairness>,
    /// How long the batching window stays open after its first entry
    /// (only consulted when `fairness` is set).
    pub batch_window: Duration,
    /// Entries that close the batching window early.
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_limit: 64,
            session_deadline: Duration::from_secs(2),
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(1),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            negotiation_deadline_steps: 64,
            store_chaos: None,
            transport_chaos: None,
            broker: BrokerConfig::default(),
            incremental: true,
            fairness: None,
            batch_window: Duration::from_millis(25),
            max_batch: 8,
        }
    }
}

/// Per-worker accounting, folded into the [`DrainReport`].
#[derive(Debug, Default, Clone, Copy)]
struct WorkerStats {
    drained: usize,
    aborted: usize,
}

/// The negotiation broker daemon.
#[derive(Debug)]
pub struct NegotiationServer;

impl NegotiationServer {
    /// Binds, spawns the acceptor and worker pool, and returns a
    /// handle. The daemon serves until [`ServerHandle::shutdown`].
    pub fn start<S: WireSemiring>(
        semiring: S,
        registry: Registry,
        config: ServerConfig,
        telemetry: Telemetry,
    ) -> std::io::Result<ServerHandle<S>> {
        let listener = bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let broker = Broker::new(semiring, registry)
            .with_broker_config(config.broker)
            .with_incremental(config.incremental)
            .with_telemetry(telemetry.scoped("server"));
        let control = Arc::new(Control::new());
        let queue = Arc::new(AdmissionQueue::new(config.queue_limit));
        let shed_draining = Arc::new(AtomicUsize::new(0));
        let ctx = Arc::new(SessionContext {
            batcher: Arc::new(Batcher::new(config.batch_window, config.max_batch)),
            config: config.clone(),
            control: Arc::clone(&control),
            telemetry: telemetry.clone(),
        });

        let mut workers = Vec::with_capacity(config.workers.max(1));
        for index in 0..config.workers.max(1) {
            let mut worker_broker = broker.clone();
            let worker_ctx = Arc::clone(&ctx);
            let worker_queue = Arc::clone(&queue);
            let worker_control = Arc::clone(&control);
            workers.push(
                thread::Builder::new()
                    .name(format!("soa-worker-{index}"))
                    .spawn(move || {
                        worker_loop(
                            &mut worker_broker,
                            &worker_ctx,
                            &worker_queue,
                            &worker_control,
                        )
                    })?,
            );
        }

        let acceptor = {
            let acceptor_control = Arc::clone(&control);
            let acceptor_queue = Arc::clone(&queue);
            let acceptor_shed = Arc::clone(&shed_draining);
            let acceptor_telemetry = telemetry.clone();
            thread::Builder::new()
                .name("soa-acceptor".to_string())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        &acceptor_control,
                        &acceptor_queue,
                        &acceptor_shed,
                        &acceptor_telemetry,
                    )
                })?
        };

        Ok(ServerHandle {
            addr,
            config,
            control,
            queue,
            workers,
            acceptor,
            shed_draining,
            telemetry,
            broker,
        })
    }
}

fn bind(addr: &str) -> std::io::Result<TcpListener> {
    let mut last = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpListener::bind(candidate) {
            Ok(listener) => return Ok(listener),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    }))
}

fn accept_loop(
    listener: &TcpListener,
    control: &Control,
    queue: &AdmissionQueue,
    shed_draining: &AtomicUsize,
    telemetry: &Telemetry,
) {
    let mut conn_id = 0u64;
    loop {
        if control.is_stopped() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                conn_id += 1;
                telemetry.incr("server.sessions.accepted");
                if control.is_draining() {
                    shed_draining.fetch_add(1, Ordering::Relaxed);
                    shed(stream, ShedReason::Draining, telemetry);
                    continue;
                }
                let pending = Pending {
                    stream,
                    conn_id,
                    accepted_at: Instant::now(),
                };
                match queue.offer(pending) {
                    Ok(depth) => telemetry.gauge("server.queue.depth", depth as i64),
                    Err(refused) => {
                        shed(refused.stream, ShedReason::Overloaded, telemetry);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            // Transient accept errors (per-connection resets): back off
            // one tick rather than spinning or dying.
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Refuses a connection with a fast typed `shed` reply — never a hang,
/// never a silent close while the peer still expects an answer.
fn shed<W: SetWriteTimeout>(stream: W, reason: ShedReason, telemetry: &Telemetry) {
    // Best effort: a peer that vanished before the reply is its own
    // problem; the acceptor must not block on it.
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    telemetry.count_labeled(
        "server.sessions.shed",
        match reason {
            ShedReason::Overloaded => "overloaded",
            ShedReason::Draining => "draining",
        },
        1,
    );
    let mut writer = FrameWriter::new(stream);
    let _ = writer.write_frame(&Reply::Shed { reason }.to_json());
}

/// The one socket capability `shed` needs, factored out so tests can
/// shed into plain buffers.
trait SetWriteTimeout: Write {
    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl SetWriteTimeout for TcpStream {
    fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
}

fn worker_loop<S: WireSemiring>(
    broker: &mut Broker<S>,
    ctx: &SessionContext,
    queue: &AdmissionQueue,
    control: &Control,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    loop {
        if control.should_abort() {
            break;
        }
        match queue.take(TAKE_TICK) {
            Some(pending) => {
                let outcome = run_session(broker, ctx, pending);
                if control.is_draining() {
                    match outcome.end {
                        SessionEnd::Aborted => stats.aborted += 1,
                        SessionEnd::Completed => stats.drained += 1,
                        _ => {}
                    }
                }
            }
            None => {
                // Queue empty (or closed): during a drain that means
                // this worker's job is done.
                if control.is_draining() && queue.depth() == 0 {
                    break;
                }
            }
        }
    }
    stats
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads serving (they are
/// detached with the process); tests and the CLI always drain.
#[derive(Debug)]
pub struct ServerHandle<S: WireSemiring> {
    addr: SocketAddr,
    config: ServerConfig,
    control: Arc<Control>,
    queue: Arc<AdmissionQueue>,
    workers: Vec<JoinHandle<WorkerStats>>,
    acceptor: JoinHandle<()>,
    shed_draining: Arc<AtomicUsize>,
    telemetry: Telemetry,
    broker: Broker<S>,
}

impl<S: WireSemiring> ServerHandle<S> {
    /// The bound address (resolves `:0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A broker clone sharing the daemon's registry and caches — for
    /// seeding providers, asserting cache bounds, reading epochs.
    pub fn broker(&self) -> &Broker<S> {
        &self.broker
    }

    /// The configuration the daemon runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Current accept-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Gracefully drains and stops the daemon.
    ///
    /// New connections are shed immediately with a `draining` reply;
    /// queued and in-flight sessions are served while `drain` allows;
    /// past the deadline, in-flight sessions abort at their next
    /// checkpoint with a typed `timed-out` reply and anything still
    /// queued is shed. Blocks until every thread has joined — which is
    /// bounded, because every blocking operation in the server is.
    pub fn shutdown(self, drain: Duration) -> DrainReport {
        let begun = Instant::now();
        self.control.begin_drain(begun + drain);
        // Close the queue: offers are refused (the acceptor sheds
        // anyway) and idle workers wake instead of sleeping out their
        // tick. Already-queued sessions remain takeable.
        self.queue.close();

        let mut drained = 0;
        let mut aborted = 0;
        for worker in self.workers {
            let stats = worker.join().unwrap_or_default();
            drained += stats.drained;
            aborted += stats.aborted;
        }
        self.control.stop();

        // Anything still queued was sacrificed to the deadline.
        let leftovers = self.queue.drain_remaining();
        let mut shed_total = leftovers.len();
        for pending in leftovers {
            shed(pending.stream, ShedReason::Draining, &self.telemetry);
        }
        let _ = self.acceptor.join();
        shed_total += self.shed_draining.load(Ordering::Relaxed);

        let elapsed = begun.elapsed();
        // Aborts are observed at the next loop checkpoint: one read
        // tick to notice, one bounded write to reply, plus scheduling
        // slack. Anything beyond that is a genuine drain overrun.
        let grace = self.config.read_timeout
            + self.config.write_timeout
            + TAKE_TICK
            + ACCEPT_POLL
            + Duration::from_millis(200);
        DrainReport {
            drained,
            shed: shed_total,
            aborted,
            elapsed,
            within_deadline: elapsed <= drain + grace,
        }
    }
}
