//! Graceful-shutdown control plane.
//!
//! Shutdown is a three-phase state machine shared by the acceptor,
//! every worker and every in-flight session:
//!
//! 1. **Running** — accept, queue, serve.
//! 2. **Draining** — the acceptor sheds new connections with a fast
//!    `draining` reply; workers finish the queue and their in-flight
//!    sessions while the drain deadline allows.
//! 3. **Stopped** — past the deadline (or once drained): sessions
//!    abort at their next checkpoint with a typed `timed-out` reply,
//!    still-queued connections are shed, threads exit.
//!
//! Every blocking operation in the server is bounded (socket timeouts,
//! condvar waits, step-bounded negotiations), so the transition from
//! *Draining* to *Stopped* is observed promptly — a drain never hangs
//! on a stuck peer.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Shared shutdown state.
#[derive(Debug)]
pub(crate) struct Control {
    phase: AtomicU8,
    drain_deadline: Mutex<Option<Instant>>,
}

impl Control {
    /// A control plane in the *Running* phase.
    pub fn new() -> Control {
        Control {
            phase: AtomicU8::new(RUNNING),
            drain_deadline: Mutex::new(None),
        }
    }

    /// Enters the *Draining* phase with the given deadline.
    pub fn begin_drain(&self, deadline: Instant) {
        *self
            .drain_deadline
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(deadline);
        // Never regress from Stopped.
        let _ = self
            .phase
            .compare_exchange(RUNNING, DRAINING, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Enters the *Stopped* phase.
    pub fn stop(&self) {
        self.phase.store(STOPPED, Ordering::SeqCst);
    }

    /// Whether the server is past *Running*.
    pub fn is_draining(&self) -> bool {
        self.phase.load(Ordering::SeqCst) != RUNNING
    }

    /// Whether the server is fully stopped.
    pub fn is_stopped(&self) -> bool {
        self.phase.load(Ordering::SeqCst) == STOPPED
    }

    /// Whether in-flight work must abort now: the server is stopped,
    /// or draining past its deadline.
    pub fn should_abort(&self) -> bool {
        match self.phase.load(Ordering::SeqCst) {
            STOPPED => true,
            DRAINING => self
                .drain_deadline
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_some_and(|d| Instant::now() >= d),
            _ => false,
        }
    }
}

/// What the drain accomplished, reported by
/// [`crate::server::ServerHandle::shutdown`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Sessions that completed normally during the drain (queued or
    /// in-flight when it began).
    pub drained: usize,
    /// Connections shed with a `draining` reply (arrived during the
    /// drain, or still queued when the deadline passed).
    pub shed: usize,
    /// In-flight sessions aborted at the drain deadline with a typed
    /// `timed-out` reply.
    pub aborted: usize,
    /// Wall-clock duration of the drain (begin to last thread joined).
    pub elapsed: Duration,
    /// Whether every thread was joined within the drain deadline plus
    /// the bounded-abort grace (one read-timeout slice).
    pub within_deadline: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_phases_progress_monotonically() {
        let control = Control::new();
        assert!(!control.is_draining());
        assert!(!control.should_abort());
        control.begin_drain(Instant::now() + Duration::from_secs(60));
        assert!(control.is_draining());
        assert!(!control.should_abort());
        control.stop();
        assert!(control.should_abort());
        // begin_drain after stop must not regress the phase.
        control.begin_drain(Instant::now() + Duration::from_secs(60));
        assert!(control.is_stopped());
    }

    #[test]
    fn expired_drain_deadline_aborts() {
        let control = Control::new();
        control.begin_drain(Instant::now() - Duration::from_millis(1));
        assert!(control.is_draining());
        assert!(control.should_abort());
    }
}
