//! Admission control: the explicit accept-queue between the acceptor
//! and the worker pool.
//!
//! The queue is the server's only elastic buffer, and it is *bounded*:
//! when it is full the acceptor sheds the connection with a fast
//! `overloaded` reply instead of queueing it into starvation. Fairness
//! follows from FIFO order — admitted sessions are served in arrival
//! order, so under overload every admitted client makes progress and
//! the excess is refused predictably (the graceful-degradation stance
//! of the fairness work cited in PAPERS.md, applied to admission).

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A connection admitted by the acceptor, waiting for a worker.
#[derive(Debug)]
pub(crate) struct Pending {
    /// The accepted stream.
    pub stream: TcpStream,
    /// Monotonic connection id (drives per-connection chaos plans).
    pub conn_id: u64,
    /// When the acceptor admitted it (starts the session deadline).
    pub accepted_at: Instant,
}

#[derive(Debug)]
struct Inner {
    queue: VecDeque<Pending>,
    closed: bool,
}

/// The bounded FIFO accept-queue.
#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    limit: usize,
}

impl AdmissionQueue {
    /// Creates a queue bounded at `limit` pending connections.
    pub fn new(limit: usize) -> AdmissionQueue {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            limit: limit.max(1),
        }
    }

    /// Admits a connection, or returns it when the queue is full (the
    /// caller sheds it). On success the new queue depth rides along
    /// for the depth gauge.
    pub fn offer(&self, pending: Pending) -> Result<usize, Pending> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.queue.len() >= self.limit {
            return Err(pending);
        }
        inner.queue.push_back(pending);
        let depth = inner.queue.len();
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Takes the oldest pending connection, waiting up to `timeout`.
    /// Returns `None` on timeout or when the queue is closed and
    /// empty — callers re-check drain state and loop.
    pub fn take(&self, timeout: Duration) -> Option<Pending> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(pending) = inner.queue.pop_front() {
                return Some(pending);
            }
            if inner.closed {
                return None;
            }
            let (next, wait) = self
                .available
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|e| e.into_inner());
            inner = next;
            if wait.timed_out() {
                return inner.queue.pop_front();
            }
        }
    }

    /// Closes the queue: `offer` refuses everything and blocked
    /// `take`s wake up. Already-queued connections remain takeable
    /// (the drain serves them while the deadline allows).
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        drop(inner);
        self.available.notify_all();
    }

    /// Drains every still-queued connection (for shedding once the
    /// drain deadline has passed).
    pub fn drain_remaining(&self) -> Vec<Pending> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.queue.drain(..).collect()
    }

    /// The current queue depth.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }
}
