//! Line-JSON framing and deterministic transport-level chaos.
//!
//! A frame is one JSON document terminated by `\n` — the simplest
//! protocol that is still self-delimiting over a byte stream. The
//! reader is incremental (frames may arrive split at arbitrary byte
//! boundaries, several per read, or one byte at a time) and bounded:
//! a frame that exceeds the configured limit before its terminator is
//! rejected with a typed [`FrameError::Oversized`] instead of growing
//! the buffer without bound, and a peer that closes mid-frame yields
//! [`FrameError::Truncated`] rather than a silent partial parse.
//!
//! [`TransportChaos`] extends the PR 3 store-level chaos to the wire:
//! a seeded, per-connection fault plan (connection drops, stalled
//! reads, truncated frames, slow-loris writes) applied by wrapping any
//! `Read + Write` stream in a [`ChaosStream`]. The same
//! `(seed, connection id)` pair always draws the same fault, so every
//! wire-level failure a test observes is replayable.

use std::io::{self, Read, Write};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default bound on a single frame, in bytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// A framing failure, typed so sessions can reply with the precise
/// reason before closing.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream mid-frame: bytes were buffered but
    /// the terminator never arrived.
    Truncated {
        /// How many bytes of the unterminated frame had arrived.
        buffered: usize,
    },
    /// The frame exceeded the limit before its terminator.
    Oversized {
        /// The configured frame limit, in bytes.
        limit: usize,
    },
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// An underlying transport error (read timeouts surface here as
    /// `WouldBlock`/`TimedOut`).
    Io(io::Error),
}

impl FrameError {
    /// Whether this is a read timeout (the peer may still be alive).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { buffered } => {
                write!(f, "stream closed mid-frame ({buffered} bytes buffered)")
            }
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
            FrameError::Closed => write!(f, "stream closed"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: the payload followed by the `\n` terminator.
///
/// The payload must not itself contain the terminator (JSON encoders
/// never emit raw newlines inside a document).
pub fn encode_frame(payload: &str) -> Vec<u8> {
    debug_assert!(!payload.contains('\n'), "payload must be newline-free");
    let mut bytes = Vec::with_capacity(payload.len() + 1);
    bytes.extend_from_slice(payload.as_bytes());
    bytes.push(b'\n');
    bytes
}

/// An incremental line-frame reader over any byte stream.
///
/// Bytes are buffered across reads; [`FrameReader::read_frame`]
/// returns complete frames one at a time regardless of how the stream
/// chunks them.
#[derive(Debug)]
pub struct FrameReader<R> {
    stream: R,
    buffer: Vec<u8>,
    max_frame_bytes: usize,
    /// Set once an oversized frame is detected: the stream position is
    /// unrecoverable (we are mid-garbage), so all further reads fail.
    poisoned: bool,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream with the given frame limit.
    pub fn new(stream: R, max_frame_bytes: usize) -> FrameReader<R> {
        FrameReader {
            stream,
            buffer: Vec::new(),
            max_frame_bytes: max_frame_bytes.max(1),
            poisoned: false,
        }
    }

    /// Reads the next complete frame (without its terminator).
    ///
    /// # Errors
    ///
    /// [`FrameError::Closed`] on a clean EOF between frames,
    /// [`FrameError::Truncated`] on EOF mid-frame,
    /// [`FrameError::Oversized`] once the buffered prefix exceeds the
    /// limit (the reader is then poisoned — the connection should be
    /// closed), and [`FrameError::Io`] for transport errors including
    /// read timeouts.
    pub fn read_frame(&mut self) -> Result<String, FrameError> {
        if self.poisoned {
            return Err(FrameError::Oversized {
                limit: self.max_frame_bytes,
            });
        }
        loop {
            if let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
                // The limit applies even when the terminator has
                // already arrived (e.g. a whole oversized frame in one
                // chunk) — a bound that only holds for slow senders is
                // no bound.
                if pos > self.max_frame_bytes {
                    self.poisoned = true;
                    return Err(FrameError::Oversized {
                        limit: self.max_frame_bytes,
                    });
                }
                let rest = self.buffer.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buffer, rest);
                line.pop(); // the terminator
                return String::from_utf8(line).map_err(|e| {
                    FrameError::Io(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                });
            }
            if self.buffer.len() > self.max_frame_bytes {
                self.poisoned = true;
                return Err(FrameError::Oversized {
                    limit: self.max_frame_bytes,
                });
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buffer.is_empty() {
                        Err(FrameError::Closed)
                    } else {
                        Err(FrameError::Truncated {
                            buffered: self.buffer.len(),
                        })
                    };
                }
                Ok(n) => self.buffer.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Whether bytes of an incomplete frame are currently buffered.
    pub fn mid_frame(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// The wrapped stream (e.g. to set socket timeouts).
    pub fn stream_mut(&mut self) -> &mut R {
        &mut self.stream
    }
}

/// Writes frames to any byte stream.
#[derive(Debug)]
pub struct FrameWriter<W> {
    stream: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a stream.
    pub fn new(stream: W) -> FrameWriter<W> {
        FrameWriter { stream }
    }

    /// Writes one frame and flushes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write/flush error.
    pub fn write_frame(&mut self, payload: &str) -> io::Result<()> {
        self.stream.write_all(&encode_frame(payload))?;
        self.stream.flush()
    }
}

// ---- transport chaos -------------------------------------------------

/// The wire-level counterpart of [`crate::ChaosConfig`]: a seeded
/// schedule of transport faults, drawn per connection.
#[derive(Debug, Clone)]
pub struct TransportChaos {
    /// Base seed; combined with the connection id for per-connection
    /// streams (same construction as `provider_seed`).
    pub seed: u64,
    /// Probability that a connection is assigned a fault at all.
    pub fault_rate: f64,
    /// Whether `DropConnection` may be drawn.
    pub drop_connections: bool,
    /// Whether `StallRead` may be drawn.
    pub stall_reads: bool,
    /// Whether `TruncateWrite` may be drawn.
    pub truncate_frames: bool,
    /// Whether `SlowLoris` may be drawn.
    pub slow_loris_writes: bool,
    /// How long a stalled read sleeps and a slow-loris write pauses
    /// between bytes.
    pub stall: Duration,
}

impl Default for TransportChaos {
    fn default() -> TransportChaos {
        TransportChaos {
            seed: 0,
            fault_rate: 0.0,
            drop_connections: true,
            stall_reads: true,
            truncate_frames: true,
            slow_loris_writes: true,
            stall: Duration::from_millis(20),
        }
    }
}

/// The fault assigned to one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// No fault: the stream behaves normally.
    None,
    /// The connection dies after the given number of successful
    /// operations (reads + writes): subsequent ones fail with
    /// `ConnectionReset`.
    DropConnection {
        /// Operations that succeed before the drop.
        after_ops: usize,
    },
    /// Every read stalls for the configured duration first.
    StallRead,
    /// The first write delivers only half its bytes, then the stream
    /// silently discards everything — the peer sees a truncated frame
    /// followed by EOF.
    TruncateWrite,
    /// Writes trickle out one byte at a time with a pause between
    /// bytes (a slow-loris client).
    SlowLoris,
}

impl TransportChaos {
    /// Draws the fault for a connection. Deterministic in
    /// `(self.seed, conn_id)`.
    pub fn fault_for(&self, conn_id: u64) -> TransportFault {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ conn_id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if rng.random::<f64>() >= self.fault_rate {
            return TransportFault::None;
        }
        let mut kinds = Vec::new();
        if self.drop_connections {
            kinds.push(TransportFault::DropConnection {
                after_ops: rng.random_range(0..4),
            });
        }
        if self.stall_reads {
            kinds.push(TransportFault::StallRead);
        }
        if self.truncate_frames {
            kinds.push(TransportFault::TruncateWrite);
        }
        if self.slow_loris_writes {
            kinds.push(TransportFault::SlowLoris);
        }
        if kinds.is_empty() {
            return TransportFault::None;
        }
        let pick = rng.random_range(0..kinds.len());
        kinds[pick]
    }
}

/// A stream wrapper that applies one [`TransportFault`].
///
/// The wrapper honours the inner stream's timeouts, so a stalled or
/// dropped connection still resolves within the session's bounded
/// reads — chaos makes sessions *fail*, never hang.
#[derive(Debug)]
pub struct ChaosStream<T> {
    inner: T,
    fault: TransportFault,
    stall: Duration,
    ops: usize,
    /// Set once `TruncateWrite` has fired: all further writes are
    /// swallowed.
    write_dead: bool,
}

impl<T> ChaosStream<T> {
    /// Wraps a stream with the fault drawn for `conn_id`.
    pub fn new(inner: T, chaos: &TransportChaos, conn_id: u64) -> ChaosStream<T> {
        ChaosStream {
            inner,
            fault: chaos.fault_for(conn_id),
            stall: chaos.stall,
            ops: 0,
            write_dead: false,
        }
    }

    /// The fault this stream is executing.
    pub fn fault(&self) -> TransportFault {
        self.fault
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &T {
        &self.inner
    }

    fn dropped(&mut self) -> bool {
        if let TransportFault::DropConnection { after_ops } = self.fault {
            if self.ops >= after_ops {
                return true;
            }
        }
        self.ops += 1;
        false
    }
}

impl<T: Read> Read for ChaosStream<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dropped() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection dropped",
            ));
        }
        if self.fault == TransportFault::StallRead {
            std::thread::sleep(self.stall);
        }
        self.inner.read(buf)
    }
}

impl<T: Write> Write for ChaosStream<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.write_dead {
            // Pretend success: the peer simply never sees the bytes.
            return Ok(buf.len());
        }
        if self.dropped() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection dropped",
            ));
        }
        match self.fault {
            TransportFault::TruncateWrite => {
                let half = (buf.len() / 2).max(1).min(buf.len());
                let n = self.inner.write(&buf[..half])?;
                let _ = self.inner.flush();
                self.write_dead = true;
                // Report the full length so the writer does not retry
                // the missing tail: the truncation is the fault.
                let _ = n;
                Ok(buf.len())
            }
            TransportFault::SlowLoris => {
                if buf.is_empty() {
                    return Ok(0);
                }
                std::thread::sleep(self.stall);
                self.inner.write(&buf[..1])
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.write_dead {
            return Ok(());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that yields a byte stream in caller-chosen chunks.
    pub(crate) struct ChunkedReader {
        data: Vec<u8>,
        cuts: Vec<usize>,
        pos: usize,
        next_cut: usize,
    }

    impl ChunkedReader {
        pub(crate) fn new(data: Vec<u8>, cuts: Vec<usize>) -> ChunkedReader {
            ChunkedReader {
                data,
                cuts,
                pos: 0,
                next_cut: 0,
            }
        }
    }

    impl Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let end = if self.next_cut < self.cuts.len() {
                let cut = self.cuts[self.next_cut].clamp(self.pos + 1, self.data.len());
                self.next_cut += 1;
                cut
            } else {
                self.data.len()
            };
            let n = (end - self.pos).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frames_survive_arbitrary_chunking() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(r#"{"op":"ping"}"#));
        bytes.extend_from_slice(&encode_frame(r#"{"op":"negotiate"}"#));
        let reader = ChunkedReader::new(bytes, vec![1, 2, 5, 14, 15, 20]);
        let mut frames = FrameReader::new(reader, DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(frames.read_frame().unwrap(), r#"{"op":"ping"}"#);
        assert_eq!(frames.read_frame().unwrap(), r#"{"op":"negotiate"}"#);
        assert!(matches!(frames.read_frame(), Err(FrameError::Closed)));
    }

    #[test]
    fn eof_mid_frame_is_truncated() {
        let reader = ChunkedReader::new(b"{\"op\":\"pi".to_vec(), vec![]);
        let mut frames = FrameReader::new(reader, DEFAULT_MAX_FRAME_BYTES);
        assert!(matches!(
            frames.read_frame(),
            Err(FrameError::Truncated { buffered: 9 })
        ));
    }

    #[test]
    fn oversized_frame_poisons_the_reader() {
        let reader = ChunkedReader::new(vec![b'x'; 64], vec![]);
        let mut frames = FrameReader::new(reader, 16);
        assert!(matches!(
            frames.read_frame(),
            Err(FrameError::Oversized { limit: 16 })
        ));
        // Poisoned: even though bytes remain, the position is garbage.
        assert!(matches!(
            frames.read_frame(),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn chaos_fault_is_deterministic_per_connection() {
        let chaos = TransportChaos {
            fault_rate: 1.0,
            seed: 7,
            ..TransportChaos::default()
        };
        for conn in 0..32u64 {
            assert_eq!(chaos.fault_for(conn), chaos.fault_for(conn));
        }
        // Rate 0 never faults.
        let calm = TransportChaos::default();
        assert!((0..32u64).all(|c| calm.fault_for(c) == TransportFault::None));
    }

    #[test]
    fn truncate_write_delivers_half_then_silence() {
        let chaos = TransportChaos {
            fault_rate: 1.0,
            drop_connections: false,
            stall_reads: false,
            slow_loris_writes: false,
            ..TransportChaos::default()
        };
        // Find a connection id assigned TruncateWrite (all faults are
        // TruncateWrite here since it is the only kind enabled).
        let mut sink = Vec::new();
        {
            let mut stream = ChaosStream::new(&mut sink, &chaos, 3);
            assert_eq!(stream.fault(), TransportFault::TruncateWrite);
            stream.write_all(&encode_frame("0123456789")).unwrap();
            stream.write_all(&encode_frame("second")).unwrap();
        }
        // Half of the first frame (11 bytes incl. terminator -> 5),
        // nothing of the second.
        assert_eq!(sink.len(), 5);
        assert_eq!(&sink, b"01234");
    }
}
