//! The daemon's wire protocol: line-JSON requests and typed replies.
//!
//! Every client interaction is one request frame answered by exactly
//! one reply frame. Replies are *total*: whatever happens to a session
//! — agreement, degradation, shed, timeout, malformed input — the
//! client receives a typed outcome before the connection closes, never
//! a silent hang. The reply vocabulary mirrors the dependability
//! story: `bound` (a clean agreement), `degraded` (an agreement that
//! needed the PR 3 recovery machinery — retries, rollbacks or
//! relaxation rungs), `shed` (admission control refused the session),
//! `timed-out` (a deadline fired; the partial store's checkpointed
//! consistency level rides along) and `error` (typed rejection).
//!
//! [`WireSemiring`] bridges the protocol's plain-float levels to the
//! semirings the broker negotiates over, so one server implementation
//! serves fuzzy, weighted and probabilistic deployments.

use serde::{Deserialize, Serialize, Value};
use softsoa_core::Constraint;
use softsoa_semiring::{Fuzzy, Probabilistic, Residuated, Unit, Weight, Weighted};

use crate::qos::{OfferShape, QosOffer};

/// A semiring the server can speak on the wire: levels parse from and
/// render to plain JSON numbers, and QoS offers translate to provider
/// constraints.
pub trait WireSemiring: Residuated {
    /// The protocol name of the semiring (`fuzzy`, `weighted`, …).
    const NAME: &'static str;

    /// Parses a wire-level number into a semiring value.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the number is out of range.
    fn parse_level(x: f64) -> Result<Self::Value, String>;

    /// Renders a semiring value as a wire-level number.
    fn render_level(v: &Self::Value) -> f64;

    /// Translates a registry offer into a provider constraint (the
    /// broker's `translate` hook).
    fn translate(offer: &QosOffer) -> Constraint<Self>;

    /// Builds the client's policy constraint from an [`OfferShape`]
    /// over the negotiation variable.
    fn shape_constraint(variable: &str, shape: OfferShape) -> Constraint<Self>;

    /// Normalises an agreed level into a *softness* in `[0, 1]`,
    /// higher-is-better, so fairness objectives can compare clients
    /// across semirings. Level-valued semirings pass through; cost
    /// semirings flip orientation (`1 / (1 + cost)`, `∞ → 0`).
    fn softness(v: &Self::Value) -> f64;
}

impl WireSemiring for Fuzzy {
    const NAME: &'static str = "fuzzy";

    fn parse_level(x: f64) -> Result<Unit, String> {
        Unit::new(x).map_err(|e| e.to_string())
    }

    fn render_level(v: &Unit) -> f64 {
        v.get()
    }

    fn translate(offer: &QosOffer) -> Constraint<Fuzzy> {
        offer.to_fuzzy()
    }

    fn shape_constraint(variable: &str, shape: OfferShape) -> Constraint<Fuzzy> {
        Constraint::unary(Fuzzy, variable, move |v| {
            Unit::clamped(shape.level_at(v.as_int().unwrap_or(0)))
        })
        .with_label("client")
    }

    fn softness(v: &Unit) -> f64 {
        v.get()
    }
}

impl WireSemiring for Weighted {
    const NAME: &'static str = "weighted";

    fn parse_level(x: f64) -> Result<Weight, String> {
        Weight::new(x).map_err(|e| e.to_string())
    }

    fn render_level(v: &Weight) -> f64 {
        // `∞` is not representable in JSON; the largest finite float
        // is unambiguous on the wire (no agreed level ever reaches it).
        if v.is_infinite() {
            f64::MAX
        } else {
            v.get()
        }
    }

    fn translate(offer: &QosOffer) -> Constraint<Weighted> {
        offer.to_weighted()
    }

    fn shape_constraint(variable: &str, shape: OfferShape) -> Constraint<Weighted> {
        Constraint::unary(Weighted, variable, move |v| {
            Weight::saturating(shape.level_at(v.as_int().unwrap_or(0)))
        })
        .with_label("client")
    }

    fn softness(v: &Weight) -> f64 {
        if v.is_infinite() {
            0.0
        } else {
            1.0 / (1.0 + v.get())
        }
    }
}

impl WireSemiring for Probabilistic {
    const NAME: &'static str = "probabilistic";

    fn parse_level(x: f64) -> Result<Unit, String> {
        Unit::new(x).map_err(|e| e.to_string())
    }

    fn render_level(v: &Unit) -> f64 {
        v.get()
    }

    fn translate(offer: &QosOffer) -> Constraint<Probabilistic> {
        offer.to_probabilistic()
    }

    fn shape_constraint(variable: &str, shape: OfferShape) -> Constraint<Probabilistic> {
        Constraint::unary(Probabilistic, variable, move |v| {
            Unit::clamped(shape.level_at(v.as_int().unwrap_or(0)))
        })
        .with_label("client")
    }

    fn softness(v: &Unit) -> f64 {
        v.get()
    }
}

// ---- requests --------------------------------------------------------

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with the current registry epoch.
    Ping,
    /// Drive one discovery → negotiation → binding session.
    Negotiate(NegotiateRequest),
    /// Publish (or replace) a provider in the registry.
    Publish(PublishRequest),
    /// Remove a provider from the registry.
    Deregister {
        /// The service id to remove.
        service: String,
    },
}

/// The negotiation parameters a client sends.
#[derive(Debug, Clone, PartialEq)]
pub struct NegotiateRequest {
    /// The capability to discover providers for.
    pub capability: String,
    /// The negotiation variable.
    pub variable: String,
    /// Inclusive integer domain bounds for the variable.
    pub domain: [i64; 2],
    /// The client's policy over the variable.
    pub policy: OfferShape,
    /// Acceptance interval `[lo, hi]` as wire levels.
    pub accept: [f64; 2],
    /// A stable client identity for fair contended allocation; absent
    /// identities fall back to a per-connection id, losing cross-batch
    /// starvation tracking.
    pub client: Option<String>,
}

/// A provider publication.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishRequest {
    /// The service id.
    pub service: String,
    /// The owning provider id.
    pub provider: String,
    /// The capability the service offers.
    pub capability: String,
    /// The QoS offer backing negotiations.
    pub offer: QosOffer,
    /// Declared concurrent-binding capacity (`None` = unlimited).
    pub capacity: Option<u32>,
}

impl Request {
    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A human-readable reason (surfaced to the client as a
    /// `bad-request` reply).
    pub fn parse(frame: &str) -> Result<Request, String> {
        let value: Value = serde_json::from_str(frame).map_err(|e| e.to_string())?;
        let op = str_field(&value, "op")?;
        match op {
            "ping" => Ok(Request::Ping),
            "negotiate" => {
                let domain = value.get("domain").ok_or("missing field `domain`")?;
                let policy = value.get("policy").ok_or("missing field `policy`")?;
                Ok(Request::Negotiate(NegotiateRequest {
                    capability: str_field(&value, "capability")?.to_string(),
                    variable: str_field(&value, "variable")?.to_string(),
                    domain: [i64_field(domain, "min")?, i64_field(domain, "max")?],
                    policy: OfferShape::from_value(policy).map_err(|e| e.to_string())?,
                    accept: [
                        f64_field(&value, "accept_lo")?,
                        f64_field(&value, "accept_hi")?,
                    ],
                    client: opt_str_field(&value, "client")?,
                }))
            }
            "publish" => {
                let offer = value.get("offer").ok_or("missing field `offer`")?;
                Ok(Request::Publish(PublishRequest {
                    service: str_field(&value, "service")?.to_string(),
                    provider: str_field(&value, "provider")?.to_string(),
                    capability: str_field(&value, "capability")?.to_string(),
                    offer: QosOffer::from_value(offer).map_err(|e| e.to_string())?,
                    capacity: opt_u32_field(&value, "capacity")?,
                }))
            }
            "deregister" => Ok(Request::Deregister {
                service: str_field(&value, "service")?.to_string(),
            }),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Renders the request as one JSON frame payload.
    pub fn to_json(&self) -> String {
        let value = match self {
            Request::Ping => obj(vec![("op", Value::Str("ping".into()))]),
            Request::Negotiate(n) => obj(vec![
                ("op", Value::Str("negotiate".into())),
                ("capability", Value::Str(n.capability.clone())),
                ("variable", Value::Str(n.variable.clone())),
                (
                    "domain",
                    obj(vec![
                        ("min", Value::Int(n.domain[0])),
                        ("max", Value::Int(n.domain[1])),
                    ]),
                ),
                ("policy", n.policy.to_value()),
                ("accept_lo", Value::Float(n.accept[0])),
                ("accept_hi", Value::Float(n.accept[1])),
                (
                    "client",
                    n.client
                        .as_ref()
                        .map_or(Value::Null, |c| Value::Str(c.clone())),
                ),
            ]),
            Request::Publish(p) => obj(vec![
                ("op", Value::Str("publish".into())),
                ("service", Value::Str(p.service.clone())),
                ("provider", Value::Str(p.provider.clone())),
                ("capability", Value::Str(p.capability.clone())),
                ("offer", p.offer.to_value()),
                (
                    "capacity",
                    p.capacity
                        .map_or(Value::Null, |c| Value::UInt(u64::from(c))),
                ),
            ]),
            Request::Deregister { service } => obj(vec![
                ("op", Value::Str("deregister".into())),
                ("service", Value::Str(service.clone())),
            ]),
        };
        serde_json::to_string(&value).expect("request values always serialize")
    }
}

// ---- replies ---------------------------------------------------------

/// Why admission control refused a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The accept queue (or in-flight budget) is full.
    Overloaded,
    /// The server is draining towards shutdown.
    Draining,
}

impl ShedReason {
    fn as_str(self) -> &'static str {
        match self {
            ShedReason::Overloaded => "overloaded",
            ShedReason::Draining => "draining",
        }
    }
}

/// Which phase a deadline fired in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for (or mid-way through) a request frame.
    Read,
    /// Driving the negotiation engine.
    Negotiate,
    /// Writing the reply.
    Write,
    /// The whole-session deadline, between requests.
    Session,
}

impl Phase {
    /// The wire/metric label of the phase.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Read => "read",
            Phase::Negotiate => "negotiate",
            Phase::Write => "write",
            Phase::Session => "session",
        }
    }
}

/// A typed request rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a well-formed request.
    BadRequest,
    /// The peer closed mid-frame.
    TruncatedFrame,
    /// The frame exceeded the configured limit.
    OversizedFrame,
    /// Discovery found no provider for the capability.
    NoProvider,
    /// Every provider session failed to agree.
    NoAgreement,
    /// The acceptance interval is contradictory.
    InvalidAcceptance,
    /// An internal engine failure.
    Internal,
}

impl ErrorCode {
    fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::TruncatedFrame => "truncated-frame",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::NoProvider => "no-provider",
            ErrorCode::NoAgreement => "no-agreement",
            ErrorCode::InvalidAcceptance => "invalid-acceptance",
            ErrorCode::Internal => "internal",
        }
    }

    fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad-request" => ErrorCode::BadRequest,
            "truncated-frame" => ErrorCode::TruncatedFrame,
            "oversized-frame" => ErrorCode::OversizedFrame,
            "no-provider" => ErrorCode::NoProvider,
            "no-agreement" => ErrorCode::NoAgreement,
            "invalid-acceptance" => ErrorCode::InvalidAcceptance,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// One reply frame: the typed outcome of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A clean agreement.
    Bound {
        /// The winning service.
        service: String,
        /// Its provider.
        provider: String,
        /// The agreed level as a wire number.
        level: f64,
        /// The bound value of the negotiation variable, if any.
        binding: Option<i64>,
        /// The registry epoch the agreement was computed under.
        epoch: u64,
    },
    /// An agreement that needed recovery (retries, rollbacks or
    /// relaxation rungs) to survive injected faults.
    Degraded {
        /// The winning service.
        service: String,
        /// Its provider.
        provider: String,
        /// The agreed level as a wire number.
        level: f64,
        /// The bound value of the negotiation variable, if any.
        binding: Option<i64>,
        /// The registry epoch the agreement was computed under.
        epoch: u64,
        /// Total retries spent across provider sessions.
        retries: u64,
        /// Total relaxation rungs consumed.
        relaxations: u64,
    },
    /// Admission control refused the session.
    Shed {
        /// Why the session was refused.
        reason: ShedReason,
    },
    /// A deadline fired.
    TimedOut {
        /// The phase the deadline fired in.
        phase: Phase,
        /// The checkpointed consistency level of the partial store,
        /// when a negotiation was cut off mid-way.
        partial_level: Option<f64>,
    },
    /// A typed rejection.
    Error {
        /// The rejection code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Liveness answer.
    Pong {
        /// The current registry epoch.
        epoch: u64,
    },
    /// A publication was accepted.
    Published {
        /// The epoch the publication created.
        epoch: u64,
    },
    /// A deregistration was processed.
    Deregistered {
        /// The epoch after the removal.
        epoch: u64,
        /// Whether the service existed.
        existed: bool,
    },
    /// The joint allocator left this client unbound even though plain
    /// FCFS would have granted it: a fairness objective awarded the
    /// contested slot elsewhere this round.
    Preempted {
        /// The registry epoch the joint allocation was computed under.
        epoch: u64,
        /// The fairness objective that arbitrated the batch.
        objective: String,
    },
    /// Capacity ran out before this client under every candidate
    /// provider; its starvation age is tracked and prioritised in the
    /// next contended batch.
    Waitlisted {
        /// The registry epoch the joint allocation was computed under.
        epoch: u64,
        /// Contended rounds this client has waited since it last won a
        /// grant (allocation pressure, fed to leximin priority).
        age: u64,
    },
}

impl Reply {
    /// The typed outcome label (the value of the `outcome` field, also
    /// used for metric labels and load-generator tallies).
    pub fn outcome_label(&self) -> &'static str {
        match self {
            Reply::Bound { .. } => "bound",
            Reply::Degraded { .. } => "degraded",
            Reply::Shed { .. } => "shed",
            Reply::TimedOut { .. } => "timed-out",
            Reply::Error { .. } => "error",
            Reply::Pong { .. } => "pong",
            Reply::Published { .. } => "published",
            Reply::Deregistered { .. } => "deregistered",
            Reply::Preempted { .. } => "preempted",
            Reply::Waitlisted { .. } => "waitlisted",
        }
    }

    /// Renders the reply as one JSON frame payload.
    pub fn to_json(&self) -> String {
        let mut fields = vec![("outcome", Value::Str(self.outcome_label().into()))];
        match self {
            Reply::Bound {
                service,
                provider,
                level,
                binding,
                epoch,
            } => {
                fields.push(("service", Value::Str(service.clone())));
                fields.push(("provider", Value::Str(provider.clone())));
                fields.push(("level", Value::Float(*level)));
                fields.push(("binding", binding.map_or(Value::Null, Value::Int)));
                fields.push(("epoch", Value::UInt(*epoch)));
            }
            Reply::Degraded {
                service,
                provider,
                level,
                binding,
                epoch,
                retries,
                relaxations,
            } => {
                fields.push(("service", Value::Str(service.clone())));
                fields.push(("provider", Value::Str(provider.clone())));
                fields.push(("level", Value::Float(*level)));
                fields.push(("binding", binding.map_or(Value::Null, Value::Int)));
                fields.push(("epoch", Value::UInt(*epoch)));
                fields.push(("retries", Value::UInt(*retries)));
                fields.push(("relaxations", Value::UInt(*relaxations)));
            }
            Reply::Shed { reason } => {
                fields.push(("reason", Value::Str(reason.as_str().into())));
            }
            Reply::TimedOut {
                phase,
                partial_level,
            } => {
                fields.push(("phase", Value::Str(phase.as_str().into())));
                fields.push((
                    "partial_level",
                    partial_level.map_or(Value::Null, Value::Float),
                ));
            }
            Reply::Error { code, detail } => {
                fields.push(("code", Value::Str(code.as_str().into())));
                fields.push(("detail", Value::Str(detail.clone())));
            }
            Reply::Pong { epoch } => {
                fields.push(("epoch", Value::UInt(*epoch)));
            }
            Reply::Published { epoch } => {
                fields.push(("epoch", Value::UInt(*epoch)));
            }
            Reply::Deregistered { epoch, existed } => {
                fields.push(("epoch", Value::UInt(*epoch)));
                fields.push(("existed", Value::Bool(*existed)));
            }
            Reply::Preempted { epoch, objective } => {
                fields.push(("epoch", Value::UInt(*epoch)));
                fields.push(("objective", Value::Str(objective.clone())));
            }
            Reply::Waitlisted { epoch, age } => {
                fields.push(("epoch", Value::UInt(*epoch)));
                fields.push(("age", Value::UInt(*age)));
            }
        }
        serde_json::to_string(&obj(fields)).expect("reply values always serialize")
    }

    /// Parses a reply frame (the load generator's half of the
    /// protocol).
    ///
    /// # Errors
    ///
    /// A human-readable reason for malformed frames.
    pub fn parse(frame: &str) -> Result<Reply, String> {
        let value: Value = serde_json::from_str(frame).map_err(|e| e.to_string())?;
        let outcome = str_field(&value, "outcome")?;
        match outcome {
            "bound" => Ok(Reply::Bound {
                service: str_field(&value, "service")?.to_string(),
                provider: str_field(&value, "provider")?.to_string(),
                level: f64_field(&value, "level")?,
                binding: opt_i64_field(&value, "binding")?,
                epoch: u64_field(&value, "epoch")?,
            }),
            "degraded" => Ok(Reply::Degraded {
                service: str_field(&value, "service")?.to_string(),
                provider: str_field(&value, "provider")?.to_string(),
                level: f64_field(&value, "level")?,
                binding: opt_i64_field(&value, "binding")?,
                epoch: u64_field(&value, "epoch")?,
                retries: u64_field(&value, "retries")?,
                relaxations: u64_field(&value, "relaxations")?,
            }),
            "shed" => Ok(Reply::Shed {
                reason: match str_field(&value, "reason")? {
                    "overloaded" => ShedReason::Overloaded,
                    "draining" => ShedReason::Draining,
                    other => return Err(format!("unknown shed reason `{other}`")),
                },
            }),
            "timed-out" => Ok(Reply::TimedOut {
                phase: match str_field(&value, "phase")? {
                    "read" => Phase::Read,
                    "negotiate" => Phase::Negotiate,
                    "write" => Phase::Write,
                    "session" => Phase::Session,
                    other => return Err(format!("unknown phase `{other}`")),
                },
                partial_level: opt_f64_field(&value, "partial_level")?,
            }),
            "error" => Ok(Reply::Error {
                code: ErrorCode::parse(str_field(&value, "code")?).ok_or("unknown error code")?,
                detail: str_field(&value, "detail")?.to_string(),
            }),
            "pong" => Ok(Reply::Pong {
                epoch: u64_field(&value, "epoch")?,
            }),
            "published" => Ok(Reply::Published {
                epoch: u64_field(&value, "epoch")?,
            }),
            "deregistered" => Ok(Reply::Deregistered {
                epoch: u64_field(&value, "epoch")?,
                existed: bool_field(&value, "existed")?,
            }),
            "preempted" => Ok(Reply::Preempted {
                epoch: u64_field(&value, "epoch")?,
                objective: str_field(&value, "objective")?.to_string(),
            }),
            "waitlisted" => Ok(Reply::Waitlisted {
                epoch: u64_field(&value, "epoch")?,
                age: u64_field(&value, "age")?,
            }),
            other => Err(format!("unknown outcome `{other}`")),
        }
    }
}

// ---- value helpers ---------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn str_field<'v>(value: &'v Value, key: &str) -> Result<&'v str, String> {
    match value.get(key) {
        Some(Value::Str(s)) => Ok(s),
        Some(other) => Err(format!(
            "field `{key}`: expected string, got {}",
            other.kind()
        )),
        None => Err(format!("missing field `{key}`")),
    }
}

fn opt_str_field(value: &Value, key: &str) -> Result<Option<String>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(format!(
            "field `{key}`: expected string or null, got {}",
            other.kind()
        )),
    }
}

fn opt_u32_field(value: &Value, key: &str) -> Result<Option<u32>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) => u32::try_from(*i)
            .map(Some)
            .map_err(|_| format!("field `{key}`: out of range")),
        Some(Value::UInt(u)) => u32::try_from(*u)
            .map(Some)
            .map_err(|_| format!("field `{key}`: out of range")),
        Some(other) => Err(format!(
            "field `{key}`: expected unsigned integer or null, got {}",
            other.kind()
        )),
    }
}

fn number(value: &Value) -> Option<f64> {
    match value {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn f64_field(value: &Value, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(number)
        .ok_or_else(|| format!("field `{key}`: expected number"))
}

fn opt_f64_field(value: &Value, key: &str) -> Result<Option<f64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => number(v)
            .map(Some)
            .ok_or_else(|| format!("field `{key}`: expected number or null")),
    }
}

fn i64_field(value: &Value, key: &str) -> Result<i64, String> {
    match value.get(key) {
        Some(Value::Int(i)) => Ok(*i),
        Some(Value::UInt(u)) => i64::try_from(*u).map_err(|_| format!("field `{key}`: overflow")),
        _ => Err(format!("field `{key}`: expected integer")),
    }
}

fn opt_i64_field(value: &Value, key: &str) -> Result<Option<i64>, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) => Ok(Some(*i)),
        Some(Value::UInt(u)) => i64::try_from(*u)
            .map(Some)
            .map_err(|_| format!("field `{key}`: overflow")),
        Some(other) => Err(format!(
            "field `{key}`: expected integer or null, got {}",
            other.kind()
        )),
    }
}

fn u64_field(value: &Value, key: &str) -> Result<u64, String> {
    match value.get(key) {
        Some(Value::Int(i)) => u64::try_from(*i).map_err(|_| format!("field `{key}`: negative")),
        Some(Value::UInt(u)) => Ok(*u),
        _ => Err(format!("field `{key}`: expected unsigned integer")),
    }
}

fn bool_field(value: &Value, key: &str) -> Result<bool, String> {
    match value.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("field `{key}`: expected boolean")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Ping,
            Request::Negotiate(NegotiateRequest {
                capability: "compute".into(),
                variable: "x".into(),
                domain: [0, 9],
                policy: OfferShape::Linear {
                    slope: -0.1,
                    intercept: 1.0,
                },
                accept: [0.3, 1.0],
                client: None,
            }),
            Request::Negotiate(NegotiateRequest {
                capability: "compute".into(),
                variable: "x".into(),
                domain: [0, 4],
                policy: OfferShape::Constant { level: 0.7 },
                accept: [0.0, 1.0],
                client: Some("tenant-a".into()),
            }),
            Request::Publish(PublishRequest {
                service: "svc-9".into(),
                provider: "acme".into(),
                capability: "compute".into(),
                offer: QosOffer {
                    attribute: softsoa_dependability::Attribute::Reliability,
                    variable: "x".into(),
                    shape: OfferShape::Constant { level: 0.8 },
                },
                capacity: Some(2),
            }),
            Request::Deregister {
                service: "svc-1".into(),
            },
        ];
        for request in requests {
            let json = request.to_json();
            assert_eq!(Request::parse(&json).unwrap(), request, "{json}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = vec![
            Reply::Bound {
                service: "svc-1".into(),
                provider: "acme".into(),
                level: 0.5,
                binding: Some(5),
                epoch: 3,
            },
            Reply::Shed {
                reason: ShedReason::Overloaded,
            },
            Reply::TimedOut {
                phase: Phase::Negotiate,
                partial_level: Some(0.25),
            },
            Reply::Error {
                code: ErrorCode::NoAgreement,
                detail: "all sessions deadlocked".into(),
            },
            Reply::Pong { epoch: 0 },
            Reply::Preempted {
                epoch: 4,
                objective: "leximin".into(),
            },
            Reply::Waitlisted { epoch: 4, age: 2 },
        ];
        for reply in replies {
            let json = reply.to_json();
            assert_eq!(Reply::parse(&json).unwrap(), reply, "{json}");
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"warp"}"#).is_err());
        assert!(Request::parse(r#"{"op":"negotiate"}"#).is_err());
    }
}
