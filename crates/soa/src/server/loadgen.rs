//! Deterministic load generator for the negotiation daemon.
//!
//! Drives N client sessions (over a bounded thread pool) against a
//! running server, mixing well-behaved negotiators with registry-churn
//! clients and — at a configurable rate — deliberately hostile ones:
//! silent stalls, truncated frames, slow-loris writers and abrupt
//! disconnects. Client behaviour is a pure function of `(seed, client
//! index)`, so a failing run replays exactly.
//!
//! The report tallies every session by its *typed* outcome; the
//! headline dependability claim is `hung == 0` — no client ever waits
//! past the server's deadline envelope without an answer or a close.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use softsoa_dependability::Attribute;
use softsoa_telemetry::Telemetry;

use crate::contention::Fairness;
use crate::qos::{OfferShape, QosOffer};
use crate::registry::{Registry, ServiceDescription};
use crate::server::protocol::{NegotiateRequest, PublishRequest, Reply, Request, WireSemiring};
use crate::server::{DrainReport, NegotiationServer, ServerConfig, ServerHandle};
use crate::QosDocument;

/// Load shape: how many sessions, how parallel, how hostile.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Total client sessions to run.
    pub clients: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Fraction of clients that misbehave at the transport level
    /// (stall, truncate, slow-loris, disconnect).
    pub transport_fault_rate: f64,
    /// Fraction of well-behaved clients that churn the registry
    /// (publish → negotiate → deregister) instead of just negotiating.
    pub churn_rate: f64,
    /// Seed for the deterministic per-client behaviour plan.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 200,
            concurrency: 16,
            transport_fault_rate: 0.0,
            churn_rate: 0.2,
            seed: 7,
        }
    }
}

/// What one load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Sessions attempted.
    pub sessions: usize,
    /// Tally of typed outcomes (`bound`, `degraded`, `shed`,
    /// `timed-out`, `error`, plus client-side `closed` / `abandoned` /
    /// `garbled` / `connect-failed`).
    pub outcomes: BTreeMap<String, usize>,
    /// Sessions where the client waited past the full deadline
    /// envelope with neither a reply nor a close. **Must be zero.**
    pub hung: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Completed sessions per second.
    pub sessions_per_sec: f64,
    /// Median session latency (reply-awaiting sessions), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile session latency, milliseconds.
    pub p99_ms: f64,
    /// Worst session latency, milliseconds.
    pub max_ms: f64,
    /// Binding-cache entries after the run (flat-memory witness).
    pub cache_entries: usize,
    /// The configured binding-cache bound.
    pub cache_capacity: usize,
    /// Registry epoch after the run (how much churn was published).
    pub final_epoch: u64,
}

impl LoadReport {
    /// Renders the report as pretty JSON (the `BENCH_8.json` rows).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("report values always serialize")
    }

    /// The report as a JSON value, for embedding in larger documents.
    pub fn to_value(&self) -> Value {
        let outcomes = Value::Obj(
            self.outcomes
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v as u64)))
                .collect(),
        );
        Value::Obj(vec![
            ("sessions".into(), Value::UInt(self.sessions as u64)),
            ("outcomes".into(), outcomes),
            ("hung".into(), Value::UInt(self.hung as u64)),
            (
                "elapsed_ms".into(),
                Value::Float(self.elapsed.as_secs_f64() * 1e3),
            ),
            (
                "sessions_per_sec".into(),
                Value::Float(self.sessions_per_sec),
            ),
            ("p50_ms".into(), Value::Float(self.p50_ms)),
            ("p99_ms".into(), Value::Float(self.p99_ms)),
            ("max_ms".into(), Value::Float(self.max_ms)),
            (
                "cache_entries".into(),
                Value::UInt(self.cache_entries as u64),
            ),
            (
                "cache_capacity".into(),
                Value::UInt(self.cache_capacity as u64),
            ),
            ("final_epoch".into(), Value::UInt(self.final_epoch)),
        ])
    }
}

/// A self-hosted run: the load report plus what the drain saw.
#[derive(Debug, Clone)]
pub struct SelfHostedReport {
    /// The client-side load report.
    pub load: LoadReport,
    /// The server-side drain report.
    pub drain: DrainReport,
}

impl SelfHostedReport {
    /// Renders both sides as one pretty-JSON document.
    pub fn to_json(&self) -> String {
        let drain = Value::Obj(vec![
            ("drained".into(), Value::UInt(self.drain.drained as u64)),
            ("shed".into(), Value::UInt(self.drain.shed as u64)),
            ("aborted".into(), Value::UInt(self.drain.aborted as u64)),
            (
                "elapsed_ms".into(),
                Value::Float(self.drain.elapsed.as_secs_f64() * 1e3),
            ),
            (
                "within_deadline".into(),
                Value::Bool(self.drain.within_deadline),
            ),
        ]);
        let value = Value::Obj(vec![
            ("load".into(), self.load.to_value()),
            ("drain".into(), drain),
        ]);
        serde_json::to_string_pretty(&value).expect("report values always serialize")
    }
}

/// Seeds a registry with `providers` services advertising the
/// `compute` capability over the `x` variable, with varied linear
/// offers so negotiations bind different levels.
pub fn seed_providers(providers: usize) -> Registry {
    let mut registry = Registry::new();
    for p in 0..providers {
        let service = format!("svc-{p:03}");
        let slope = 0.01 + (p % 7) as f64 * 0.01;
        let intercept = 0.40 + (p % 5) as f64 * 0.05;
        registry.publish(ServiceDescription::new(
            service.as_str(),
            format!("provider-{}", p % 5),
            "compute",
            QosDocument::new(&service).with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "x".into(),
                shape: OfferShape::Linear { slope, intercept },
            }),
        ));
    }
    registry
}

/// Starts a server on an ephemeral local port, runs the load against
/// it, then drains. The returned report carries both sides.
///
/// # Errors
///
/// Propagates server start-up failures (bind, thread spawn).
pub fn run_self_hosted<S: WireSemiring>(
    semiring: S,
    registry: Registry,
    server: ServerConfig,
    load: &LoadConfig,
    drain: Duration,
) -> std::io::Result<SelfHostedReport> {
    let handle = NegotiationServer::start(semiring, registry, server, Telemetry::disabled())?;
    let mut report = run(handle.local_addr(), load, handle.config().session_deadline);
    annotate(&mut report, &handle);
    let drain = handle.shutdown(drain);
    Ok(SelfHostedReport {
        load: report,
        drain,
    })
}

/// Fills the server-side fields of a report from a live handle.
pub fn annotate<S: WireSemiring>(report: &mut LoadReport, handle: &ServerHandle<S>) {
    report.cache_entries = handle.broker().cache.len();
    report.cache_capacity = handle.config().broker.binding_cache_capacity;
    report.final_epoch = handle.broker().registry().epoch();
}

/// Runs the load against an already-listening address.
/// `session_deadline` must match the server's (it sizes the client's
/// hang detector: a client only counts as hung after waiting out the
/// server's whole deadline envelope plus slack).
pub fn run(addr: SocketAddr, load: &LoadConfig, session_deadline: Duration) -> LoadReport {
    let started = Instant::now();
    let budget = session_deadline + session_deadline / 2 + Duration::from_secs(2);
    let concurrency = load.concurrency.max(1);
    let results: Vec<ClientResult> = thread::scope(|scope| {
        let mut lanes = Vec::with_capacity(concurrency);
        for lane in 0..concurrency {
            let load = *load;
            lanes.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut index = lane;
                while index < load.clients {
                    out.push(run_client(addr, index as u64, &load, budget));
                    index += concurrency;
                }
                out
            }));
        }
        lanes
            .into_iter()
            .flat_map(|lane| lane.join().unwrap_or_default())
            .collect()
    });
    let elapsed = started.elapsed();

    let mut outcomes = BTreeMap::new();
    let mut hung = 0;
    let mut latencies: Vec<f64> = Vec::new();
    for result in &results {
        *outcomes.entry(result.label.clone()).or_insert(0) += 1;
        if result.hung {
            hung += 1;
        }
        if let Some(latency) = result.latency {
            latencies.push(latency.as_secs_f64() * 1e3);
        }
    }
    let (p50_ms, p99_ms, max_ms) = latency_summary(latencies);
    LoadReport {
        sessions: results.len(),
        outcomes,
        hung,
        sessions_per_sec: results.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        elapsed,
        p50_ms,
        p99_ms,
        max_ms,
        cache_entries: 0,
        cache_capacity: 0,
        final_epoch: 0,
    }
}

/// Sorts the sample and extracts `(p50, p99, max)`.
///
/// `total_cmp`, not `partial_cmp().expect(...)`: one NaN latency (a
/// poisoned sample from a clock glitch) must not panic away the whole
/// load report — NaN sorts after every finite value instead.
fn latency_summary(mut latencies: Vec<f64>) -> (f64, f64, f64) {
    latencies.sort_by(f64::total_cmp);
    (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.last().copied().unwrap_or(0.0),
    )
}

/// Linear-interpolation percentile (the "R-7" estimator) over an
/// ascending sample. Nearest-rank rounding made p99 silently equal the
/// maximum for fewer than 100 samples, overstating tail latencies; the
/// interpolated estimate blends the two straddling order statistics
/// instead.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = (sorted.len() - 1) as f64 * q;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let hi = hi.min(sorted.len() - 1);
    if lo == hi {
        return sorted[lo];
    }
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The deterministic behaviour plan for one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientPlan {
    /// Connect, negotiate, read the reply, close.
    Negotiate,
    /// Publish a service, negotiate, deregister it (registry churn).
    Churn,
    /// Send half a frame, then go silent until the server's session
    /// deadline answers with a typed `timed-out`.
    SilentStall,
    /// Send a frame without its terminator and close the write side —
    /// the server must answer `truncated-frame`.
    TruncatedFrame,
    /// Write the frame one byte at a time — slow, but inside the
    /// deadline; the server must still answer normally.
    SlowLoris,
    /// Send a request and vanish without reading the reply.
    Disconnect,
}

fn plan_for(load: &LoadConfig, index: u64) -> ClientPlan {
    let mut rng = StdRng::seed_from_u64(load.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if rng.random::<f64>() < load.transport_fault_rate {
        match rng.random_range(0..4u32) {
            0 => ClientPlan::SilentStall,
            1 => ClientPlan::TruncatedFrame,
            2 => ClientPlan::SlowLoris,
            _ => ClientPlan::Disconnect,
        }
    } else if rng.random::<f64>() < load.churn_rate {
        ClientPlan::Churn
    } else {
        ClientPlan::Negotiate
    }
}

fn negotiate_request(index: u64) -> Request {
    // Vary the domain upper bound so the broker sees several binding
    // shapes (exercising the bounded per-shape solver table).
    Request::Negotiate(NegotiateRequest {
        capability: "compute".into(),
        variable: "x".into(),
        domain: [0, 4 + (index % 5) as i64],
        policy: OfferShape::Linear {
            slope: -0.01,
            intercept: 0.9,
        },
        accept: [0.2, 1.0],
        client: None,
    })
}

#[derive(Debug, Default)]
struct ClientResult {
    label: String,
    latency: Option<Duration>,
    hung: bool,
    /// The agreed level when the reply carried a binding.
    level: Option<f64>,
}

fn run_client(addr: SocketAddr, index: u64, load: &LoadConfig, budget: Duration) -> ClientResult {
    let started = Instant::now();
    let Ok(stream) = TcpStream::connect(addr) else {
        return ClientResult {
            label: "connect-failed".into(),
            latency: None,
            hung: false,
            level: None,
        };
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(budget));

    let mut result = match plan_for(load, index) {
        ClientPlan::Negotiate => exchange_all(&stream, &[negotiate_request(index)]),
        ClientPlan::Churn => {
            let service = format!("churn-{index}");
            exchange_all(
                &stream,
                &[
                    Request::Publish(PublishRequest {
                        service: service.clone(),
                        provider: "loadgen".into(),
                        capability: "compute".into(),
                        offer: QosOffer {
                            attribute: Attribute::Reliability,
                            variable: "x".into(),
                            shape: OfferShape::Linear {
                                slope: 0.01,
                                intercept: 0.6,
                            },
                        },
                        capacity: None,
                    }),
                    negotiate_request(index),
                    Request::Deregister { service },
                ],
            )
        }
        ClientPlan::SilentStall => {
            let mut s = &stream;
            let _ = s.write_all(b"{\"op\":\"negot"); // half a frame, then silence
            read_outcome(&stream)
        }
        ClientPlan::TruncatedFrame => {
            let mut s = &stream;
            let _ = s.write_all(b"{\"op\":\"ping\"}"); // no terminator
            let _ = stream.shutdown(Shutdown::Write);
            read_outcome(&stream)
        }
        ClientPlan::SlowLoris => {
            let frame = format!("{}\n", negotiate_request(index).to_json());
            let mut s = &stream;
            for byte in frame.as_bytes() {
                if s.write_all(std::slice::from_ref(byte)).is_err() {
                    break;
                }
                thread::sleep(Duration::from_micros(200));
            }
            let _ = s.flush();
            read_outcome(&stream)
        }
        ClientPlan::Disconnect => {
            let frame = format!("{}\n", negotiate_request(index).to_json());
            let mut s = &stream;
            let _ = s.write_all(frame.as_bytes());
            drop(stream);
            ClientResult {
                label: "abandoned".into(),
                latency: None,
                hung: false,
                level: None,
            }
        }
    };
    if result.latency.is_none() && !result.hung && result.label != "abandoned" {
        result.latency = Some(started.elapsed());
    }
    result
}

/// Sends each request and reads its reply; the session's label is the
/// last reply's outcome (the negotiation, for churn clients).
fn exchange_all(stream: &TcpStream, requests: &[Request]) -> ClientResult {
    let mut label = "closed".to_string();
    let mut level = None;
    for request in requests {
        let frame = format!("{}\n", request.to_json());
        let mut s = stream;
        if s.write_all(frame.as_bytes()).is_err() || s.flush().is_err() {
            return ClientResult {
                label: "closed".into(),
                latency: None,
                hung: false,
                level: None,
            };
        }
        let outcome = read_outcome(stream);
        if outcome.hung || outcome.label == "closed" || outcome.label == "garbled" {
            return outcome;
        }
        label = outcome.label;
        level = outcome.level;
        // A shed/timed-out/error reply ends the session server-side.
        if matches!(label.as_str(), "shed" | "timed-out" | "error") {
            break;
        }
    }
    ClientResult {
        label,
        latency: None,
        hung: false,
        level,
    }
}

/// Reads one reply frame; classifies timeout-without-data as **hung**
/// (the dependability failure this whole PR exists to prevent).
fn read_outcome(stream: &TcpStream) -> ClientResult {
    let mut buffer = Vec::new();
    let mut byte = [0u8; 1];
    let mut s = stream;
    loop {
        match s.read(&mut byte) {
            Ok(0) => {
                return ClientResult {
                    label: "closed".into(),
                    latency: None,
                    hung: false,
                    level: None,
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    let text = String::from_utf8_lossy(&buffer);
                    let (label, level) = Reply::parse(&text)
                        .map(|r| {
                            let level = match &r {
                                Reply::Bound { level, .. } | Reply::Degraded { level, .. } => {
                                    Some(*level)
                                }
                                _ => None,
                            };
                            (r.outcome_label().to_string(), level)
                        })
                        .unwrap_or_else(|_| ("garbled".to_string(), None));
                    return ClientResult {
                        label,
                        latency: None,
                        hung: false,
                        level,
                    };
                }
                buffer.push(byte[0]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return ClientResult {
                    label: "hung".into(),
                    latency: None,
                    hung: true,
                    level: None,
                }
            }
            Err(_) => {
                return ClientResult {
                    label: "closed".into(),
                    latency: None,
                    hung: false,
                    level: None,
                }
            }
        }
    }
}

/// Contended-workload shape: the same `clients_per_wave` stable
/// identities race for `providers × slots_per_provider` capacity
/// slots, wave after wave, so the server's batching window and the
/// broker's fairness ledger are exercised end to end.
#[derive(Debug, Clone, Copy)]
pub struct ContentionConfig {
    /// Contended waves to run.
    pub waves: usize,
    /// Clients racing in each wave (stable identities across waves).
    pub clients_per_wave: usize,
    /// Capacity-limited providers to seed.
    pub providers: usize,
    /// Concurrent-binding slots per provider.
    pub slots_per_provider: u32,
    /// The allocation objective the server runs.
    pub fairness: Fairness,
    /// Fraction of wave clients that vanish after sending (testing
    /// that a leader publishing to a dead peer never wedges a batch).
    pub transport_fault_rate: f64,
    /// Seed for the deterministic fault plan.
    pub seed: u64,
}

impl Default for ContentionConfig {
    fn default() -> ContentionConfig {
        ContentionConfig {
            waves: 6,
            clients_per_wave: 6,
            providers: 2,
            slots_per_provider: 1,
            fairness: Fairness::Leximin,
            transport_fault_rate: 0.0,
            seed: 7,
        }
    }
}

/// What a contended run observed, aggregated across waves.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    /// Waves run.
    pub waves: usize,
    /// Clients per wave.
    pub clients_per_wave: usize,
    /// The objective the server ran.
    pub fairness: Fairness,
    /// Tally of typed outcomes across every wave session.
    pub outcomes: BTreeMap<String, usize>,
    /// Wave sessions that waited out the deadline envelope unanswered.
    /// **Must be zero.**
    pub hung: usize,
    /// Well-behaved clients that were *never* bound across all waves —
    /// the starvation count the fairness objectives exist to zero.
    pub starved_clients: usize,
    /// The longest run of consecutive denials any well-behaved client
    /// suffered.
    pub max_denial_streak: u64,
    /// Grants across all waves.
    pub bound_total: usize,
    /// Sum of agreed levels across grants (the utility side of the
    /// fairness–utility frontier).
    pub sum_level: f64,
    /// Jain's fairness index over per-client grant counts.
    pub jain_bound: f64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl ContentionReport {
    /// Renders the report as pretty JSON (the `BENCH_9.json` rows).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("report values always serialize")
    }

    /// The report as a JSON value, for embedding in larger documents.
    pub fn to_value(&self) -> Value {
        let outcomes = Value::Obj(
            self.outcomes
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v as u64)))
                .collect(),
        );
        Value::Obj(vec![
            ("fairness".into(), Value::Str(self.fairness.to_string())),
            ("waves".into(), Value::UInt(self.waves as u64)),
            (
                "clients_per_wave".into(),
                Value::UInt(self.clients_per_wave as u64),
            ),
            ("outcomes".into(), outcomes),
            ("hung".into(), Value::UInt(self.hung as u64)),
            (
                "starved_clients".into(),
                Value::UInt(self.starved_clients as u64),
            ),
            (
                "max_denial_streak".into(),
                Value::UInt(self.max_denial_streak),
            ),
            ("bound_total".into(), Value::UInt(self.bound_total as u64)),
            ("sum_level".into(), Value::Float(self.sum_level)),
            ("jain_bound".into(), Value::Float(self.jain_bound)),
            (
                "elapsed_ms".into(),
                Value::Float(self.elapsed.as_secs_f64() * 1e3),
            ),
        ])
    }
}

/// Seeds `providers` capacity-limited services with distinct flat
/// quality tiers (0.9, 0.75, 0.6, …) so contended allocations have a
/// real best-slot/worst-slot spread.
pub fn seed_contended_providers(providers: usize, slots: u32) -> Registry {
    let mut registry = Registry::new();
    for p in 0..providers {
        let service = format!("slot-{p:02}");
        let intercept = (0.9 - 0.15 * p as f64).max(0.3);
        registry.publish(
            ServiceDescription::new(
                service.as_str(),
                format!("provider-{p:02}"),
                "compute",
                QosDocument::new(&service).with_offer(QosOffer {
                    attribute: Attribute::Reliability,
                    variable: "x".into(),
                    shape: OfferShape::Linear {
                        slope: 0.0,
                        intercept,
                    },
                }),
            )
            .with_capacity(slots),
        );
    }
    registry
}

/// Starts a fairness-enabled server sized for the contended workload
/// (one worker per wave client, window closing at the wave size), runs
/// the waves, then drains.
///
/// # Errors
///
/// Propagates server start-up failures (bind, thread spawn).
pub fn run_contended_self_hosted<S: WireSemiring>(
    semiring: S,
    config: &ContentionConfig,
    drain: Duration,
) -> std::io::Result<(ContentionReport, DrainReport)> {
    let server = ServerConfig {
        workers: config.clients_per_wave.max(2),
        fairness: Some(config.fairness),
        batch_window: Duration::from_millis(60),
        max_batch: config.clients_per_wave.max(1),
        ..ServerConfig::default()
    };
    let registry = seed_contended_providers(config.providers, config.slots_per_provider);
    let handle = NegotiationServer::start(semiring, registry, server, Telemetry::disabled())?;
    let report = run_contended(
        handle.local_addr(),
        config,
        handle.config().session_deadline,
    );
    let drain = handle.shutdown(drain);
    Ok((report, drain))
}

/// Runs the contended waves against an already-listening,
/// fairness-enabled server.
pub fn run_contended(
    addr: SocketAddr,
    config: &ContentionConfig,
    session_deadline: Duration,
) -> ContentionReport {
    let started = Instant::now();
    let budget = session_deadline + session_deadline / 2 + Duration::from_secs(2);
    let clients = config.clients_per_wave;

    #[derive(Default, Clone)]
    struct Tally {
        bound: usize,
        level_sum: f64,
        streak: u64,
        max_streak: u64,
        well_behaved_waves: usize,
    }
    let mut tallies: Vec<Tally> = vec![Tally::default(); clients];
    let mut outcomes: BTreeMap<String, usize> = BTreeMap::new();
    let mut hung = 0usize;

    for wave in 0..config.waves {
        let results: Vec<(String, bool, Option<f64>, bool)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    scope.spawn(move || {
                        // Deterministic fault plan per (wave, client).
                        let mut rng = StdRng::seed_from_u64(
                            config.seed
                                ^ (wave as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                                ^ (i as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
                        );
                        let faulty = rng.random::<f64>() < config.transport_fault_rate;
                        run_wave_client(addr, i, budget, faulty)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or(("client-panicked".to_string(), false, None, false))
                })
                .collect()
        });
        for (i, (label, was_hung, level, faulty)) in results.into_iter().enumerate() {
            *outcomes.entry(label.clone()).or_insert(0) += 1;
            if was_hung {
                hung += 1;
            }
            if faulty {
                continue; // deliberately hostile: not a fairness datum
            }
            let tally = &mut tallies[i];
            tally.well_behaved_waves += 1;
            if let Some(level) = level {
                tally.bound += 1;
                tally.level_sum += level;
                tally.streak = 0;
            } else {
                tally.streak += 1;
                tally.max_streak = tally.max_streak.max(tally.streak);
            }
        }
    }

    let participants: Vec<&Tally> = tallies
        .iter()
        .filter(|t| t.well_behaved_waves > 0)
        .collect();
    let starved_clients = participants.iter().filter(|t| t.bound == 0).count();
    let max_denial_streak = participants.iter().map(|t| t.max_streak).max().unwrap_or(0);
    let bound_total: usize = participants.iter().map(|t| t.bound).sum();
    let sum_level: f64 = participants.iter().map(|t| t.level_sum).sum();
    let counts: Vec<f64> = participants.iter().map(|t| t.bound as f64).collect();
    let sum: f64 = counts.iter().sum();
    let sumsq: f64 = counts.iter().map(|c| c * c).sum();
    let jain_bound = if sumsq > 0.0 {
        (sum * sum) / (counts.len() as f64 * sumsq)
    } else {
        1.0
    };

    ContentionReport {
        waves: config.waves,
        clients_per_wave: clients,
        fairness: config.fairness,
        outcomes,
        hung,
        starved_clients,
        max_denial_streak,
        bound_total,
        sum_level,
        jain_bound,
        elapsed: started.elapsed(),
    }
}

/// One wave client: connect, stagger into a deterministic arrival
/// order, negotiate under a stable identity, read the verdict.
/// Returns `(label, hung, bound level, faulty)`.
fn run_wave_client(
    addr: SocketAddr,
    index: usize,
    budget: Duration,
    faulty: bool,
) -> (String, bool, Option<f64>, bool) {
    // Stagger sends so arrival order inside the window is the client
    // index — giving FCFS a deterministic victim to starve.
    thread::sleep(Duration::from_millis(3 * index as u64));
    let Ok(stream) = TcpStream::connect(addr) else {
        return ("connect-failed".into(), false, None, faulty);
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(budget));
    let request = Request::Negotiate(NegotiateRequest {
        capability: "compute".into(),
        variable: "x".into(),
        domain: [0, 8],
        policy: OfferShape::Linear {
            slope: 0.0,
            intercept: 1.0,
        },
        accept: [0.2, 1.0],
        client: Some(format!("client-{index:02}")),
    });
    let frame = format!("{}\n", request.to_json());
    let mut s = &stream;
    if s.write_all(frame.as_bytes()).is_err() || s.flush().is_err() {
        return ("closed".into(), false, None, faulty);
    }
    if faulty {
        // Vanish without reading: the leader must still publish the
        // batch and the worker must shrug off the dead socket.
        drop(stream);
        return ("abandoned".into(), false, None, faulty);
    }
    let outcome = read_outcome(&stream);
    (outcome.label, outcome.hung, outcome.level, faulty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_survives_a_poisoned_sample() {
        // Regression: the sort used `partial_cmp(..).expect("latencies
        // are finite")`, so a single NaN panicked the whole report.
        let (p50, _p99, _max) = latency_summary(vec![3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(p50, 2.5, "finite values still sort and interpolate");
    }

    #[test]
    fn percentile_interpolates_between_order_statistics() {
        // Regression: nearest-rank rounding made p99 equal the max for
        // any sample smaller than 100.
        let sorted: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(percentile(&sorted, 0.50), 5.5);
        // p99 over 10 samples: position 8.91 → 9 + 0.91 · (10 − 9).
        let p99 = percentile(&sorted, 0.99);
        assert!((p99 - 9.91).abs() < 1e-9, "p99 = {p99}, want 9.91");
        assert!(p99 < 10.0, "p99 must no longer collapse to the max");
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[4.2], 0.99), 4.2);
        assert_eq!(percentile(&[1.0, 2.0], 0.5), 1.5);
    }
}
