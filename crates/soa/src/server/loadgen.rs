//! Deterministic load generator for the negotiation daemon.
//!
//! Drives N client sessions (over a bounded thread pool) against a
//! running server, mixing well-behaved negotiators with registry-churn
//! clients and — at a configurable rate — deliberately hostile ones:
//! silent stalls, truncated frames, slow-loris writers and abrupt
//! disconnects. Client behaviour is a pure function of `(seed, client
//! index)`, so a failing run replays exactly.
//!
//! The report tallies every session by its *typed* outcome; the
//! headline dependability claim is `hung == 0` — no client ever waits
//! past the server's deadline envelope without an answer or a close.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use softsoa_dependability::Attribute;
use softsoa_telemetry::Telemetry;

use crate::qos::{OfferShape, QosOffer};
use crate::registry::{Registry, ServiceDescription};
use crate::server::protocol::{NegotiateRequest, PublishRequest, Reply, Request, WireSemiring};
use crate::server::{DrainReport, NegotiationServer, ServerConfig, ServerHandle};
use crate::QosDocument;

/// Load shape: how many sessions, how parallel, how hostile.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Total client sessions to run.
    pub clients: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Fraction of clients that misbehave at the transport level
    /// (stall, truncate, slow-loris, disconnect).
    pub transport_fault_rate: f64,
    /// Fraction of well-behaved clients that churn the registry
    /// (publish → negotiate → deregister) instead of just negotiating.
    pub churn_rate: f64,
    /// Seed for the deterministic per-client behaviour plan.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 200,
            concurrency: 16,
            transport_fault_rate: 0.0,
            churn_rate: 0.2,
            seed: 7,
        }
    }
}

/// What one load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Sessions attempted.
    pub sessions: usize,
    /// Tally of typed outcomes (`bound`, `degraded`, `shed`,
    /// `timed-out`, `error`, plus client-side `closed` / `abandoned` /
    /// `garbled` / `connect-failed`).
    pub outcomes: BTreeMap<String, usize>,
    /// Sessions where the client waited past the full deadline
    /// envelope with neither a reply nor a close. **Must be zero.**
    pub hung: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Completed sessions per second.
    pub sessions_per_sec: f64,
    /// Median session latency (reply-awaiting sessions), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile session latency, milliseconds.
    pub p99_ms: f64,
    /// Worst session latency, milliseconds.
    pub max_ms: f64,
    /// Binding-cache entries after the run (flat-memory witness).
    pub cache_entries: usize,
    /// The configured binding-cache bound.
    pub cache_capacity: usize,
    /// Registry epoch after the run (how much churn was published).
    pub final_epoch: u64,
}

impl LoadReport {
    /// Renders the report as pretty JSON (the `BENCH_8.json` rows).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("report values always serialize")
    }

    /// The report as a JSON value, for embedding in larger documents.
    pub fn to_value(&self) -> Value {
        let outcomes = Value::Obj(
            self.outcomes
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v as u64)))
                .collect(),
        );
        Value::Obj(vec![
            ("sessions".into(), Value::UInt(self.sessions as u64)),
            ("outcomes".into(), outcomes),
            ("hung".into(), Value::UInt(self.hung as u64)),
            (
                "elapsed_ms".into(),
                Value::Float(self.elapsed.as_secs_f64() * 1e3),
            ),
            (
                "sessions_per_sec".into(),
                Value::Float(self.sessions_per_sec),
            ),
            ("p50_ms".into(), Value::Float(self.p50_ms)),
            ("p99_ms".into(), Value::Float(self.p99_ms)),
            ("max_ms".into(), Value::Float(self.max_ms)),
            (
                "cache_entries".into(),
                Value::UInt(self.cache_entries as u64),
            ),
            (
                "cache_capacity".into(),
                Value::UInt(self.cache_capacity as u64),
            ),
            ("final_epoch".into(), Value::UInt(self.final_epoch)),
        ])
    }
}

/// A self-hosted run: the load report plus what the drain saw.
#[derive(Debug, Clone)]
pub struct SelfHostedReport {
    /// The client-side load report.
    pub load: LoadReport,
    /// The server-side drain report.
    pub drain: DrainReport,
}

impl SelfHostedReport {
    /// Renders both sides as one pretty-JSON document.
    pub fn to_json(&self) -> String {
        let drain = Value::Obj(vec![
            ("drained".into(), Value::UInt(self.drain.drained as u64)),
            ("shed".into(), Value::UInt(self.drain.shed as u64)),
            ("aborted".into(), Value::UInt(self.drain.aborted as u64)),
            (
                "elapsed_ms".into(),
                Value::Float(self.drain.elapsed.as_secs_f64() * 1e3),
            ),
            (
                "within_deadline".into(),
                Value::Bool(self.drain.within_deadline),
            ),
        ]);
        let value = Value::Obj(vec![
            ("load".into(), self.load.to_value()),
            ("drain".into(), drain),
        ]);
        serde_json::to_string_pretty(&value).expect("report values always serialize")
    }
}

/// Seeds a registry with `providers` services advertising the
/// `compute` capability over the `x` variable, with varied linear
/// offers so negotiations bind different levels.
pub fn seed_providers(providers: usize) -> Registry {
    let mut registry = Registry::new();
    for p in 0..providers {
        let service = format!("svc-{p:03}");
        let slope = 0.01 + (p % 7) as f64 * 0.01;
        let intercept = 0.40 + (p % 5) as f64 * 0.05;
        registry.publish(ServiceDescription::new(
            service.as_str(),
            format!("provider-{}", p % 5),
            "compute",
            QosDocument::new(&service).with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "x".into(),
                shape: OfferShape::Linear { slope, intercept },
            }),
        ));
    }
    registry
}

/// Starts a server on an ephemeral local port, runs the load against
/// it, then drains. The returned report carries both sides.
///
/// # Errors
///
/// Propagates server start-up failures (bind, thread spawn).
pub fn run_self_hosted<S: WireSemiring>(
    semiring: S,
    registry: Registry,
    server: ServerConfig,
    load: &LoadConfig,
    drain: Duration,
) -> std::io::Result<SelfHostedReport> {
    let handle = NegotiationServer::start(semiring, registry, server, Telemetry::disabled())?;
    let mut report = run(handle.local_addr(), load, handle.config().session_deadline);
    annotate(&mut report, &handle);
    let drain = handle.shutdown(drain);
    Ok(SelfHostedReport {
        load: report,
        drain,
    })
}

/// Fills the server-side fields of a report from a live handle.
pub fn annotate<S: WireSemiring>(report: &mut LoadReport, handle: &ServerHandle<S>) {
    report.cache_entries = handle.broker().cache.len();
    report.cache_capacity = handle.config().broker.binding_cache_capacity;
    report.final_epoch = handle.broker().registry().epoch();
}

/// Runs the load against an already-listening address.
/// `session_deadline` must match the server's (it sizes the client's
/// hang detector: a client only counts as hung after waiting out the
/// server's whole deadline envelope plus slack).
pub fn run(addr: SocketAddr, load: &LoadConfig, session_deadline: Duration) -> LoadReport {
    let started = Instant::now();
    let budget = session_deadline + session_deadline / 2 + Duration::from_secs(2);
    let concurrency = load.concurrency.max(1);
    let results: Vec<ClientResult> = thread::scope(|scope| {
        let mut lanes = Vec::with_capacity(concurrency);
        for lane in 0..concurrency {
            let load = *load;
            lanes.push(scope.spawn(move || {
                let mut out = Vec::new();
                let mut index = lane;
                while index < load.clients {
                    out.push(run_client(addr, index as u64, &load, budget));
                    index += concurrency;
                }
                out
            }));
        }
        lanes
            .into_iter()
            .flat_map(|lane| lane.join().unwrap_or_default())
            .collect()
    });
    let elapsed = started.elapsed();

    let mut outcomes = BTreeMap::new();
    let mut hung = 0;
    let mut latencies: Vec<f64> = Vec::new();
    for result in &results {
        *outcomes.entry(result.label.clone()).or_insert(0) += 1;
        if result.hung {
            hung += 1;
        }
        if let Some(latency) = result.latency {
            latencies.push(latency.as_secs_f64() * 1e3);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    LoadReport {
        sessions: results.len(),
        outcomes,
        hung,
        sessions_per_sec: results.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        cache_entries: 0,
        cache_capacity: 0,
        final_epoch: 0,
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The deterministic behaviour plan for one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientPlan {
    /// Connect, negotiate, read the reply, close.
    Negotiate,
    /// Publish a service, negotiate, deregister it (registry churn).
    Churn,
    /// Send half a frame, then go silent until the server's session
    /// deadline answers with a typed `timed-out`.
    SilentStall,
    /// Send a frame without its terminator and close the write side —
    /// the server must answer `truncated-frame`.
    TruncatedFrame,
    /// Write the frame one byte at a time — slow, but inside the
    /// deadline; the server must still answer normally.
    SlowLoris,
    /// Send a request and vanish without reading the reply.
    Disconnect,
}

fn plan_for(load: &LoadConfig, index: u64) -> ClientPlan {
    let mut rng = StdRng::seed_from_u64(load.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if rng.random::<f64>() < load.transport_fault_rate {
        match rng.random_range(0..4u32) {
            0 => ClientPlan::SilentStall,
            1 => ClientPlan::TruncatedFrame,
            2 => ClientPlan::SlowLoris,
            _ => ClientPlan::Disconnect,
        }
    } else if rng.random::<f64>() < load.churn_rate {
        ClientPlan::Churn
    } else {
        ClientPlan::Negotiate
    }
}

fn negotiate_request(index: u64) -> Request {
    // Vary the domain upper bound so the broker sees several binding
    // shapes (exercising the bounded per-shape solver table).
    Request::Negotiate(NegotiateRequest {
        capability: "compute".into(),
        variable: "x".into(),
        domain: [0, 4 + (index % 5) as i64],
        policy: OfferShape::Linear {
            slope: -0.01,
            intercept: 0.9,
        },
        accept: [0.2, 1.0],
    })
}

#[derive(Debug, Default)]
struct ClientResult {
    label: String,
    latency: Option<Duration>,
    hung: bool,
}

fn run_client(addr: SocketAddr, index: u64, load: &LoadConfig, budget: Duration) -> ClientResult {
    let started = Instant::now();
    let Ok(stream) = TcpStream::connect(addr) else {
        return ClientResult {
            label: "connect-failed".into(),
            latency: None,
            hung: false,
        };
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(budget));

    let mut result = match plan_for(load, index) {
        ClientPlan::Negotiate => exchange_all(&stream, &[negotiate_request(index)]),
        ClientPlan::Churn => {
            let service = format!("churn-{index}");
            exchange_all(
                &stream,
                &[
                    Request::Publish(PublishRequest {
                        service: service.clone(),
                        provider: "loadgen".into(),
                        capability: "compute".into(),
                        offer: QosOffer {
                            attribute: Attribute::Reliability,
                            variable: "x".into(),
                            shape: OfferShape::Linear {
                                slope: 0.01,
                                intercept: 0.6,
                            },
                        },
                    }),
                    negotiate_request(index),
                    Request::Deregister { service },
                ],
            )
        }
        ClientPlan::SilentStall => {
            let mut s = &stream;
            let _ = s.write_all(b"{\"op\":\"negot"); // half a frame, then silence
            read_outcome(&stream)
        }
        ClientPlan::TruncatedFrame => {
            let mut s = &stream;
            let _ = s.write_all(b"{\"op\":\"ping\"}"); // no terminator
            let _ = stream.shutdown(Shutdown::Write);
            read_outcome(&stream)
        }
        ClientPlan::SlowLoris => {
            let frame = format!("{}\n", negotiate_request(index).to_json());
            let mut s = &stream;
            for byte in frame.as_bytes() {
                if s.write_all(std::slice::from_ref(byte)).is_err() {
                    break;
                }
                thread::sleep(Duration::from_micros(200));
            }
            let _ = s.flush();
            read_outcome(&stream)
        }
        ClientPlan::Disconnect => {
            let frame = format!("{}\n", negotiate_request(index).to_json());
            let mut s = &stream;
            let _ = s.write_all(frame.as_bytes());
            drop(stream);
            ClientResult {
                label: "abandoned".into(),
                latency: None,
                hung: false,
            }
        }
    };
    if result.latency.is_none() && !result.hung && result.label != "abandoned" {
        result.latency = Some(started.elapsed());
    }
    result
}

/// Sends each request and reads its reply; the session's label is the
/// last reply's outcome (the negotiation, for churn clients).
fn exchange_all(stream: &TcpStream, requests: &[Request]) -> ClientResult {
    let mut label = "closed".to_string();
    for request in requests {
        let frame = format!("{}\n", request.to_json());
        let mut s = stream;
        if s.write_all(frame.as_bytes()).is_err() || s.flush().is_err() {
            return ClientResult {
                label: "closed".into(),
                latency: None,
                hung: false,
            };
        }
        let outcome = read_outcome(stream);
        if outcome.hung || outcome.label == "closed" || outcome.label == "garbled" {
            return outcome;
        }
        label = outcome.label;
        // A shed/timed-out/error reply ends the session server-side.
        if matches!(label.as_str(), "shed" | "timed-out" | "error") {
            break;
        }
    }
    ClientResult {
        label,
        latency: None,
        hung: false,
    }
}

/// Reads one reply frame; classifies timeout-without-data as **hung**
/// (the dependability failure this whole PR exists to prevent).
fn read_outcome(stream: &TcpStream) -> ClientResult {
    let mut buffer = Vec::new();
    let mut byte = [0u8; 1];
    let mut s = stream;
    loop {
        match s.read(&mut byte) {
            Ok(0) => {
                return ClientResult {
                    label: "closed".into(),
                    latency: None,
                    hung: false,
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    let text = String::from_utf8_lossy(&buffer);
                    let label = Reply::parse(&text)
                        .map(|r| r.outcome_label().to_string())
                        .unwrap_or_else(|_| "garbled".to_string());
                    return ClientResult {
                        label,
                        latency: None,
                        hung: false,
                    };
                }
                buffer.push(byte[0]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return ClientResult {
                    label: "hung".into(),
                    latency: None,
                    hung: true,
                }
            }
            Err(_) => {
                return ClientResult {
                    label: "closed".into(),
                    latency: None,
                    hung: false,
                }
            }
        }
    }
}
