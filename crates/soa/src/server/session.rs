//! The per-connection session state machine.
//!
//! A session is a loop of `read frame → dispatch → write reply`, every
//! arm of which is bounded: socket reads carry a timeout so the loop
//! re-checks the session deadline and the drain state a few times a
//! second; negotiations run with a step-bounded virtual clock (the
//! PR 3 recovery machinery's `deadline`), so a fault-heavy retry
//! schedule cannot outlive the session; writes carry a socket timeout
//! so a peer that stops reading cannot wedge a worker. Whatever
//! terminates the session, the peer gets a typed reply first when the
//! wire still allows one.

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use softsoa_core::Domain;
use softsoa_nmsccp::{Interval, Outcome};
use softsoa_telemetry::Telemetry;

use crate::broker::{Broker, NegotiationError, NegotiationRequest};
use crate::chaos::ChaosConfig;
use crate::contention::{ContendedRequest, ContentionOutcome, Fairness};
use crate::registry::ServiceDescription;
use crate::server::admission::Pending;
use crate::server::batch::{BatchEntry, Batcher, Turn};
use crate::server::protocol::{
    ErrorCode, NegotiateRequest, Phase, PublishRequest, Reply, Request, WireSemiring,
};
use crate::server::shutdown::Control;
use crate::server::transport::{ChaosStream, FrameError, FrameReader, FrameWriter, TransportChaos};
use crate::server::ServerConfig;
use crate::ServiceId;

/// Context shared by every session of one server.
#[derive(Debug)]
pub(crate) struct SessionContext {
    pub config: ServerConfig,
    pub control: Arc<Control>,
    pub telemetry: Telemetry,
    /// The contended-batching window (used when `config.fairness` is
    /// set).
    pub batcher: Arc<Batcher>,
}

/// How a session ended (for drain accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SessionEnd {
    /// The peer closed cleanly after its requests.
    Completed,
    /// The session deadline fired.
    TimedOut,
    /// The drain deadline (or a stop) aborted it.
    Aborted,
    /// The transport failed mid-session.
    TransportError,
}

/// Per-session outcome summary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionStats {
    /// Requests answered.
    pub requests: usize,
    /// How the session ended.
    pub end: SessionEnd,
}

/// Runs one session to completion. Never panics on transport failures;
/// every exit path is a typed [`SessionEnd`].
pub(crate) fn run_session<S: WireSemiring>(
    broker: &mut Broker<S>,
    ctx: &SessionContext,
    pending: Pending,
) -> SessionStats {
    let t = &ctx.telemetry;
    let config = &ctx.config;
    let mut stats = SessionStats {
        requests: 0,
        end: SessionEnd::Completed,
    };

    // Bounded socket operations: the read timeout is the loop's tick
    // (deadline and drain checks happen at least this often), the
    // write timeout bounds a peer that stops reading.
    if pending
        .stream
        .set_read_timeout(Some(config.read_timeout))
        .is_err()
        || pending
            .stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        stats.end = SessionEnd::TransportError;
        return stats;
    }
    let Ok(write_half) = pending.stream.try_clone() else {
        stats.end = SessionEnd::TransportError;
        return stats;
    };

    // Server-side transport chaos (off by default): wraps both halves
    // with the connection's deterministic fault.
    let conn_id = pending.conn_id;
    let calm = TransportChaos::default();
    let chaos = config.transport_chaos.as_ref().unwrap_or(&calm);
    let mut reader = FrameReader::new(
        ChaosStream::new(pending.stream, chaos, pending.conn_id),
        config.max_frame_bytes,
    );
    let mut writer = FrameWriter::new(ChaosStream::new(write_half, chaos, pending.conn_id));

    let deadline = pending.accepted_at + config.session_deadline;

    loop {
        if ctx.control.should_abort() {
            reply(t, &mut writer, &mut stats, Reply::timed_out(Phase::Session));
            end(&mut stats, SessionEnd::Aborted);
            t.incr("server.sessions.aborted");
            break;
        }
        if Instant::now() >= deadline {
            reply(t, &mut writer, &mut stats, Reply::timed_out(Phase::Session));
            end(&mut stats, SessionEnd::TimedOut);
            t.incr("server.sessions.timed_out");
            break;
        }

        let read_start = Instant::now();
        let frame = match reader.read_frame() {
            Ok(frame) => {
                t.timing("server.phase.read", read_start.elapsed());
                frame
            }
            Err(e) if e.is_timeout() => {
                if reader.mid_frame() && Instant::now() >= deadline {
                    // A stalled peer mid-frame at the deadline: typed
                    // read-phase timeout, not a hang.
                    reply(t, &mut writer, &mut stats, Reply::timed_out(Phase::Read));
                    end(&mut stats, SessionEnd::TimedOut);
                    t.incr("server.sessions.timed_out");
                    break;
                }
                continue; // re-check deadline and drain state
            }
            Err(FrameError::Closed) => break,
            Err(FrameError::Truncated { buffered }) => {
                reply(
                    t,
                    &mut writer,
                    &mut stats,
                    Reply::Error {
                        code: ErrorCode::TruncatedFrame,
                        detail: format!("stream closed mid-frame ({buffered} bytes buffered)"),
                    },
                );
                break;
            }
            Err(FrameError::Oversized { limit }) => {
                reply(
                    t,
                    &mut writer,
                    &mut stats,
                    Reply::Error {
                        code: ErrorCode::OversizedFrame,
                        detail: format!("frame exceeds the {limit}-byte limit"),
                    },
                );
                break;
            }
            Err(FrameError::Io(_)) => {
                end(&mut stats, SessionEnd::TransportError);
                t.incr("server.sessions.transport_errors");
                break;
            }
        };

        let answer = match Request::parse(&frame) {
            Err(detail) => Reply::Error {
                code: ErrorCode::BadRequest,
                detail,
            },
            Ok(request) => dispatch(broker, ctx, request, deadline, conn_id),
        };
        stats.requests += 1;
        if !reply(t, &mut writer, &mut stats, answer) {
            break;
        }
    }

    if stats.end == SessionEnd::Completed {
        t.incr("server.sessions.completed");
    }
    stats
}

/// Writes a reply frame; returns whether the wire survived. Failures
/// downgrade the session end to `TransportError` (the peer is gone —
/// nothing further to say).
fn reply<W: Write>(
    t: &Telemetry,
    writer: &mut FrameWriter<W>,
    stats: &mut SessionStats,
    reply: Reply,
) -> bool {
    let start = Instant::now();
    let ok = writer.write_frame(&reply.to_json()).is_ok();
    t.timing("server.phase.write", start.elapsed());
    t.count_labeled("server.replies", reply.outcome_label(), 1);
    if !ok {
        end(stats, SessionEnd::TransportError);
        t.incr("server.sessions.transport_errors");
    }
    ok
}

/// Records the first non-`Completed` end (later downgrades keep it).
fn end(stats: &mut SessionStats, to: SessionEnd) {
    if stats.end == SessionEnd::Completed {
        stats.end = to;
    }
}

impl Reply {
    fn timed_out(phase: Phase) -> Reply {
        Reply::TimedOut {
            phase,
            partial_level: None,
        }
    }
}

/// Handles one parsed request against the worker's broker.
fn dispatch<S: WireSemiring>(
    broker: &mut Broker<S>,
    ctx: &SessionContext,
    request: Request,
    deadline: Instant,
    conn_id: u64,
) -> Reply {
    match request {
        Request::Ping => Reply::Pong {
            epoch: broker.registry().epoch(),
        },
        Request::Publish(publish) => handle_publish(broker, publish),
        Request::Deregister { service } => {
            let mut writer = broker.registry_mut();
            let existed = writer.deregister(&ServiceId::new(&service)).is_some();
            drop(writer);
            Reply::Deregistered {
                epoch: broker.registry().epoch(),
                existed,
            }
        }
        Request::Negotiate(negotiate) => {
            handle_negotiate(broker, ctx, negotiate, deadline, conn_id)
        }
    }
}

fn handle_publish<S: WireSemiring>(broker: &mut Broker<S>, publish: PublishRequest) -> Reply {
    let mut description = ServiceDescription::new(
        publish.service.as_str(),
        publish.provider.as_str(),
        publish.capability.as_str(),
        crate::QosDocument::new(&publish.service).with_offer(publish.offer),
    );
    description.capacity = publish.capacity;
    let mut writer = broker.registry_mut();
    writer.publish(description);
    drop(writer);
    Reply::Published {
        epoch: broker.registry().epoch(),
    }
}

/// Validates a wire-level negotiate request and lowers it into the
/// broker's typed form, or produces the typed error reply.
fn build_request<S: WireSemiring>(
    negotiate: &NegotiateRequest,
) -> Result<NegotiationRequest<S>, Reply> {
    let [min, max] = negotiate.domain;
    if min > max {
        return Err(Reply::Error {
            code: ErrorCode::BadRequest,
            detail: format!("empty domain [{min}, {max}]"),
        });
    }
    if (max - min) as u128 >= 4096 {
        return Err(Reply::Error {
            code: ErrorCode::BadRequest,
            detail: "domain wider than 4096 values".to_string(),
        });
    }
    let lo = match S::parse_level(negotiate.accept[0]) {
        Ok(level) => level,
        Err(detail) => {
            return Err(Reply::Error {
                code: ErrorCode::InvalidAcceptance,
                detail,
            })
        }
    };
    let hi = match S::parse_level(negotiate.accept[1]) {
        Ok(level) => level,
        Err(detail) => {
            return Err(Reply::Error {
                code: ErrorCode::InvalidAcceptance,
                detail,
            })
        }
    };
    Ok(NegotiationRequest {
        capability: negotiate.capability.clone(),
        variable: negotiate.variable.as_str().into(),
        domain: Domain::ints(min..=max),
        constraint: S::shape_constraint(&negotiate.variable, negotiate.policy.clone()),
        acceptance: Interval::levels(lo, hi),
    })
}

fn handle_negotiate<S: WireSemiring>(
    broker: &mut Broker<S>,
    ctx: &SessionContext,
    negotiate: NegotiateRequest,
    deadline: Instant,
    conn_id: u64,
) -> Reply {
    let t = &ctx.telemetry;
    let request = match build_request::<S>(&negotiate) {
        Ok(request) => request,
        Err(reply) => return reply,
    };
    // The negotiation must leave time to write the reply: a session
    // already at its deadline times out here rather than starting an
    // engine run it cannot answer.
    if Instant::now() >= deadline {
        return Reply::TimedOut {
            phase: Phase::Negotiate,
            partial_level: None,
        };
    }
    // Contended mode: park in the batching window and let one leader
    // allocate the whole batch jointly. Store chaos stays on the
    // per-session path — contended batches run the plain engine.
    if let Some(fairness) = ctx.config.fairness {
        return negotiate_batched(broker, ctx, fairness, negotiate, deadline, conn_id);
    }
    // Negotiations adopting the persistent incremental binding path
    // (binding solvers are shared across sessions and workers, so
    // reuse compounds across connections; the per-solve detail lands
    // on the scoped server/solver.incremental.* family).
    if ctx.config.incremental {
        t.incr("server.incremental.negotiations");
    }

    let epoch = broker.registry().epoch();
    let start = Instant::now();
    let answer = match ctx.config.store_chaos {
        None => match broker.negotiate(&request, S::translate) {
            Ok(sla) => Reply::Bound {
                service: sla.service.as_str().to_string(),
                provider: sla.provider.as_str().to_string(),
                level: S::render_level(&sla.agreed_level),
                binding: binding_value::<S>(&negotiate.variable, &sla.binding),
                epoch,
            },
            Err(e) => negotiation_error(&e),
        },
        Some(store_chaos) => {
            let chaos = ChaosConfig::<S> {
                seed: store_chaos.seed,
                fault_rate: store_chaos.fault_rate,
                session_deadline: Some(ctx.config.negotiation_deadline_steps),
                ..ChaosConfig::default()
            };
            match broker.negotiate_resilient(&request, &[], &chaos, S::translate) {
                Ok(report) => {
                    let recovered = report.retries
                        + report.rollbacks
                        + report.relaxations_applied
                        + report.faults_injected;
                    match report.sla {
                        Some(sla) if recovered == 0 => Reply::Bound {
                            service: sla.service.as_str().to_string(),
                            provider: sla.provider.as_str().to_string(),
                            level: S::render_level(&sla.agreed_level),
                            binding: binding_value::<S>(&negotiate.variable, &sla.binding),
                            epoch,
                        },
                        Some(sla) => Reply::Degraded {
                            service: sla.service.as_str().to_string(),
                            provider: sla.provider.as_str().to_string(),
                            level: S::render_level(&sla.agreed_level),
                            binding: binding_value::<S>(&negotiate.variable, &sla.binding),
                            epoch,
                            retries: report.retries as u64,
                            relaxations: report.relaxations_applied as u64,
                        },
                        None => {
                            // No agreement: if any provider session hit
                            // the step deadline, this is a negotiation
                            // timeout — report the best checkpointed
                            // partial level the rollback machinery kept.
                            let partial = report
                                .sessions
                                .iter()
                                .filter(|(_, r)| {
                                    matches!(r.report.outcome, Outcome::DeadlineExceeded { .. })
                                })
                                .map(|(_, r)| S::render_level(&r.final_consistency))
                                .fold(None::<f64>, |best, level| {
                                    Some(best.map_or(level, |b| b.max(level)))
                                });
                            match partial {
                                Some(level) => Reply::TimedOut {
                                    phase: Phase::Negotiate,
                                    partial_level: Some(level),
                                },
                                None => Reply::Error {
                                    code: ErrorCode::NoAgreement,
                                    detail: format!(
                                        "no provider agreed for `{}`",
                                        negotiate.capability
                                    ),
                                },
                            }
                        }
                    }
                }
                Err(e) => negotiation_error(&e),
            }
        }
    };
    t.timing("server.phase.negotiate", start.elapsed());
    answer
}

/// The contended path: parks the request in the batching window,
/// waits for a leader's verdict, and — when elected leader — solves
/// the closed window jointly and publishes everyone's replies.
fn negotiate_batched<S: WireSemiring>(
    broker: &mut Broker<S>,
    ctx: &SessionContext,
    fairness: Fairness,
    negotiate: NegotiateRequest,
    deadline: Instant,
    conn_id: u64,
) -> Reply {
    let t = &ctx.telemetry;
    // Anonymous clients fall back to a per-connection identity: still
    // fair within the batch, but without cross-batch starvation
    // tracking (a new connection is a new client to the ledger).
    let client = negotiate
        .client
        .clone()
        .unwrap_or_else(|| format!("conn-{conn_id}"));
    let ticket = ctx.batcher.submit(client, negotiate);
    loop {
        match ctx.batcher.await_turn(ticket, deadline) {
            Turn::Reply(reply) => return reply,
            Turn::Deadline => {
                return Reply::TimedOut {
                    phase: Phase::Negotiate,
                    partial_level: None,
                }
            }
            Turn::Lead(batch) => {
                t.incr("server.batch.led");
                t.gauge("server.batch.size", batch.len() as i64);
                let start = Instant::now();
                let results = solve_batch(broker, fairness, batch);
                t.timing("server.phase.negotiate", start.elapsed());
                ctx.batcher.publish(results);
                // Loop: our own reply is now published (or arrives
                // with a later batch if our entry was invalid-free).
            }
        }
    }
}

/// Solves one closed window: invalid entries get their own typed
/// errors, the rest are allocated jointly against a single registry
/// epoch.
fn solve_batch<S: WireSemiring>(
    broker: &Broker<S>,
    fairness: Fairness,
    batch: Vec<BatchEntry>,
) -> Vec<(u64, Reply)> {
    let mut results = Vec::with_capacity(batch.len());
    let mut admitted: Vec<(u64, NegotiateRequest)> = Vec::new();
    let mut contended: Vec<ContendedRequest<S>> = Vec::new();
    for entry in batch {
        match build_request::<S>(&entry.request) {
            Err(reply) => results.push((entry.ticket, reply)),
            Ok(request) => {
                contended.push(ContendedRequest {
                    client: entry.client,
                    request,
                });
                admitted.push((entry.ticket, entry.request));
            }
        }
    }
    if contended.is_empty() {
        return results;
    }
    let allocation = broker.negotiate_contended(&contended, fairness, S::translate);
    let epoch = allocation.epoch;
    for ((ticket, wire), (_, outcome)) in admitted.iter().zip(allocation.outcomes) {
        let reply = match outcome {
            ContentionOutcome::Granted(sla) => Reply::Bound {
                service: sla.service.as_str().to_string(),
                provider: sla.provider.as_str().to_string(),
                level: S::render_level(&sla.agreed_level),
                binding: binding_value::<S>(&wire.variable, &sla.binding),
                epoch,
            },
            ContentionOutcome::Preempted => Reply::Preempted {
                epoch,
                objective: fairness.as_str().to_string(),
            },
            ContentionOutcome::Waitlisted { age } => Reply::Waitlisted { epoch, age },
            ContentionOutcome::Unserved => Reply::Error {
                code: ErrorCode::NoAgreement,
                detail: format!("no provider agreed for `{}`", wire.capability),
            },
        };
        results.push((*ticket, reply));
    }
    results
}

fn binding_value<S: WireSemiring>(
    variable: &str,
    binding: &Option<(softsoa_core::Assignment, S::Value)>,
) -> Option<i64> {
    binding
        .as_ref()
        .and_then(|(assignment, _)| assignment.get(&variable.into()))
        .and_then(|v| v.as_int())
}

fn negotiation_error(error: &NegotiationError) -> Reply {
    let (code, detail) = match error {
        NegotiationError::NoProvider(capability) => (
            ErrorCode::NoProvider,
            format!("no provider offers `{capability}`"),
        ),
        NegotiationError::NoAgreement(capability) => (
            ErrorCode::NoAgreement,
            format!("no provider agreed for `{capability}`"),
        ),
        NegotiationError::InvalidAcceptance(capability) => (
            ErrorCode::InvalidAcceptance,
            format!("contradictory acceptance interval for `{capability}`"),
        ),
        other => (ErrorCode::Internal, other.to_string()),
    };
    Reply::Error { code, detail }
}
