//! The server-side contended-batching window.
//!
//! When [`crate::server::ServerConfig::fairness`] is set, negotiate
//! requests are no longer answered one session at a time: each request
//! parks in a shared [`Batcher`] until the batching window closes
//! (first entry older than `batch_window`, or `max_batch` entries),
//! then exactly one parked session — the *leader* — solves the whole
//! batch jointly with [`crate::Broker::negotiate_contended`] and
//! publishes everyone's replies. The window is the server's unit of
//! contention: clients that arrive within it compete for capacity
//! under the configured fairness objective instead of racing FCFS.
//!
//! The batcher is deliberately session-shaped: there is no extra
//! thread. Workers already block on their session's socket; here they
//! block on a condvar instead, and the leader role falls to whichever
//! parked worker first observes a closed window. One leader runs at a
//! time, so concurrent batches can never double-book a capacity slot.

use std::collections::{HashMap, HashSet};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::server::protocol::{NegotiateRequest, Reply};

/// One parked negotiate request.
#[derive(Debug)]
pub(crate) struct BatchEntry {
    /// The waiter's claim ticket.
    pub ticket: u64,
    /// Stable client identity for the fairness ledger.
    pub client: String,
    /// The wire-level request (the leader re-validates and translates).
    pub request: NegotiateRequest,
}

/// What [`Batcher::await_turn`] resolved to.
#[derive(Debug)]
pub(crate) enum Turn {
    /// A leader published this waiter's reply.
    Reply(Reply),
    /// The window closed and this waiter is the leader: solve the
    /// batch, then [`Batcher::publish`] the results and wait again.
    Lead(Vec<BatchEntry>),
    /// The waiter's session deadline passed first. Its entry (or
    /// orphaned result) has been withdrawn.
    Deadline,
}

/// The shared batching window (one per server).
#[derive(Debug)]
pub(crate) struct Batcher {
    window: Duration,
    max_batch: usize,
    state: Mutex<BatchState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct BatchState {
    next_ticket: u64,
    /// When the oldest parked entry arrived (the window anchor).
    opened_at: Option<Instant>,
    entries: Vec<BatchEntry>,
    results: HashMap<u64, Reply>,
    /// Tickets whose waiter gave up; their results are dropped on
    /// publish instead of leaking into `results` forever.
    abandoned: HashSet<u64>,
    /// Whether a leader is currently solving. Serialises batches so
    /// capacity bookkeeping is never split across two allocations.
    leader_busy: bool,
}

impl Batcher {
    /// Creates a window of `window` duration closing early at
    /// `max_batch` entries (clamped to at least 1).
    pub fn new(window: Duration, max_batch: usize) -> Batcher {
        Batcher {
            window,
            max_batch: max_batch.max(1),
            state: Mutex::new(BatchState::default()),
            ready: Condvar::new(),
        }
    }

    /// Parks a request in the current window, returning the claim
    /// ticket for [`Batcher::await_turn`].
    pub fn submit(&self, client: String, request: NegotiateRequest) -> u64 {
        let mut state = self.state.lock().expect("batcher poisoned");
        state.next_ticket += 1;
        let ticket = state.next_ticket;
        if state.entries.is_empty() {
            state.opened_at = Some(Instant::now());
        }
        state.entries.push(BatchEntry {
            ticket,
            client,
            request,
        });
        if state.entries.len() >= self.max_batch {
            // The window closed by fill: wake the parked waiters so
            // one of them takes the lead without waiting out the
            // window.
            self.ready.notify_all();
        }
        ticket
    }

    /// Blocks until the ticket's reply arrives, the caller should lead
    /// the closed window it is part of, or `deadline` passes.
    pub fn await_turn(&self, ticket: u64, deadline: Instant) -> Turn {
        let mut state = self.state.lock().expect("batcher poisoned");
        loop {
            if let Some(reply) = state.results.remove(&ticket) {
                return Turn::Reply(reply);
            }
            let now = Instant::now();
            if now >= deadline {
                state.entries.retain(|e| e.ticket != ticket);
                // If a leader already took the entry, the reply will
                // arrive with nobody waiting: mark it abandoned so
                // publish drops it.
                state.abandoned.insert(ticket);
                return Turn::Deadline;
            }
            let parked = state.entries.iter().any(|e| e.ticket == ticket);
            let closes_at = state.opened_at.map(|t| t + self.window);
            let closed = !state.entries.is_empty()
                && (state.entries.len() >= self.max_batch || closes_at.is_some_and(|t| now >= t));
            if parked && closed && !state.leader_busy {
                state.leader_busy = true;
                state.opened_at = None;
                return Turn::Lead(std::mem::take(&mut state.entries));
            }
            // Sleep until whichever comes first: the session deadline
            // or (when still parked and no leader is ahead of us) the
            // window closing. Publishes notify, so a busy leader needs
            // no timed wakeup.
            let wake_at = match closes_at {
                Some(t) if parked && !state.leader_busy => deadline.min(t),
                _ => deadline,
            };
            let timeout = wake_at.saturating_duration_since(now);
            let (guard, _) = self
                .ready
                .wait_timeout(state, timeout.max(Duration::from_micros(100)))
                .expect("batcher poisoned");
            state = guard;
        }
    }

    /// Publishes a solved batch's replies and releases the leader
    /// role. Replies for abandoned tickets are dropped.
    pub fn publish(&self, results: impl IntoIterator<Item = (u64, Reply)>) {
        let mut state = self.state.lock().expect("batcher poisoned");
        for (ticket, reply) in results {
            if !state.abandoned.remove(&ticket) {
                state.results.insert(ticket, reply);
            }
        }
        state.leader_busy = false;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::OfferShape;
    use std::sync::Arc;
    use std::thread;

    fn request(capability: &str) -> NegotiateRequest {
        NegotiateRequest {
            capability: capability.to_string(),
            variable: "x".to_string(),
            domain: [1, 9],
            policy: OfferShape::Piecewise {
                points: vec![(1, 1.0), (9, 1.0)],
            },
            accept: [0.0, 1.0],
            client: None,
        }
    }

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(5)
    }

    #[test]
    fn lone_waiter_leads_after_the_window() {
        let batcher = Batcher::new(Duration::from_millis(5), 8);
        let ticket = batcher.submit("a".into(), request("compute"));
        match batcher.await_turn(ticket, far()) {
            Turn::Lead(batch) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].ticket, ticket);
                assert_eq!(batch[0].client, "a");
            }
            other => panic!("expected leadership, got {other:?}"),
        }
        batcher.publish([(ticket, Reply::Pong { epoch: 1 })]);
        assert!(matches!(
            batcher.await_turn(ticket, far()),
            Turn::Reply(Reply::Pong { epoch: 1 })
        ));
    }

    #[test]
    fn full_window_closes_early_and_followers_get_replies() {
        let batcher = Arc::new(Batcher::new(Duration::from_secs(30), 2));
        let follower = {
            let batcher = Arc::clone(&batcher);
            thread::spawn(move || {
                let ticket = batcher.submit("follower".into(), request("compute"));
                batcher.await_turn(ticket, far())
            })
        };
        // Wait for the follower to park, then fill the window.
        while batcher.state.lock().unwrap().entries.is_empty() {
            thread::sleep(Duration::from_millis(1));
        }
        let ticket = batcher.submit("leader".into(), request("compute"));
        match batcher.await_turn(ticket, far()) {
            Turn::Lead(batch) => {
                assert_eq!(batch.len(), 2);
                let replies: Vec<(u64, Reply)> = batch
                    .iter()
                    .map(|e| (e.ticket, Reply::Pong { epoch: 7 }))
                    .collect();
                batcher.publish(replies);
            }
            other => panic!("expected leadership, got {other:?}"),
        }
        assert!(matches!(
            batcher.await_turn(ticket, far()),
            Turn::Reply(Reply::Pong { epoch: 7 })
        ));
        assert!(matches!(
            follower.join().expect("follower"),
            Turn::Reply(Reply::Pong { epoch: 7 })
        ));
    }

    #[test]
    fn deadline_withdraws_the_entry_and_abandons_the_reply() {
        let batcher = Batcher::new(Duration::from_secs(30), 8);
        let ticket = batcher.submit("a".into(), request("compute"));
        let soon = Instant::now() + Duration::from_millis(5);
        assert!(matches!(batcher.await_turn(ticket, soon), Turn::Deadline));
        // The entry is gone; a later publish for the ticket is dropped.
        batcher.publish([(ticket, Reply::Pong { epoch: 1 })]);
        let state = batcher.state.lock().unwrap();
        assert!(state.entries.is_empty());
        assert!(state.results.is_empty());
        assert!(state.abandoned.is_empty());
    }

    #[test]
    fn next_window_opens_while_the_leader_is_busy() {
        let batcher = Batcher::new(Duration::from_millis(2), 8);
        let first = batcher.submit("a".into(), request("compute"));
        let Turn::Lead(batch) = batcher.await_turn(first, far()) else {
            panic!("expected leadership");
        };
        // Leader is mid-solve; a new submission parks for the *next*
        // window rather than joining the taken batch.
        let second = batcher.submit("b".into(), request("compute"));
        {
            let state = batcher.state.lock().unwrap();
            assert!(state.leader_busy);
            assert_eq!(state.entries.len(), 1);
        }
        batcher.publish(batch.iter().map(|e| (e.ticket, Reply::Pong { epoch: 1 })));
        assert!(matches!(batcher.await_turn(first, far()), Turn::Reply(_)));
        // With the leader role free, the second waiter leads its own
        // window once it expires.
        assert!(matches!(
            batcher.await_turn(second, far()),
            Turn::Lead(batch) if batch.len() == 1
        ));
    }
}
