//! Chaos-mode negotiation and querying: provider faults injected into
//! running `nmsccp` sessions.
//!
//! The paper's dependability claim is that checked transitions keep a
//! negotiation inside its interval *while the environment misbehaves*
//! (the Sec. 5 module that "could take on any behaviour"). This module
//! closes the loop between the two fault models the repo already has:
//! the seeded [`SimService`] failure model decides *when* a provider
//! misbehaves, and the [`FaultPlan`] machinery of
//! `softsoa_nmsccp::resilience` decides *what* that does to the store
//! mid-negotiation. Everything is a pure function of the
//! [`ChaosConfig`] seed, so a chaos run is replayable bit for bit.

use std::collections::BTreeMap;

use softsoa_core::solve::SolverConfig;
use softsoa_core::{Constraint, Domains};
use softsoa_nmsccp::{
    Agent, Bound, FaultAction, FaultEvent, FaultPlan, Interval, Program, RecoveryPolicy,
    ResilienceReport, ResilientInterpreter, SemanticsError, Store,
};
use softsoa_semiring::{Residuated, Semiring};

use crate::broker::provider_constraint;
use crate::{
    Broker, NegotiationError, NegotiationRequest, QosOffer, QueryError, QueryPlan, Registry,
    ServiceId, ServiceQuery, SimConfig, SimService, Sla,
};

/// How hostile the environment is during a chaos run, and how much
/// patience the runtime has with it.
///
/// Provider faults are drawn from each provider's own seeded
/// [`SimService`] stream (`seed ^ fnv1a(service id)`), so adding or
/// removing a provider never perturbs the faults of the others.
#[derive(Debug, Clone)]
pub struct ChaosConfig<S: Semiring> {
    /// Base RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Per-step probability that a provider misbehaves.
    pub fault_rate: f64,
    /// How many interpreter steps the fault model covers.
    pub horizon: usize,
    /// Degradation values available as injected faults (each worsens
    /// the whole store by a fixed semiring value).
    pub degradations: Vec<S::Value>,
    /// Whether faults may drop chosen transitions (lost messages).
    pub drop_transitions: bool,
    /// Whether faults may retract the provider's told policy from the
    /// store (a provider reneging on its offer).
    pub unconstrain: bool,
    /// Whether faults may crash a parallel branch outright.
    pub crash_branches: bool,
    /// Steps a blocked session idles before each retry.
    pub guard_deadline: usize,
    /// Retry budget per session (see [`RecoveryPolicy`]).
    pub max_retries: usize,
    /// Base of the deterministic exponential backoff.
    pub backoff_base: usize,
    /// Absolute per-session deadline on the virtual step clock (see
    /// [`RecoveryPolicy::deadline`]): retries clamp their idle waits
    /// to it and a session still blocked at the deadline ends with the
    /// typed `DeadlineExceeded` outcome. `None` (the default) leaves
    /// sessions unbounded.
    pub session_deadline: Option<usize>,
}

impl<S: Semiring> Default for ChaosConfig<S> {
    fn default() -> ChaosConfig<S> {
        ChaosConfig {
            seed: 0,
            fault_rate: 0.1,
            horizon: 16,
            degradations: Vec::new(),
            drop_transitions: true,
            unconstrain: true,
            crash_branches: false,
            guard_deadline: 4,
            max_retries: 3,
            backoff_base: 2,
            session_deadline: None,
        }
    }
}

impl<S: Semiring> ChaosConfig<S> {
    /// The recovery policy this configuration induces, with the given
    /// relaxation ladder and invariant.
    fn recovery(
        &self,
        relaxations: &[Constraint<S>],
        invariant: Option<Interval<S>>,
    ) -> RecoveryPolicy<S> {
        RecoveryPolicy {
            guard_deadline: self.guard_deadline,
            max_retries: self.max_retries,
            backoff_base: self.backoff_base,
            relaxations: relaxations.to_vec(),
            invariant,
            deadline: self.session_deadline,
        }
    }
}

/// The report of one chaos negotiation: the best SLA (if any session
/// survived) plus each per-provider resilient session and the
/// aggregate recovery counters.
#[derive(Debug, Clone)]
pub struct ChaosReport<S: Semiring> {
    /// The best agreement among surviving sessions, if any.
    pub sla: Option<Sla<S>>,
    /// `(service, resilient session report)` for every discovered
    /// provider with a matching offer, in registry order.
    pub sessions: Vec<(ServiceId, ResilienceReport<S>)>,
    /// Total faults injected across sessions.
    pub faults_injected: usize,
    /// Total transitions dropped by faults.
    pub dropped_transitions: usize,
    /// Total retries spent.
    pub retries: usize,
    /// Total rollbacks performed.
    pub rollbacks: usize,
    /// Total relaxation rungs retracted.
    pub relaxations_applied: usize,
    /// Total interval violations observed.
    pub invariant_violations: usize,
}

impl<S: Semiring> ChaosReport<S> {
    /// Whether some session reached an agreement.
    pub fn is_success(&self) -> bool {
        self.sla.is_some()
    }
}

/// The report of a chaos query: the plan (if any attempt succeeded),
/// how many attempts were spent, which providers were blacked out per
/// attempt, and what the degradation ladder gave up.
#[derive(Debug, Clone)]
pub struct QueryChaosReport<S: Semiring> {
    /// The winning plan, if any attempt found one.
    pub plan: Option<QueryPlan<S>>,
    /// Attempts consumed (initial try + retries + degraded tries).
    pub attempts: usize,
    /// Blacked-out providers per attempt, in attempt order.
    pub blackouts: Vec<Vec<ServiceId>>,
    /// Whether graceful degradation dropped the query's `min_level`.
    pub dropped_min_level: bool,
    /// How many cross-stage constraints degradation dropped (from the
    /// last declared backwards).
    pub dropped_cross_constraints: usize,
}

/// FNV-1a, used to derive a per-provider fault seed from the base
/// chaos seed so providers fail independently but reproducibly.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Derives the per-provider chaos seed: `seed ^ fnv1a(service id)`.
///
/// Fault-plan replayability depends on this exact derivation — both
/// the negotiation fault plans and the query outage streams use it,
/// and a pinned-value test guards it against refactors.
pub fn provider_seed(base_seed: u64, service: &ServiceId) -> u64 {
    base_seed ^ fnv1a(service.as_str())
}

/// The steps (below `horizon`) at which a provider's seeded failure
/// stream misfires.
fn fault_steps(seed: u64, fault_rate: f64, horizon: usize) -> Vec<usize> {
    let mut svc = SimService::new(SimConfig {
        reliability: (1.0 - fault_rate).clamp(0.0, 1.0),
        mean_latency_ms: 1.0,
        seed,
    });
    (0..horizon).filter(|_| svc.invoke().is_err()).collect()
}

/// Maps a provider's [`ServiceFault`](crate::ServiceFault) stream to a
/// deterministic [`FaultPlan`]: every simulated failure below the
/// horizon becomes one injected store fault, cycling through the
/// fault kinds the configuration enables.
pub fn provider_fault_plan<S: Semiring>(
    chaos: &ChaosConfig<S>,
    service: &ServiceId,
    provider_policy: &Constraint<S>,
) -> FaultPlan<S> {
    let mut kinds: Vec<FaultAction<S>> = Vec::new();
    if chaos.drop_transitions {
        kinds.push(FaultAction::DropTransition);
    }
    if chaos.unconstrain {
        kinds.push(FaultAction::Unconstrain(provider_policy.clone()));
    }
    for d in &chaos.degradations {
        kinds.push(FaultAction::Degrade(d.clone()));
    }
    if chaos.crash_branches {
        kinds.push(FaultAction::CrashBranch(0));
    }
    if kinds.is_empty() {
        return FaultPlan::none();
    }
    let steps = fault_steps(
        provider_seed(chaos.seed, service),
        chaos.fault_rate,
        chaos.horizon,
    );
    let events = steps
        .into_iter()
        .enumerate()
        .map(|(k, at_step)| FaultEvent {
            at_step,
            action: kinds[k % kinds.len()].clone(),
        })
        .collect();
    FaultPlan::new(events)
}

/// The dependability invariant a chaos session maintains: the store
/// must never fall below the acceptance interval's lower threshold.
/// (The upper threshold is left open — a *partially built* store is
/// legitimately better than the final agreement.)
fn lower_only_invariant<S: Semiring>(semiring: &S, acceptance: &Interval<S>) -> Interval<S> {
    Interval::new(acceptance.lower().clone(), Bound::Level(semiring.one()))
}

impl<S: Residuated> Broker<S> {
    /// Negotiates under chaos: every per-provider `nmsccp` session
    /// runs in a [`ResilientInterpreter`] whose fault plan is derived
    /// from the provider's seeded failure model, and whose recovery
    /// policy retries, rolls back on interval violations and concedes
    /// rungs of `relaxations`.
    ///
    /// Unlike [`Broker::negotiate`], failing to agree is not an error:
    /// the [`ChaosReport`] carries `sla: None` together with every
    /// session's trace, so callers can measure *how* negotiations died.
    ///
    /// # Errors
    ///
    /// [`NegotiationError::NoProvider`] if discovery finds nothing,
    /// [`NegotiationError::InvalidAcceptance`] for a contradictory
    /// interval, or an underlying semantics/solve error.
    pub fn negotiate_resilient<F>(
        &self,
        request: &NegotiationRequest<S>,
        relaxations: &[Constraint<S>],
        chaos: &ChaosConfig<S>,
        translate: F,
    ) -> Result<ChaosReport<S>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        let registry = self.registry();
        let candidates = registry.discover(&request.capability);
        if candidates.is_empty() {
            return Err(NegotiationError::NoProvider(request.capability.clone()));
        }
        let domains = Domains::new().with(request.variable.clone(), request.domain.clone());
        if matches!(
            request.acceptance.validate(self.semiring(), &domains),
            Err(softsoa_nmsccp::ValidationError::Invalid(_))
        ) {
            return Err(NegotiationError::InvalidAcceptance(
                request.capability.clone(),
            ));
        }
        let recovery = chaos.recovery(
            relaxations,
            Some(lower_only_invariant(self.semiring(), &request.acceptance)),
        );

        // Provider-independent: the client agent is identical for every
        // session, so translate the client policy once.
        let client = Agent::tell(
            request.constraint.clone(),
            Interval::any(self.semiring()),
            Agent::ask(
                Constraint::always(self.semiring().clone()),
                request.acceptance.clone(),
                Agent::success(),
            ),
        );
        let mut sessions = Vec::new();
        let mut best: Option<Sla<S>> = None;
        for service in candidates {
            let Some(policy) = provider_constraint(service, request.variable.name(), &translate)
            else {
                continue;
            };
            let plan = provider_fault_plan(chaos, &service.id, &policy);
            let provider = Agent::tell(policy, Interval::any(self.semiring()), Agent::success());
            let store = Store::empty(self.semiring().clone(), domains.clone());
            let session_start = self.telemetry.enabled().then(std::time::Instant::now);
            self.telemetry.incr("broker.sessions");
            let report = ResilientInterpreter::new(Program::new())
                .with_plan(plan)
                .with_recovery(recovery.clone())
                .with_telemetry(self.telemetry.clone())
                .run(Agent::par(provider, client.clone()), store)?;
            if self.telemetry.enabled() {
                let id = service.id.as_str();
                if let Some(start) = session_start {
                    self.telemetry
                        .timing_labeled("broker.provider.latency", id, start.elapsed());
                }
                let t = &self.telemetry;
                t.count_labeled("broker.provider.retries", id, report.retries as u64);
                t.count_labeled("broker.provider.faults", id, report.faults_injected as u64);
                t.count_labeled("broker.provider.rollbacks", id, report.rollbacks as u64);
                t.count_labeled(
                    "broker.provider.degradation_rung",
                    id,
                    report.relaxations_applied as u64,
                );
                t.count_labeled(
                    "broker.provider.interval_excursions",
                    id,
                    report.invariant_violations as u64,
                );
                let outcome = if report.is_success() {
                    "broker.provider.agreements"
                } else {
                    "broker.provider.rejections"
                };
                t.count_labeled(outcome, id, 1);
            }

            if report.is_success() {
                let final_store = report.report.outcome.store();
                let agreed_level = final_store.consistency().map_err(SemanticsError::from)?;
                // Warm-started across retries and relaxation rungs: the
                // broker's SolveCache seeds the incumbent from the last
                // structurally matching round's witness.
                let solution =
                    self.solve_binding(&request.variable, &request.domain, final_store.sigma())?;
                let sla = Sla {
                    service: service.id.clone(),
                    provider: service.provider.clone(),
                    agreed_level,
                    binding: solution.best().first().cloned(),
                };
                best = match best {
                    None => Some(sla),
                    Some(current) => {
                        if self.semiring().lt(&current.agreed_level, &sla.agreed_level) {
                            Some(sla)
                        } else {
                            Some(current)
                        }
                    }
                };
            }
            sessions.push((service.id.clone(), report));
        }

        let sum = |f: fn(&ResilienceReport<S>) -> usize| {
            sessions.iter().map(|(_, r)| f(r)).sum::<usize>()
        };
        Ok(ChaosReport {
            faults_injected: sum(|r| r.faults_injected),
            dropped_transitions: sum(|r| r.dropped_transitions),
            retries: sum(|r| r.retries),
            rollbacks: sum(|r| r.rollbacks),
            relaxations_applied: sum(|r| r.relaxations_applied),
            invariant_violations: sum(|r| r.invariant_violations),
            sla: best,
            sessions,
        })
    }

    /// Answers a composite query under chaos: before each attempt,
    /// every registered provider is blacked out with probability
    /// `fault_rate` (drawn from its own seeded stream), and the query
    /// runs against the surviving registry. Failed attempts retry up
    /// to `max_retries` times; once retries are exhausted the query is
    /// *degraded gracefully* — first dropping `min_level`, then
    /// cross-stage constraints (last declared first) — one concession
    /// per further attempt, until a plan is found or nothing is left
    /// to concede.
    ///
    /// # Errors
    ///
    /// [`QueryError::Solve`] for hard solver failures. Exhausted
    /// attempts are not an error: the report carries `plan: None`.
    pub fn query_resilient<F>(
        &self,
        query: &ServiceQuery<S>,
        chaos: &ChaosConfig<S>,
        translate: F,
        config: &SolverConfig,
    ) -> Result<QueryChaosReport<S>, QueryError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        // One independent outage stream per registered service.
        let mut outages: BTreeMap<ServiceId, SimService> = self
            .registry()
            .iter()
            .map(|service| {
                let seed = provider_seed(chaos.seed, &service.id);
                (
                    service.id.clone(),
                    SimService::new(SimConfig {
                        reliability: (1.0 - chaos.fault_rate).clamp(0.0, 1.0),
                        mean_latency_ms: 1.0,
                        seed,
                    }),
                )
            })
            .collect();
        let mut draw_blackout = || {
            outages
                .iter_mut()
                .filter_map(|(id, svc)| svc.invoke().is_err().then(|| id.clone()))
                .collect::<Vec<ServiceId>>()
        };

        let mut current = query.clone();
        let mut attempts = 0usize;
        let mut blackouts = Vec::new();
        let mut dropped_min_level = false;
        let mut dropped_cross_constraints = 0usize;

        loop {
            // Concede one rung per attempt once the retry budget is
            // spent on the undegraded query.
            if attempts > chaos.max_retries {
                if current.min_level.take().is_some() {
                    dropped_min_level = true;
                } else if current.cross_constraints.pop().is_some() {
                    dropped_cross_constraints += 1;
                } else {
                    let report = QueryChaosReport {
                        plan: None,
                        attempts,
                        blackouts,
                        dropped_min_level,
                        dropped_cross_constraints,
                    };
                    self.emit_query(&report);
                    return Ok(report);
                }
            }
            attempts += 1;

            let down = draw_blackout();
            let mut registry: Registry = self.registry().clone();
            for id in &down {
                registry.deregister(id);
            }
            blackouts.push(down);
            let degraded_broker = Broker::new(self.semiring().clone(), registry)
                .with_telemetry(self.telemetry.clone());
            match degraded_broker.query_with(&current, &translate, config) {
                Ok(plan) => {
                    let report = QueryChaosReport {
                        plan: Some(plan),
                        attempts,
                        blackouts,
                        dropped_min_level,
                        dropped_cross_constraints,
                    };
                    self.emit_query(&report);
                    return Ok(report);
                }
                Err(QueryError::Solve(e)) => return Err(QueryError::Solve(e)),
                // No provider alive / no plan this round: retry or
                // degrade on the next iteration.
                Err(_) => continue,
            }
        }
    }

    /// Replays a finished chaos query into the attached telemetry:
    /// attempts, total provider blackouts, degradation concessions
    /// and the planned/exhausted tally.
    fn emit_query(&self, report: &QueryChaosReport<S>) {
        let t = &self.telemetry;
        if !t.enabled() {
            return;
        }
        t.count("broker.query.attempts", report.attempts as u64);
        t.count(
            "broker.query.blackouts",
            report.blackouts.iter().map(|b| b.len() as u64).sum(),
        );
        t.count(
            "broker.query.dropped_min_level",
            u64::from(report.dropped_min_level),
        );
        t.count(
            "broker.query.dropped_cross_constraints",
            report.dropped_cross_constraints as u64,
        );
        let outcome = if report.plan.is_some() {
            "broker.query.planned"
        } else {
            "broker.query.exhausted"
        };
        t.incr(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OfferShape, QosDocument, Registry, ServiceDescription};
    use softsoa_core::{Domain, Var};
    use softsoa_dependability::Attribute;
    use softsoa_semiring::{Weight, Weighted};

    fn provider(id: &str, capability: &str, shape: OfferShape) -> ServiceDescription {
        ServiceDescription::new(
            id,
            "acme",
            capability,
            QosDocument::new(id).with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "x".into(),
                shape,
            }),
        )
    }

    fn example2_request() -> NegotiationRequest<Weighted> {
        NegotiationRequest {
            capability: "failure-mgmt".into(),
            variable: Var::new("x"),
            domain: Domain::ints(0..=10),
            constraint: Constraint::unary(Weighted, "x", |v| {
                Weight::saturating(v.as_int().unwrap() as f64 + 5.0) // c4
            })
            .with_label("c4"),
            acceptance: Interval::levels(
                Weight::new(4.0).unwrap(), // no worse than 4 hours
                Weight::new(1.0).unwrap(), // no better than 1 hour
            ),
        }
    }

    fn example2_registry() -> Registry {
        let mut registry = Registry::new();
        registry.publish(provider(
            "svc",
            "failure-mgmt",
            OfferShape::Linear {
                slope: 2.0,
                intercept: 0.0,
            }, // c3 = 2x
        ));
        registry
    }

    fn c1() -> Constraint<Weighted> {
        Constraint::unary(Weighted, "x", |v| {
            Weight::saturating(v.as_int().unwrap() as f64 + 3.0)
        })
        .with_label("c1")
    }

    /// The acceptance demo at the SOA layer: Example 2's negotiation
    /// deadlocks naively, completes under chaos-mode relaxation.
    #[test]
    fn chaos_negotiation_relaxes_where_naive_fails() {
        let broker = Broker::new(Weighted, example2_registry());
        assert!(matches!(
            broker.negotiate(&example2_request(), QosOffer::to_weighted),
            Err(NegotiationError::NoAgreement(_))
        ));
        let chaos = ChaosConfig {
            fault_rate: 0.0, // no faults: pure recovery semantics
            ..ChaosConfig::default()
        };
        let report = broker
            .negotiate_resilient(&example2_request(), &[c1()], &chaos, QosOffer::to_weighted)
            .unwrap();
        let sla = report.sla.expect("relaxed negotiation succeeds");
        assert_eq!(sla.agreed_level, Weight::new(2.0).unwrap());
        assert!(report.relaxations_applied >= 1);
    }

    #[test]
    fn chaos_negotiation_is_reproducible() {
        let broker = Broker::new(Weighted, example2_registry());
        let run = || {
            let chaos = ChaosConfig {
                seed: 99,
                fault_rate: 0.5,
                degradations: vec![Weight::new(1.0).unwrap()],
                ..ChaosConfig::default()
            };
            broker
                .negotiate_resilient(&example2_request(), &[c1()], &chaos, QosOffer::to_weighted)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.is_success(), b.is_success());
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(a.relaxations_applied, b.relaxations_applied);
        assert_eq!(a.sessions.len(), b.sessions.len());
        for ((ida, ra), (idb, rb)) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(ida, idb);
            assert_eq!(ra.fault_log, rb.fault_log);
            assert_eq!(ra.report.steps, rb.report.steps);
            let notes = |r: &ResilienceReport<Weighted>| {
                r.report
                    .trace
                    .iter()
                    .map(|t| t.note.clone())
                    .collect::<Vec<_>>()
            };
            assert_eq!(notes(ra), notes(rb));
        }
    }

    #[test]
    fn provider_fault_plans_are_per_service() {
        let chaos: ChaosConfig<Weighted> = ChaosConfig {
            seed: 5,
            fault_rate: 0.5,
            horizon: 32,
            ..ChaosConfig::default()
        };
        let policy = Constraint::always(Weighted);
        let a = provider_fault_plan(&chaos, &ServiceId::new("svc-a"), &policy);
        let b = provider_fault_plan(&chaos, &ServiceId::new("svc-b"), &policy);
        let steps =
            |p: &FaultPlan<Weighted>| p.events().iter().map(|e| e.at_step).collect::<Vec<_>>();
        // Same service, same plan; different services, different plans.
        assert_eq!(
            steps(&a),
            steps(&provider_fault_plan(
                &chaos,
                &ServiceId::new("svc-a"),
                &policy
            ))
        );
        assert_ne!(steps(&a), steps(&b));
    }

    /// Pins the per-provider seed derivation `seed ^ fnv1a(id)` to
    /// concrete values: stored fault plans and outage streams replay
    /// only while this derivation is stable, so a refactor that
    /// changes it must consciously break this test.
    #[test]
    fn provider_seed_derivation_is_pinned() {
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(
            provider_seed(0, &ServiceId::new("svc-a")),
            0xbfbe_289c_a313_c913
        );
        assert_eq!(
            provider_seed(0xdead_beef, &ServiceId::new("svc-a")),
            0xbfbe_289c_7dbe_77fc
        );
        // XOR with the base seed, nothing else.
        let id = ServiceId::new("video-transcode");
        assert_eq!(provider_seed(42, &id), 42 ^ provider_seed(0, &id));
    }

    #[test]
    fn query_survives_blackouts_through_retry() {
        // Two interchangeable providers: even when one is blacked out,
        // a retry finds an attempt where the stage is coverable.
        let mut registry = Registry::new();
        registry.publish(provider(
            "fast",
            "compute",
            OfferShape::Constant { level: 1.0 },
        ));
        registry.publish(provider(
            "slow",
            "compute",
            OfferShape::Constant { level: 2.0 },
        ));
        let broker = Broker::new(Weighted, registry);
        let query = ServiceQuery {
            stages: vec![crate::QueryStage {
                capability: "compute".into(),
                variable: Var::new("x"),
                domain: Domain::ints(0..=1),
                requirement: Constraint::always(Weighted),
            }],
            cross_constraints: vec![],
            min_level: None,
        };
        let chaos: ChaosConfig<Weighted> = ChaosConfig {
            seed: 3,
            fault_rate: 0.4,
            max_retries: 8,
            ..ChaosConfig::default()
        };
        let report = broker
            .query_resilient(
                &query,
                &chaos,
                QosOffer::to_weighted,
                &SolverConfig::default(),
            )
            .unwrap();
        let plan = report.plan.expect("some attempt finds live providers");
        assert!(report.attempts >= 1);
        assert_eq!(report.blackouts.len(), report.attempts);
        assert!(!plan.selections.is_empty());
    }

    #[test]
    fn query_degrades_gracefully_when_infeasible() {
        let mut registry = Registry::new();
        registry.publish(provider(
            "only",
            "compute",
            OfferShape::Constant { level: 5.0 },
        ));
        let broker = Broker::new(Weighted, registry);
        let query = ServiceQuery {
            stages: vec![crate::QueryStage {
                capability: "compute".into(),
                variable: Var::new("x"),
                domain: Domain::ints(0..=1),
                requirement: Constraint::always(Weighted),
            }],
            cross_constraints: vec![Constraint::never(Weighted)],
            // Weighted order: demands cost ≤ 1, impossible at cost 5.
            min_level: Some(Weight::new(1.0).unwrap()),
        };
        let chaos: ChaosConfig<Weighted> = ChaosConfig {
            seed: 1,
            fault_rate: 0.0,
            max_retries: 1,
            ..ChaosConfig::default()
        };
        let report = broker
            .query_resilient(
                &query,
                &chaos,
                QosOffer::to_weighted,
                &SolverConfig::default(),
            )
            .unwrap();
        // Both the floor and the impossible cross-constraint had to go.
        assert!(report.dropped_min_level);
        assert_eq!(report.dropped_cross_constraints, 1);
        let plan = report.plan.expect("fully degraded query succeeds");
        assert_eq!(plan.level, Weight::new(5.0).unwrap());
    }

    #[test]
    fn query_reports_exhaustion_without_panicking() {
        // A single provider with certain blackout: no attempt can ever
        // cover the stage, and there is nothing to degrade.
        let mut registry = Registry::new();
        registry.publish(provider(
            "only",
            "compute",
            OfferShape::Constant { level: 1.0 },
        ));
        let broker = Broker::new(Weighted, registry);
        let query = ServiceQuery {
            stages: vec![crate::QueryStage {
                capability: "compute".into(),
                variable: Var::new("x"),
                domain: Domain::ints(0..=1),
                requirement: Constraint::always(Weighted),
            }],
            cross_constraints: vec![],
            min_level: None,
        };
        let chaos: ChaosConfig<Weighted> = ChaosConfig {
            seed: 2,
            fault_rate: 1.0,
            max_retries: 2,
            ..ChaosConfig::default()
        };
        let report = broker
            .query_resilient(
                &query,
                &chaos,
                QosOffer::to_weighted,
                &SolverConfig::default(),
            )
            .unwrap();
        assert!(report.plan.is_none());
        assert_eq!(report.attempts, chaos.max_retries + 1);
    }
}
