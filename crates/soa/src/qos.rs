//! QoS documents and their translation into soft constraints.
//!
//! Providers "publish QoS-enabled web services" by attaching an
//! XML-based QoS document to each service (Sec. 4, after the W3C QoS
//! note the paper cites). This module is the stand-in for that
//! document format: a typed, serialisable description of QoS offers
//! that the broker *translates into soft constraints* before adding
//! them to its store — the paper's "all the XML-translations are
//! executed inside [the solver component]".

use serde::{Deserialize, Serialize};
use softsoa_core::{Constraint, Var};
use softsoa_dependability::Attribute;
use softsoa_semiring::{Boolean, Fuzzy, Probabilistic, Unit, Weight, Weighted};

/// The shape of a QoS offer: how the offered level depends on the
/// negotiation variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OfferShape {
    /// `level(x) = slope · x + intercept` — the paper's polynomial
    /// policies ("the reliability is equal to 80% plus 5% for each
    /// other processor", `c(x) = 2x`, ...).
    Linear {
        /// Level change per unit of the variable.
        slope: f64,
        /// Level at `x = 0`.
        intercept: f64,
    },
    /// Piecewise-linear interpolation through `(x, level)` points,
    /// clamped at the extremes (used for the preference profiles of
    /// Fig. 5).
    Piecewise {
        /// Interpolation points, sorted by `x`.
        points: Vec<(i64, f64)>,
    },
    /// A constant level, independent of the variable.
    Constant {
        /// The offered level.
        level: f64,
    },
    /// A crisp admissible range: full level inside `[min, max]`,
    /// bottom outside.
    Range {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
    },
}

impl OfferShape {
    /// The raw offered level at `x`, before any semiring
    /// interpretation.
    pub fn level_at(&self, x: i64) -> f64 {
        match self {
            OfferShape::Linear { slope, intercept } => slope * x as f64 + intercept,
            OfferShape::Constant { level } => *level,
            OfferShape::Range { min, max } => {
                if (*min..=*max).contains(&x) {
                    1.0
                } else {
                    0.0
                }
            }
            OfferShape::Piecewise { points } => {
                if points.is_empty() {
                    return 0.0;
                }
                if x <= points[0].0 {
                    return points[0].1;
                }
                if x >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for pair in points.windows(2) {
                    let (x0, y0) = pair[0];
                    let (x1, y1) = pair[1];
                    if (x0..=x1).contains(&x) && x0 != x1 {
                        let t = (x - x0) as f64 / (x1 - x0) as f64;
                        return y0 + t * (y1 - y0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

/// One QoS offer: an attribute, the negotiation variable it depends
/// on, and the offered level as a function of that variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosOffer {
    /// The dependability attribute being offered.
    pub attribute: Attribute,
    /// The negotiation variable name (e.g. `"failures"`).
    pub variable: String,
    /// The offered level as a function of the variable.
    pub shape: OfferShape,
}

impl QosOffer {
    /// Interprets the offer as a *cost* in the weighted semiring
    /// (levels clamp below at 0; additive metrics).
    pub fn to_weighted(&self) -> Constraint<Weighted> {
        let shape = self.shape.clone();
        Constraint::unary(Weighted, Var::new(&self.variable), move |v| {
            Weight::saturating(shape.level_at(v.as_int().unwrap_or(0)))
        })
        .with_label(format!("{}/{}", self.attribute, self.variable))
    }

    /// Interprets the offer as a *preference* in the fuzzy semiring
    /// (levels clamp into `[0, 1]`).
    pub fn to_fuzzy(&self) -> Constraint<Fuzzy> {
        let shape = self.shape.clone();
        Constraint::unary(Fuzzy, Var::new(&self.variable), move |v| {
            Unit::clamped(shape.level_at(v.as_int().unwrap_or(0)))
        })
        .with_label(format!("{}/{}", self.attribute, self.variable))
    }

    /// Interprets the offer as a *probability* in the probabilistic
    /// semiring (levels clamp into `[0, 1]`).
    pub fn to_probabilistic(&self) -> Constraint<Probabilistic> {
        let shape = self.shape.clone();
        Constraint::unary(Probabilistic, Var::new(&self.variable), move |v| {
            Unit::clamped(shape.level_at(v.as_int().unwrap_or(0)))
        })
        .with_label(format!("{}/{}", self.attribute, self.variable))
    }

    /// Interprets the offer crisply: admissible iff the level is
    /// positive.
    pub fn to_crisp(&self) -> Constraint<Boolean> {
        let shape = self.shape.clone();
        Constraint::unary(Boolean, Var::new(&self.variable), move |v| {
            shape.level_at(v.as_int().unwrap_or(0)) > 0.0
        })
        .with_label(format!("{}/{}", self.attribute, self.variable))
    }
}

/// A provider's QoS document: the offers attached to one service.
///
/// # Examples
///
/// ```
/// use softsoa_soa::{QosDocument, QosOffer, OfferShape};
/// use softsoa_dependability::Attribute;
///
/// let doc = QosDocument::new("photo-filter")
///     .with_offer(QosOffer {
///         attribute: Attribute::Reliability,
///         variable: "procs".into(),
///         // "reliability is 80% plus 5% per extra processor"
///         shape: OfferShape::Linear { slope: 0.05, intercept: 0.80 },
///     });
/// let json = doc.to_json().unwrap();
/// assert_eq!(QosDocument::from_json(&json).unwrap(), doc);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosDocument {
    /// The service the document describes.
    pub service: String,
    /// The offers, one per attribute/variable pair.
    pub offers: Vec<QosOffer>,
}

impl QosDocument {
    /// Creates an empty document for a service.
    pub fn new(service: impl Into<String>) -> QosDocument {
        QosDocument {
            service: service.into(),
            offers: Vec::new(),
        }
    }

    /// Adds an offer (builder style).
    pub fn with_offer(mut self, offer: QosOffer) -> QosDocument {
        self.offers.push(offer);
        self
    }

    /// The offer for a given attribute, if present.
    pub fn offer(&self, attribute: Attribute) -> Option<&QosOffer> {
        self.offers.iter().find(|o| o.attribute == attribute)
    }

    /// Serialises the document (the wire stand-in for the paper's
    /// XML-based QoS documents).
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] on serialisation failure.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a document from its serialised form.
    ///
    /// # Errors
    ///
    /// Returns a [`serde_json::Error`] on malformed input.
    pub fn from_json(json: &str) -> Result<QosDocument, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_core::Assignment;

    fn offer(shape: OfferShape) -> QosOffer {
        QosOffer {
            attribute: Attribute::Reliability,
            variable: "x".into(),
            shape,
        }
    }

    #[test]
    fn linear_shape() {
        let s = OfferShape::Linear {
            slope: 0.05,
            intercept: 0.80,
        };
        assert!((s.level_at(0) - 0.80).abs() < 1e-12);
        assert!((s.level_at(3) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn piecewise_interpolates_and_clamps() {
        let s = OfferShape::Piecewise {
            points: vec![(1, 0.0), (5, 1.0), (9, 0.0)],
        };
        assert_eq!(s.level_at(0), 0.0); // clamp left
        assert!((s.level_at(3) - 0.5).abs() < 1e-12);
        assert_eq!(s.level_at(5), 1.0);
        assert!((s.level_at(7) - 0.5).abs() < 1e-12);
        assert_eq!(s.level_at(20), 0.0); // clamp right
    }

    #[test]
    fn range_shape_is_crisp() {
        let s = OfferShape::Range { min: 2, max: 4 };
        assert_eq!(s.level_at(1), 0.0);
        assert_eq!(s.level_at(2), 1.0);
        assert_eq!(s.level_at(5), 0.0);
    }

    #[test]
    fn empty_piecewise_is_zero() {
        let s = OfferShape::Piecewise { points: vec![] };
        assert_eq!(s.level_at(3), 0.0);
    }

    #[test]
    fn translations_agree_with_shape() {
        let o = offer(OfferShape::Linear {
            slope: 1.0,
            intercept: 2.0,
        });
        let eta = Assignment::new().bind("x", 3);
        assert_eq!(o.to_weighted().eval(&eta).get(), 5.0);
        // Fuzzy/probabilistic clamp 5.0 into [0, 1].
        assert_eq!(o.to_fuzzy().eval(&eta), Unit::MAX);
        assert_eq!(o.to_probabilistic().eval(&eta), Unit::MAX);
        assert!(o.to_crisp().eval(&eta));
    }

    #[test]
    fn crisp_translation_of_range() {
        let o = offer(OfferShape::Range { min: 0, max: 2 });
        let inside = Assignment::new().bind("x", 1);
        let outside = Assignment::new().bind("x", 3);
        assert!(o.to_crisp().eval(&inside));
        assert!(!o.to_crisp().eval(&outside));
    }

    #[test]
    fn json_roundtrip() {
        let doc = QosDocument::new("svc")
            .with_offer(offer(OfferShape::Constant { level: 0.9 }))
            .with_offer(QosOffer {
                attribute: Attribute::Availability,
                variable: "slots".into(),
                shape: OfferShape::Range { min: 1, max: 8 },
            });
        let json = doc.to_json().unwrap();
        let back = QosDocument::from_json(&json).unwrap();
        assert_eq!(back, doc);
        assert!(back.offer(Attribute::Availability).is_some());
        assert!(back.offer(Attribute::Safety).is_none());
    }
}
