//! Service composition with semiring QoS aggregation.
//!
//! Service aggregators "consolidate multiple services into a new,
//! single service offering" (Sec. 3); the broker/orchestrator selects
//! one provider per stage and the composed QoS is the `⊗`-combination
//! of the stage constraints. Because `×` distributes over `+`, the
//! end-to-end consistency level of stages over *disjoint* negotiation
//! variables is exactly the `×`-product of the per-stage levels — the
//! algebra the paper relies on when it "combines the levels of the
//! components".

use softsoa_core::{Constraint, Domains, MissingDomainError};
use softsoa_semiring::{Residuated, Semiring};

use crate::{Broker, NegotiationError, NegotiationRequest, QosOffer, Sla};

/// A composed (aggregated) service: the per-stage SLAs plus the
/// combined QoS constraint.
#[derive(Debug, Clone)]
pub struct Composition<S: Semiring> {
    /// The per-stage agreements, in request order.
    pub slas: Vec<Sla<S>>,
    /// The combined store constraint of all stages (`⊗` of the final
    /// per-stage stores).
    pub constraint: Constraint<S>,
    /// The domains of every stage variable.
    pub domains: Domains,
    /// The end-to-end agreed level (`⊗`-combination of stage levels).
    pub end_to_end_level: S::Value,
}

impl<S: Semiring> Composition<S> {
    /// The composed service's *interface*: the combined constraint
    /// projected onto the given variables (the paper's "projecting
    /// over some variables leads to the interface of the service").
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a projected-out variable has
    /// no domain.
    pub fn interface(
        &self,
        vars: &[softsoa_core::Var],
    ) -> Result<Constraint<S>, MissingDomainError> {
        self.constraint.project(vars, &self.domains)
    }
}

impl<S: Residuated> Broker<S> {
    /// Composes a pipeline of services: negotiates each stage
    /// independently (best provider per stage) and aggregates the QoS.
    ///
    /// Stage variables should be distinct; the end-to-end level is
    /// then the `×`-product of the stage levels.
    ///
    /// # Errors
    ///
    /// Propagates the first stage's [`NegotiationError`]; a single
    /// failing stage fails the whole composition (the paper's
    /// monitored composition must satisfy *all* component
    /// requirements).
    pub fn compose<F>(
        &self,
        stages: &[NegotiationRequest<S>],
        translate: F,
    ) -> Result<Composition<S>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S> + Copy,
    {
        let semiring = self.semiring().clone();
        let mut slas = Vec::with_capacity(stages.len());
        let mut domains = Domains::new();
        let mut constraint = Constraint::always(semiring.clone());
        let mut level = semiring.one();
        for stage in stages {
            let sla = self.negotiate(stage, translate)?;
            level = semiring.times(&level, &sla.agreed_level);
            domains.insert(stage.variable.clone(), stage.domain.clone());
            // Recreate the agreed store constraint for the chosen
            // provider: client policy ⊗ chosen provider offers.
            let registry = self.registry();
            let service = registry
                .get(&sla.service)
                .expect("negotiated service is registered");
            let mut stage_constraint = stage.constraint.clone();
            for offer in &service.qos.offers {
                if offer.variable == stage.variable.name() {
                    stage_constraint = stage_constraint.combine(&translate(offer));
                }
            }
            constraint = constraint.combine(&stage_constraint);
            slas.push(sla);
        }
        Ok(Composition {
            slas,
            constraint,
            domains,
            end_to_end_level: level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OfferShape, QosDocument, Registry, ServiceDescription};
    use softsoa_core::{Domain, Var};
    use softsoa_dependability::Attribute;
    use softsoa_nmsccp::Interval;
    use softsoa_semiring::{Probabilistic, Unit};

    fn provider(id: &str, capability: &str, var: &str, level: f64) -> ServiceDescription {
        ServiceDescription::new(
            id,
            "acme",
            capability,
            QosDocument::new(id).with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: var.into(),
                shape: OfferShape::Constant { level },
            }),
        )
    }

    fn stage(capability: &str, var: &str) -> NegotiationRequest<Probabilistic> {
        NegotiationRequest {
            capability: capability.into(),
            variable: Var::new(var),
            domain: Domain::ints(0..=1),
            constraint: Constraint::always(Probabilistic),
            acceptance: Interval::any(&Probabilistic),
        }
    }

    #[test]
    fn pipeline_reliability_multiplies() {
        let mut registry = Registry::new();
        registry.publish(provider("red", "red-filter", "r", 0.9));
        registry.publish(provider("bw", "bw-filter", "b", 0.96));
        let broker = Broker::new(Probabilistic, registry);
        let composition = broker
            .compose(
                &[stage("red-filter", "r"), stage("bw-filter", "b")],
                QosOffer::to_probabilistic,
            )
            .unwrap();
        assert_eq!(composition.slas.len(), 2);
        assert!((composition.end_to_end_level.get() - 0.864).abs() < 1e-12);
        // Aggregate level equals the consistency of the combined store
        // (distributivity over disjoint stage variables).
        let direct = composition
            .constraint
            .consistency(&composition.domains)
            .unwrap();
        assert_eq!(direct, composition.end_to_end_level);
    }

    #[test]
    fn composition_fails_if_any_stage_fails() {
        let mut registry = Registry::new();
        registry.publish(provider("red", "red-filter", "r", 0.9));
        let broker = Broker::new(Probabilistic, registry);
        let err = broker
            .compose(
                &[stage("red-filter", "r"), stage("bw-filter", "b")],
                QosOffer::to_probabilistic,
            )
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoProvider(_)));
    }

    #[test]
    fn interface_projects_out_stage_variables() {
        let mut registry = Registry::new();
        registry.publish(provider("red", "red-filter", "r", 0.9));
        let broker = Broker::new(Probabilistic, registry);
        let composition = broker
            .compose(&[stage("red-filter", "r")], QosOffer::to_probabilistic)
            .unwrap();
        let iface = composition.interface(&[]).unwrap();
        assert!(iface.scope().is_empty());
        assert_eq!(
            iface.eval(&softsoa_core::Assignment::new()),
            Unit::new(0.9).unwrap()
        );
    }
}
