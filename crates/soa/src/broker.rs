//! The QoS broker and its negotiation protocol (Sec. 4, Fig. 6).
//!
//! The broker sits between clients and providers, embeds a soft
//! constraint solver, and runs the five-step protocol of the paper:
//!
//! 1. the client requests a binding, stating the required QoS;
//! 2. the broker *discovers* matching providers in the registry;
//! 3. the broker *negotiates*: client and provider policies are
//!    translated into soft constraints and executed as `nmsccp`
//!    agents on the broker's store;
//! 4. the offered and required QoS are compared — the agreed QoS is
//!    the consistency level of the combined store, accepted iff it
//!    lies within the client's checked-transition interval;
//! 5. on success a *binding* (an [`Sla`]) is returned to both parties.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use softsoa_core::solve::{BranchAndBound, Parallelism, Solution, Solver, SolverConfig, VarOrder};
use softsoa_core::{Assignment, Constraint, Domain, Domains, Scsp, SolveError, Val, Var};
use softsoa_nmsccp::{Agent, Interpreter, Interval, Outcome, Program, SemanticsError, Store};
use softsoa_semiring::{Residuated, Semiring};
use softsoa_telemetry::Telemetry;

use crate::registry::ProviderId;
use crate::{QosOffer, Registry, ServiceDescription, ServiceId};

/// A client's request for a service binding (protocol step 1).
#[derive(Debug, Clone)]
pub struct NegotiationRequest<S: Semiring> {
    /// The capability to discover providers by.
    pub capability: String,
    /// The negotiation variable (e.g. failures to absorb, processors).
    pub variable: Var,
    /// The variable's domain.
    pub domain: Domain,
    /// The client's own policy, as a soft constraint.
    pub constraint: Constraint<S>,
    /// The client's acceptance interval (Fig. 3 checked transition):
    /// the agreed level must fall inside it.
    pub acceptance: Interval<S>,
}

/// A concluded Service Level Agreement (protocol step 5).
#[derive(Debug, Clone)]
pub struct Sla<S: Semiring> {
    /// The bound service.
    pub service: ServiceId,
    /// Its provider.
    pub provider: ProviderId,
    /// The agreed QoS level (`σ ⇓ ∅` of the final store).
    pub agreed_level: S::Value,
    /// The best value of the negotiation variable and its level.
    pub binding: Option<(Assignment, S::Value)>,
}

/// An error produced by a negotiation.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum NegotiationError {
    /// No provider advertises the requested capability (step 2 found
    /// nothing).
    NoProvider(String),
    /// Providers exist, but no negotiation reached an agreement inside
    /// the client's acceptance interval.
    NoAgreement(String),
    /// The client's acceptance interval is intrinsically contradictory
    /// (its lower threshold is better than its upper one — the
    /// parenthesised side conditions of the paper's Fig. 3).
    InvalidAcceptance(String),
    /// The underlying `nmsccp` machinery failed.
    Semantics(SemanticsError),
    /// Solving for the best binding failed.
    Solve(SolveError),
}

impl fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiationError::NoProvider(cap) => {
                write!(f, "no provider advertises capability `{cap}`")
            }
            NegotiationError::NoAgreement(cap) => {
                write!(f, "no agreement reached for capability `{cap}`")
            }
            NegotiationError::InvalidAcceptance(cap) => write!(
                f,
                "the acceptance interval for `{cap}` is contradictory (lower bound better than upper)"
            ),
            NegotiationError::Semantics(e) => write!(f, "{e}"),
            NegotiationError::Solve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NegotiationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NegotiationError::Semantics(e) => Some(e),
            NegotiationError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SemanticsError> for NegotiationError {
    fn from(e: SemanticsError) -> NegotiationError {
        NegotiationError::Semantics(e)
    }
}

impl From<SolveError> for NegotiationError {
    fn from(e: SolveError) -> NegotiationError {
        NegotiationError::Solve(e)
    }
}

/// The QoS broker: a registry plus an embedded soft constraint solver
/// and `nmsccp` engine.
///
/// The broker is generic in the semiring, so the same machinery
/// negotiates hours of failure recovery (weighted), preference levels
/// (fuzzy, Fig. 5) or reliabilities (probabilistic); the caller
/// supplies the QoS-document translation for its semiring.
///
/// # Examples
///
/// The fuzzy agreement of Fig. 5 — client preference rising with the
/// resource, provider preference falling, agreement at the
/// intersection (level 0.5):
///
/// ```
/// use softsoa_core::{Constraint, Domain, Var};
/// use softsoa_nmsccp::Interval;
/// use softsoa_semiring::{Fuzzy, Unit};
/// use softsoa_soa::{Broker, NegotiationRequest, OfferShape, QosDocument,
///     QosOffer, Registry, ServiceDescription};
/// use softsoa_dependability::Attribute;
///
/// let mut registry = Registry::new();
/// registry.publish(ServiceDescription::new(
///     "svc-1", "acme", "web-service",
///     QosDocument::new("svc-1").with_offer(QosOffer {
///         attribute: Attribute::Reliability,
///         variable: "x".into(),
///         // Provider preference falls from 1 at x=1 to 0 at x=9.
///         shape: OfferShape::Piecewise { points: vec![(1, 1.0), (9, 0.0)] },
///     })));
///
/// let request = NegotiationRequest {
///     capability: "web-service".into(),
///     variable: Var::new("x"),
///     domain: Domain::ints(1..=9),
///     // Client preference rises from 0 at x=1 to 1 at x=9.
///     constraint: Constraint::unary(Fuzzy, "x", |v| {
///         Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
///     }),
///     acceptance: Interval::levels(Unit::new(0.3).unwrap(), Unit::MAX),
/// };
///
/// let broker = Broker::new(Fuzzy, registry);
/// let sla = broker.negotiate(&request, QosOffer::to_fuzzy)?;
/// assert_eq!(sla.agreed_level, Unit::new(0.5).unwrap());
/// # Ok::<(), softsoa_soa::NegotiationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Broker<S: Semiring> {
    semiring: S,
    registry: Registry,
    pub(crate) telemetry: Telemetry,
    pub(crate) cache: SolveCache,
    solver: SolverConfig,
}

/// A cross-round cache of binding-solve witnesses.
///
/// Negotiation re-solves near-identical single-variable problems on
/// every provider, relaxation rung and chaos retry. The cache keys each
/// binding problem by a structural hash (variable, domain, a few probe
/// levels of the agreed store's policy) and remembers the winning
/// domain value; the next structurally matching solve re-evaluates that
/// witness on its *own* store — so the seeded level is achievable by
/// construction, even across hash collisions — and hands it to
/// [`BranchAndBound::solve_seeded`] as a warm incumbent. Hits are
/// counted on the `solver.warm_hits` telemetry counter.
///
/// Clones share the underlying table, so a cloned [`Broker`] keeps
/// benefiting from (and feeding) the same cache.
#[derive(Debug, Clone, Default)]
pub(crate) struct SolveCache {
    entries: Arc<Mutex<HashMap<u64, Val>>>,
}

impl SolveCache {
    fn lookup(&self, key: u64) -> Option<Val> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    fn store(&self, key: u64, witness: Val) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, witness);
    }
}

/// Domain points probed when hashing a binding problem: enough to
/// separate stores that differ anywhere a small problem can differ,
/// cheap enough that a key never costs more than a handful of evals.
const KEY_PROBES: usize = 4;

/// The structural hash (FNV-1a) of a single-variable binding problem.
///
/// Collisions are a heuristic miss, never an unsoundness: the cached
/// witness is re-evaluated on the actual store before seeding.
fn binding_key<S: Semiring>(variable: &Var, domain: &Domain, sigma: &Constraint<S>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let eat = |hash: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *hash ^= u64::from(b);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&mut hash, variable.name().as_bytes());
    let values = domain.values();
    eat(&mut hash, format!("{values:?}").as_bytes());
    let probes = values.len().min(KEY_PROBES);
    for k in 0..probes {
        let i = if probes > 1 {
            k * (values.len() - 1) / (probes - 1)
        } else {
            0
        };
        let level = sigma.eval(&Assignment::new().bind(variable.clone(), values[i].clone()));
        eat(&mut hash, format!("{level:?}").as_bytes());
    }
    hash
}

impl<S: Residuated> Broker<S> {
    /// Creates a broker over a registry.
    pub fn new(semiring: S, registry: Registry) -> Broker<S> {
        Broker {
            semiring,
            registry,
            telemetry: Telemetry::disabled(),
            cache: SolveCache::default(),
            // Binding problems are tiny: sequential search wins, and
            // the default root propagation / decomposition are no-ops
            // on a single variable.
            solver: SolverConfig::default().with_parallelism(Parallelism::Sequential),
        }
    }

    /// Overrides the engine configuration used for binding solves
    /// (propagation mode, decomposition, parallelism, bounds). Any
    /// configuration yields the same agreed levels; this is a
    /// performance knob surfaced to the CLI's `--propagate` and
    /// `--decompose` flags.
    pub fn with_solver_config(mut self, solver: SolverConfig) -> Broker<S> {
        self.solver = solver;
        self
    }

    /// Attaches a telemetry handle: per-provider session latency and
    /// outcomes, binding-solve counters, and the nmsccp run metrics
    /// of every negotiation session flow through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Broker<S> {
        self.telemetry = telemetry;
        self
    }

    /// The semiring the broker negotiates over.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }

    /// The broker's registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the registry (to publish or deregister).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Negotiates a binding for the request, returning the best
    /// agreement among all discovered providers (steps 1–5).
    ///
    /// `translate` converts each provider QoS offer into a soft
    /// constraint over the broker's semiring — the paper's
    /// XML-to-constraint translation step.
    ///
    /// # Errors
    ///
    /// [`NegotiationError::NoProvider`] if discovery finds nothing,
    /// [`NegotiationError::NoAgreement`] if every per-provider
    /// negotiation fails the client's acceptance interval.
    pub fn negotiate<F>(
        &self,
        request: &NegotiationRequest<S>,
        translate: F,
    ) -> Result<Sla<S>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        let agreements = self.negotiate_all(request, translate)?;
        // Keep the maximal agreed levels (non-dominated under the
        // semiring order), then the first by service id.
        agreements
            .into_iter()
            .fold(None::<Sla<S>>, |best, sla| match best {
                None => Some(sla),
                Some(best) => {
                    if self.semiring.lt(&best.agreed_level, &sla.agreed_level) {
                        Some(sla)
                    } else {
                        Some(best)
                    }
                }
            })
            .ok_or_else(|| NegotiationError::NoAgreement(request.capability.clone()))
    }

    /// Negotiates with every discovered provider and returns every
    /// *successful* agreement (in registry order).
    ///
    /// # Errors
    ///
    /// [`NegotiationError::NoProvider`] if discovery finds nothing, or
    /// an underlying semantics/solve error.
    pub fn negotiate_all<F>(
        &self,
        request: &NegotiationRequest<S>,
        translate: F,
    ) -> Result<Vec<Sla<S>>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        let candidates = self.registry.discover(&request.capability);
        if candidates.is_empty() {
            return Err(NegotiationError::NoProvider(request.capability.clone()));
        }
        // Reject contradictory acceptance intervals up front (Fig. 3's
        // side conditions): they would silently suspend every session.
        let domains = Domains::new().with(request.variable.clone(), request.domain.clone());
        if matches!(
            request.acceptance.validate(&self.semiring, &domains),
            Err(softsoa_nmsccp::ValidationError::Invalid(_))
        ) {
            return Err(NegotiationError::InvalidAcceptance(
                request.capability.clone(),
            ));
        }
        // The client side of the session is provider-independent: build
        // its agent (and the session domains) once instead of
        // re-translating the client policy for every provider.
        let client = Agent::tell(
            request.constraint.clone(),
            Interval::any(&self.semiring),
            Agent::ask(
                Constraint::always(self.semiring.clone()),
                request.acceptance.clone(),
                Agent::success(),
            ),
        );
        let mut agreements = Vec::new();
        for service in candidates {
            if let Some(sla) =
                self.negotiate_one(request, service, &client, &domains, &translate)?
            {
                agreements.push(sla);
            }
        }
        Ok(agreements)
    }

    /// Negotiates with iterative *relaxation*: if no provider yields an
    /// agreement inside the acceptance interval, the client retracts
    /// the next constraint from `relaxations` (a concession, applied
    /// through nmsccp's nonmonotonic `retract`) and the negotiation is
    /// retried — the generalisation of the paper's Example 2, where
    /// retracting `c1` turns a failed negotiation into an agreement.
    ///
    /// Returns the SLA together with the number of concessions spent.
    ///
    /// # Errors
    ///
    /// [`NegotiationError::NoProvider`] if discovery finds nothing;
    /// [`NegotiationError::NoAgreement`] if even the fully relaxed
    /// negotiation fails.
    pub fn negotiate_with_relaxation<F>(
        &self,
        request: &NegotiationRequest<S>,
        relaxations: &[Constraint<S>],
        translate: F,
    ) -> Result<(Sla<S>, usize), NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S> + Copy,
    {
        let mut current = request.clone();
        for (concessions, relaxation) in std::iter::once(None)
            .chain(relaxations.iter().map(Some))
            .enumerate()
        {
            if let Some(relaxation) = relaxation {
                // The concession: divide the client's policy by the
                // relaxed part (Example 2's partial removal).
                current.constraint = current.constraint.divide(relaxation);
            }
            match self.negotiate(&current, translate) {
                Ok(sla) => {
                    self.telemetry
                        .count("broker.concessions", concessions as u64);
                    return Ok((sla, concessions));
                }
                Err(NegotiationError::NoAgreement(_)) => continue,
                Err(other) => return Err(other),
            }
        }
        Err(NegotiationError::NoAgreement(request.capability.clone()))
    }

    /// Runs the nmsccp negotiation session against one provider
    /// (steps 3–4); `None` means the session failed the acceptance
    /// check.
    fn negotiate_one<F>(
        &self,
        request: &NegotiationRequest<S>,
        service: &ServiceDescription,
        client: &Agent<S>,
        domains: &Domains,
        translate: &F,
    ) -> Result<Option<Sla<S>>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        // Translate the offers concerning the negotiation variable.
        let Some(provider_constraint) =
            provider_constraint(service, request.variable.name(), translate)
        else {
            return Ok(None);
        };

        // The provider agent publishes its policy; the (precompiled)
        // client agent publishes its own and then checks the agreement
        // interval.
        let provider = Agent::tell(
            provider_constraint,
            Interval::any(&self.semiring),
            Agent::success(),
        );
        let store = Store::empty(self.semiring.clone(), domains.clone());
        let session_start = self.telemetry.enabled().then(std::time::Instant::now);
        self.telemetry.incr("broker.sessions");
        let report = Interpreter::new(Program::new())
            .with_telemetry(self.telemetry.clone())
            .run(Agent::par(provider, client.clone()), store)?;
        if let Some(start) = session_start {
            self.telemetry.timing_labeled(
                "broker.provider.latency",
                service.id.as_str(),
                start.elapsed(),
            );
        }

        let final_store = match report.outcome {
            Outcome::Success { store } => store,
            _ => {
                self.telemetry
                    .count_labeled("broker.provider.rejections", service.id.as_str(), 1);
                return Ok(None);
            }
        };
        self.telemetry
            .count_labeled("broker.provider.agreements", service.id.as_str(), 1);
        let agreed_level = final_store.consistency().map_err(SemanticsError::from)?;

        // The concrete binding: the best value of the negotiation
        // variable under the agreed store.
        let solution =
            self.solve_binding(&request.variable, &request.domain, final_store.sigma())?;
        let binding = solution.best().first().cloned();

        Ok(Some(Sla {
            service: service.id.clone(),
            provider: service.provider.clone(),
            agreed_level,
            binding,
        }))
    }

    /// Solves the single-variable binding problem, warm-starting the
    /// incumbent from a structurally matching previous round's witness
    /// (see [`SolveCache`]). Identical `blevel` and first-best binding
    /// as the cold reference solve; warm hits increment the
    /// `solver.warm_hits` telemetry counter and the run's stats flow
    /// out on the usual `solve.*` / `solver.bound_prunes` families.
    pub(crate) fn solve_binding(
        &self,
        variable: &Var,
        domain: &Domain,
        sigma: &Constraint<S>,
    ) -> Result<Solution<S>, SolveError> {
        let problem = Scsp::new(self.semiring.clone())
            .with_domain(variable.clone(), domain.clone())
            .with_constraint(sigma.clone())
            .of_interest([variable.clone()]);
        if !self.semiring.is_total() {
            // Partially ordered QoS: stay on the reference solver.
            let solution = problem.solve()?;
            if let Some(stats) = solution.stats() {
                stats.emit(&self.telemetry, "binding");
            }
            return Ok(solution);
        }

        let key = binding_key(variable, domain, sigma);
        let seed = self.cache.lookup(key).and_then(|witness| {
            domain
                .values()
                .contains(&witness)
                .then(|| sigma.eval(&Assignment::new().bind(variable.clone(), witness)))
        });
        // Branch-and-bound in input order reproduces the reference
        // solver's lexicographically first best binding,
        // witness-exactly, warm or cold, under every engine
        // configuration (single-variable problems have one component
        // and propagation preserves the first witness).
        let solver = BranchAndBound::with_config(VarOrder::Input, self.solver);
        let solution = match seed {
            Some(level) if !self.semiring.is_zero(&level) => {
                self.telemetry.incr("solver.warm_hits");
                solver.solve_seeded(&problem, level)?
            }
            _ => solver.solve(&problem)?,
        };
        if let Some(stats) = solution.stats() {
            stats.emit(&self.telemetry, "binding");
        }
        if let Some((eta, _)) = solution.best().first() {
            if let Some(val) = eta.get(variable) {
                self.cache.store(key, val.clone());
            }
        }
        Ok(solution)
    }
}

/// Combines a provider's offers on the negotiation variable into its
/// single policy constraint; `None` if no offer matches the variable.
pub(crate) fn provider_constraint<S: Semiring, F>(
    service: &ServiceDescription,
    variable: &str,
    translate: &F,
) -> Option<Constraint<S>>
where
    F: Fn(&QosOffer) -> Constraint<S>,
{
    let offers: Vec<Constraint<S>> = service
        .qos
        .offers
        .iter()
        .filter(|o| o.variable == variable)
        .map(translate)
        .collect();
    let first = offers.first()?.clone();
    Some(offers.iter().skip(1).fold(first, |acc, c| acc.combine(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OfferShape, QosDocument};
    use softsoa_dependability::Attribute;
    use softsoa_semiring::{Fuzzy, Unit, Weight, Weighted};

    fn fuzzy_provider(id: &str, points: Vec<(i64, f64)>) -> ServiceDescription {
        ServiceDescription::new(
            id,
            "acme",
            "web-service",
            QosDocument::new(id).with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "x".into(),
                shape: OfferShape::Piecewise { points },
            }),
        )
    }

    fn fig5_request() -> NegotiationRequest<Fuzzy> {
        NegotiationRequest {
            capability: "web-service".into(),
            variable: Var::new("x"),
            domain: Domain::ints(1..=9),
            constraint: Constraint::unary(Fuzzy, "x", |v| {
                Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
            }),
            acceptance: Interval::levels(Unit::new(0.3).unwrap(), Unit::MAX),
        }
    }

    #[test]
    fn fig5_fuzzy_agreement_at_half() {
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc-1", vec![(1, 1.0), (9, 0.0)]));
        let broker = Broker::new(Fuzzy, registry);
        let sla = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();
        assert_eq!(sla.agreed_level, Unit::new(0.5).unwrap());
        // The agreement is at the intersection x = 5.
        let (eta, level) = sla.binding.unwrap();
        assert_eq!(eta.get(&Var::new("x")).unwrap().as_int(), Some(5));
        assert_eq!(level, Unit::new(0.5).unwrap());
    }

    #[test]
    fn broker_picks_the_better_provider() {
        let mut registry = Registry::new();
        // svc-flat keeps a high preference everywhere → better blevel
        // (0.8 against svc-steep's 0.5).
        registry.publish(fuzzy_provider("svc-steep", vec![(1, 1.0), (9, 0.0)]));
        registry.publish(fuzzy_provider("svc-flat", vec![(1, 0.8), (9, 0.8)]));
        let broker = Broker::new(Fuzzy, registry);
        let sla = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();
        assert_eq!(sla.service, ServiceId::new("svc-flat"));
        assert_eq!(sla.agreed_level, Unit::new(0.8).unwrap());
    }

    #[test]
    fn acceptance_interval_rejects_poor_agreements() {
        let mut registry = Registry::new();
        // The provider's preference peaks at 0.2: below the client's
        // floor of 0.3.
        registry.publish(fuzzy_provider("svc-bad", vec![(1, 0.2), (9, 0.2)]));
        let broker = Broker::new(Fuzzy, registry);
        let err = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoAgreement(_)));
    }

    #[test]
    fn contradictory_acceptance_is_rejected_up_front() {
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc", vec![(1, 1.0), (9, 0.0)]));
        let broker = Broker::new(Fuzzy, registry);
        let mut request = fig5_request();
        // Fuzzy: lower 0.9 is better than upper 0.2 → contradictory.
        request.acceptance = Interval::levels(Unit::new(0.9).unwrap(), Unit::new(0.2).unwrap());
        let err = broker.negotiate(&request, QosOffer::to_fuzzy).unwrap_err();
        assert!(matches!(err, NegotiationError::InvalidAcceptance(_)));
    }

    #[test]
    fn missing_capability_is_no_provider() {
        let broker = Broker::new(Fuzzy, Registry::new());
        let err = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoProvider(_)));
    }

    #[test]
    fn provider_without_matching_variable_is_skipped() {
        let mut registry = Registry::new();
        registry.publish(ServiceDescription::new(
            "svc-other",
            "acme",
            "web-service",
            QosDocument::new("svc-other").with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "y".into(), // not the negotiation variable
                shape: OfferShape::Constant { level: 1.0 },
            }),
        ));
        let broker = Broker::new(Fuzzy, registry);
        let err = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoAgreement(_)));
    }

    #[test]
    fn relaxation_turns_failure_into_agreement() {
        // The paper's Example 2 through the broker: the client's policy
        // c4 = x + 5 makes the merged cost 3x + 5 ∉ [1, 4]; conceding
        // c1 = x + 3 leaves 2x + 2, level 2 ∈ [1, 4].
        let mut registry = Registry::new();
        registry.publish(ServiceDescription::new(
            "svc",
            "acme",
            "failure-mgmt",
            QosDocument::new("svc").with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "x".into(),
                shape: OfferShape::Linear {
                    slope: 2.0,
                    intercept: 0.0,
                }, // c3 = 2x
            }),
        ));
        let request = NegotiationRequest {
            capability: "failure-mgmt".into(),
            variable: Var::new("x"),
            domain: Domain::ints(0..=10),
            constraint: Constraint::unary(Weighted, "x", |v| {
                Weight::saturating(v.as_int().unwrap() as f64 + 5.0) // c4
            }),
            acceptance: Interval::levels(
                Weight::new(4.0).unwrap(), // no worse than 4 hours
                Weight::new(1.0).unwrap(), // no better than 1 hour
            ),
        };
        let broker = Broker::new(Weighted, registry);
        // Without relaxation: no agreement (level 5 ∉ [1, 4]).
        assert!(matches!(
            broker.negotiate(&request, QosOffer::to_weighted),
            Err(NegotiationError::NoAgreement(_))
        ));
        // Conceding c1 = x + 3 reaches level 2.
        let c1 = Constraint::unary(Weighted, "x", |v| {
            Weight::saturating(v.as_int().unwrap() as f64 + 3.0)
        });
        let (sla, concessions) = broker
            .negotiate_with_relaxation(&request, &[c1], QosOffer::to_weighted)
            .unwrap();
        assert_eq!(concessions, 1);
        assert_eq!(sla.agreed_level, Weight::new(2.0).unwrap());
    }

    #[test]
    fn exhausted_relaxations_still_fail() {
        let broker = Broker::new(Weighted, {
            let mut r = Registry::new();
            r.publish(ServiceDescription::new(
                "svc",
                "acme",
                "compute",
                QosDocument::new("svc").with_offer(QosOffer {
                    attribute: Attribute::Reliability,
                    variable: "x".into(),
                    shape: OfferShape::Constant { level: 100.0 }, // hopeless cost
                }),
            ));
            r
        });
        let request = NegotiationRequest {
            capability: "compute".into(),
            variable: Var::new("x"),
            domain: Domain::ints(0..=3),
            constraint: Constraint::always(Weighted),
            acceptance: Interval::levels(Weight::new(4.0).unwrap(), Weight::ZERO),
        };
        let err = broker
            .negotiate_with_relaxation(&request, &[], QosOffer::to_weighted)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoAgreement(_)));
    }

    #[test]
    fn repeated_negotiations_warm_start_and_agree() {
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc-1", vec![(1, 1.0), (9, 0.0)]));
        let (telemetry, sink) = Telemetry::recording();
        let broker = Broker::new(Fuzzy, registry).with_telemetry(telemetry);
        let cold = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();
        assert_eq!(sink.snapshot().counters.get("solver.warm_hits"), None);
        // The second round re-solves the structurally identical binding
        // problem: a warm hit, with the identical agreement.
        let warm = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();
        assert_eq!(
            sink.snapshot().counters.get("solver.warm_hits"),
            Some(&1u64)
        );
        assert_eq!(warm.agreed_level, cold.agreed_level);
        assert_eq!(warm.binding, cold.binding);
        assert_eq!(warm.service, cold.service);
    }

    #[test]
    fn hoisted_client_compilation_keeps_agreements() {
        // negotiate_all over one registry must agree, provider by
        // provider, with negotiating each provider in isolation — the
        // client-side hoist may not change any per-provider outcome.
        let providers = [
            ("svc-steep", vec![(1, 1.0), (9, 0.0)]),
            ("svc-flat", vec![(1, 0.8), (9, 0.8)]),
            ("svc-bad", vec![(1, 0.2), (9, 0.2)]),
        ];
        let mut registry = Registry::new();
        for (id, points) in &providers {
            registry.publish(fuzzy_provider(id, points.clone()));
        }
        let all = Broker::new(Fuzzy, registry)
            .negotiate_all(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();

        let mut isolated = Vec::new();
        for (id, points) in &providers {
            let mut registry = Registry::new();
            registry.publish(fuzzy_provider(id, points.clone()));
            match Broker::new(Fuzzy, registry).negotiate_all(&fig5_request(), QosOffer::to_fuzzy) {
                Ok(slas) => isolated.extend(slas),
                Err(NegotiationError::NoProvider(_)) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }

        // Registry discovery and the fixture array order providers
        // differently; compare by service id.
        let mut all = all;
        all.sort_by(|a, b| a.service.cmp(&b.service));
        isolated.sort_by(|a, b| a.service.cmp(&b.service));
        assert_eq!(all.len(), isolated.len());
        for (a, b) in all.iter().zip(&isolated) {
            assert_eq!(a.service, b.service);
            assert_eq!(a.agreed_level, b.agreed_level);
            assert_eq!(a.binding, b.binding);
        }
    }

    #[test]
    fn weighted_negotiation_minimises_cost() {
        // Weighted variant: provider charges 2x, client charges x + 1;
        // acceptance requires total cost within [1, 6] at the best x.
        let mut registry = Registry::new();
        registry.publish(ServiceDescription::new(
            "svc-w",
            "acme",
            "compute",
            QosDocument::new("svc-w").with_offer(QosOffer {
                attribute: Attribute::Availability,
                variable: "x".into(),
                shape: OfferShape::Linear {
                    slope: 2.0,
                    intercept: 0.0,
                },
            }),
        ));
        let request = NegotiationRequest {
            capability: "compute".into(),
            variable: Var::new("x"),
            domain: Domain::ints(0..=10),
            constraint: Constraint::unary(Weighted, "x", |v| {
                Weight::saturating(v.as_int().unwrap() as f64 + 1.0)
            }),
            acceptance: Interval::levels(Weight::new(6.0).unwrap(), Weight::new(1.0).unwrap()),
        };
        let broker = Broker::new(Weighted, registry);
        let sla = broker.negotiate(&request, QosOffer::to_weighted).unwrap();
        // Best at x = 0: cost 1.
        assert_eq!(sla.agreed_level, Weight::new(1.0).unwrap());
        let (eta, _) = sla.binding.unwrap();
        assert_eq!(eta.get(&Var::new("x")).unwrap().as_int(), Some(0));
    }
}
