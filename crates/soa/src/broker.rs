//! The QoS broker and its negotiation protocol (Sec. 4, Fig. 6).
//!
//! The broker sits between clients and providers, embeds a soft
//! constraint solver, and runs the five-step protocol of the paper:
//!
//! 1. the client requests a binding, stating the required QoS;
//! 2. the broker *discovers* matching providers in the registry;
//! 3. the broker *negotiates*: client and provider policies are
//!    translated into soft constraints and executed as `nmsccp`
//!    agents on the broker's store;
//! 4. the offered and required QoS are compared — the agreed QoS is
//!    the consistency level of the combined store, accepted iff it
//!    lies within the client's checked-transition interval;
//! 5. on success a *binding* (an [`Sla`]) is returned to both parties.

use std::collections::HashMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, MutexGuard};

use softsoa_core::solve::{
    BranchAndBound, ConstraintId, IncrementalSolver, Parallelism, Solution, Solver, SolverConfig,
    VarOrder,
};
use softsoa_core::{Assignment, Constraint, Domain, Domains, Scsp, SolveError, Val, Var};
use softsoa_nmsccp::{Agent, Interpreter, Interval, Outcome, Program, SemanticsError, Store};
use softsoa_semiring::{Residuated, Semiring};
use softsoa_telemetry::Telemetry;

use crate::registry::ProviderId;
use crate::{QosOffer, Registry, ServiceDescription, ServiceId};

/// A client's request for a service binding (protocol step 1).
#[derive(Debug, Clone)]
pub struct NegotiationRequest<S: Semiring> {
    /// The capability to discover providers by.
    pub capability: String,
    /// The negotiation variable (e.g. failures to absorb, processors).
    pub variable: Var,
    /// The variable's domain.
    pub domain: Domain,
    /// The client's own policy, as a soft constraint.
    pub constraint: Constraint<S>,
    /// The client's acceptance interval (Fig. 3 checked transition):
    /// the agreed level must fall inside it.
    pub acceptance: Interval<S>,
}

/// A concluded Service Level Agreement (protocol step 5).
#[derive(Debug, Clone)]
pub struct Sla<S: Semiring> {
    /// The bound service.
    pub service: ServiceId,
    /// Its provider.
    pub provider: ProviderId,
    /// The agreed QoS level (`σ ⇓ ∅` of the final store).
    pub agreed_level: S::Value,
    /// The best value of the negotiation variable and its level.
    pub binding: Option<(Assignment, S::Value)>,
}

/// An error produced by a negotiation.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum NegotiationError {
    /// No provider advertises the requested capability (step 2 found
    /// nothing).
    NoProvider(String),
    /// Providers exist, but no negotiation reached an agreement inside
    /// the client's acceptance interval.
    NoAgreement(String),
    /// The client's acceptance interval is intrinsically contradictory
    /// (its lower threshold is better than its upper one — the
    /// parenthesised side conditions of the paper's Fig. 3).
    InvalidAcceptance(String),
    /// The underlying `nmsccp` machinery failed.
    Semantics(SemanticsError),
    /// Solving for the best binding failed.
    Solve(SolveError),
}

impl fmt::Display for NegotiationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiationError::NoProvider(cap) => {
                write!(f, "no provider advertises capability `{cap}`")
            }
            NegotiationError::NoAgreement(cap) => {
                write!(f, "no agreement reached for capability `{cap}`")
            }
            NegotiationError::InvalidAcceptance(cap) => write!(
                f,
                "the acceptance interval for `{cap}` is contradictory (lower bound better than upper)"
            ),
            NegotiationError::Semantics(e) => write!(f, "{e}"),
            NegotiationError::Solve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for NegotiationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NegotiationError::Semantics(e) => Some(e),
            NegotiationError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SemanticsError> for NegotiationError {
    fn from(e: SemanticsError) -> NegotiationError {
        NegotiationError::Semantics(e)
    }
}

impl From<SolveError> for NegotiationError {
    fn from(e: SolveError) -> NegotiationError {
        NegotiationError::Solve(e)
    }
}

/// The QoS broker: a registry plus an embedded soft constraint solver
/// and `nmsccp` engine.
///
/// The broker is generic in the semiring, so the same machinery
/// negotiates hours of failure recovery (weighted), preference levels
/// (fuzzy, Fig. 5) or reliabilities (probabilistic); the caller
/// supplies the QoS-document translation for its semiring.
///
/// # Examples
///
/// The fuzzy agreement of Fig. 5 — client preference rising with the
/// resource, provider preference falling, agreement at the
/// intersection (level 0.5):
///
/// ```
/// use softsoa_core::{Constraint, Domain, Var};
/// use softsoa_nmsccp::Interval;
/// use softsoa_semiring::{Fuzzy, Unit};
/// use softsoa_soa::{Broker, NegotiationRequest, OfferShape, QosDocument,
///     QosOffer, Registry, ServiceDescription};
/// use softsoa_dependability::Attribute;
///
/// let mut registry = Registry::new();
/// registry.publish(ServiceDescription::new(
///     "svc-1", "acme", "web-service",
///     QosDocument::new("svc-1").with_offer(QosOffer {
///         attribute: Attribute::Reliability,
///         variable: "x".into(),
///         // Provider preference falls from 1 at x=1 to 0 at x=9.
///         shape: OfferShape::Piecewise { points: vec![(1, 1.0), (9, 0.0)] },
///     })));
///
/// let request = NegotiationRequest {
///     capability: "web-service".into(),
///     variable: Var::new("x"),
///     domain: Domain::ints(1..=9),
///     // Client preference rises from 0 at x=1 to 1 at x=9.
///     constraint: Constraint::unary(Fuzzy, "x", |v| {
///         Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
///     }),
///     acceptance: Interval::levels(Unit::new(0.3).unwrap(), Unit::MAX),
/// };
///
/// let broker = Broker::new(Fuzzy, registry);
/// let sla = broker.negotiate(&request, QosOffer::to_fuzzy)?;
/// assert_eq!(sla.agreed_level, Unit::new(0.5).unwrap());
/// # Ok::<(), softsoa_soa::NegotiationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Broker<S: Semiring> {
    semiring: S,
    registry: EpochRegistry,
    pub(crate) telemetry: Telemetry,
    pub(crate) cache: SolveCache,
    solver: SolverConfig,
    incremental: bool,
    /// One persistent incremental solver per binding problem shape
    /// (negotiation variable + domain), shared across clones.
    binding_solvers: BindingSolvers<S>,
    /// Cross-batch contention history (per-client grants, starvation
    /// ages), shared across clones so every worker's joint allocations
    /// see the same fairness ledger.
    pub(crate) contention: crate::contention::ContentionState,
}

/// Persistent per-binding-shape incremental solvers, keyed by the
/// negotiation variable and its domain, shared across broker clones.
///
/// Like [`SolveCache`], the table is bounded (LRU eviction at
/// [`DEFAULT_BINDING_SOLVER_CAPACITY`]): a churn stream whose domains
/// vary would otherwise retain one solver — witness, cache traffic and
/// all — per shape ever seen. Solvers are *taken out* of the table for
/// the duration of a solve and re-inserted afterwards, so the mutex is
/// only held for the map operations and concurrent negotiations on
/// cloned brokers never serialize on each other's searches.
#[derive(Debug, Clone)]
struct BindingSolvers<S: Semiring> {
    inner: Arc<Mutex<BindingSolversInner<S>>>,
}

#[derive(Debug)]
struct BindingSolversInner<S: Semiring> {
    entries: HashMap<(Var, Vec<Val>), BindingEntry<S>>,
    stamp: u64,
    capacity: usize,
}

#[derive(Debug)]
struct BindingEntry<S: Semiring> {
    solver: IncrementalSolver<S>,
    id: ConstraintId,
    stamp: u64,
}

/// Default bound on persistent per-shape binding solvers. Smaller than
/// the witness cache's: each entry holds a full solver (domains,
/// constraint, last witness), not just a winning value.
pub(crate) const DEFAULT_BINDING_SOLVER_CAPACITY: usize = 64;

/// Capacity limits for the broker's two bounded tables, surfaced so a
/// long-running deployment (notably the [`crate::server`] daemon) can
/// size memory explicitly instead of inheriting magic numbers.
///
/// Both bounds are entry counts, clamped to at least 1. Any capacity —
/// including 1 — yields identical negotiation results; smaller tables
/// only trade away warm-start and witness-reuse hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerConfig {
    /// Bound on cached binding witnesses ([`SolveCache`] entries).
    pub binding_cache_capacity: usize,
    /// Bound on persistent per-shape incremental binding solvers.
    pub binding_solver_capacity: usize,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            binding_cache_capacity: DEFAULT_BINDING_CACHE_CAPACITY,
            binding_solver_capacity: DEFAULT_BINDING_SOLVER_CAPACITY,
        }
    }
}

impl<S: Semiring> Default for BindingSolvers<S> {
    fn default() -> BindingSolvers<S> {
        BindingSolvers::with_capacity(DEFAULT_BINDING_SOLVER_CAPACITY)
    }
}

impl<S: Semiring> BindingSolvers<S> {
    fn with_capacity(capacity: usize) -> BindingSolvers<S> {
        BindingSolvers {
            inner: Arc::new(Mutex::new(BindingSolversInner {
                entries: HashMap::new(),
                stamp: 0,
                capacity: capacity.max(1),
            })),
        }
    }

    /// Removes and returns the solver for `key`, leaving the slot
    /// empty while the caller solves outside the lock.
    fn take(&self, key: &(Var, Vec<Val>)) -> Option<BindingEntry<S>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.remove(key)
    }

    /// Puts a solver back (or registers a fresh one), batch-evicting
    /// the least-recently-used entries at capacity. If a racing
    /// negotiation re-created the same shape meanwhile,
    /// last-writer-wins — each solve is self-contained, so dropping
    /// the loser only costs its warm state.
    fn put(&self, key: (Var, Vec<Val>), solver: IncrementalSolver<S>, id: ConstraintId) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.stamp += 1;
        let stamp = inner.stamp;
        if inner.entries.len() >= inner.capacity && !inner.entries.contains_key(&key) {
            // Drop the oldest `capacity / EVICTION_DIVISOR` entries in
            // one O(n) pass instead of scanning for a single victim on
            // every insert at capacity — the same amortized scheme as
            // the core component cache.
            let k = (inner.capacity / EVICTION_DIVISOR)
                .max(1)
                .min(inner.entries.len());
            let mut stamps: Vec<u64> = inner.entries.values().map(|e| e.stamp).collect();
            let (_, cutoff, _) = stamps.select_nth_unstable(k - 1);
            let cutoff = *cutoff;
            inner.entries.retain(|_, e| e.stamp > cutoff);
        }
        inner
            .entries
            .insert(key, BindingEntry { solver, id, stamp });
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }
}

/// Epoch-versioned registry storage: the registry lives behind an
/// [`Arc`] swapped out wholesale on every write, so readers take a
/// cheap [`RegistrySnapshot`] (an `Arc` clone under a momentary lock)
/// and never block on — or observe a partial state from — a writer.
/// Each write bumps the epoch; [`SolveCache`] entries are stamped with
/// the epoch they were computed under so eviction can prefer stale
/// rounds.
///
/// Writers *serialize*: [`RegistryWriter`] holds the `write` mutex for
/// its whole lifetime, so a second writer (on this broker or a clone)
/// blocks until the first has published. Without that, two writers
/// staging from the same epoch would each publish a full copy and the
/// later drop would silently discard the earlier one's mutations.
/// Readers only ever touch the `state` mutex, held momentarily.
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochRegistry {
    shared: Arc<RegistryShared>,
}

#[derive(Debug, Default)]
struct RegistryShared {
    state: Mutex<(u64, Arc<Registry>)>,
    write: Mutex<()>,
}

impl EpochRegistry {
    fn new(registry: Registry) -> EpochRegistry {
        EpochRegistry {
            shared: Arc::new(RegistryShared {
                state: Mutex::new((0, Arc::new(registry))),
                write: Mutex::new(()),
            }),
        }
    }

    pub(crate) fn snapshot(&self) -> RegistrySnapshot {
        let guard = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        RegistrySnapshot {
            epoch: guard.0,
            registry: Arc::clone(&guard.1),
        }
    }

    fn epoch(&self) -> u64 {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .0
    }
}

/// A read-only view of the registry at one epoch. Derefs to
/// [`Registry`], so discovery and lookups read as before; the snapshot
/// stays consistent even while writers publish new epochs.
#[derive(Debug)]
pub struct RegistrySnapshot {
    epoch: u64,
    registry: Arc<Registry>,
}

impl RegistrySnapshot {
    /// The epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Deref for RegistrySnapshot {
    type Target = Registry;

    fn deref(&self) -> &Registry {
        &self.registry
    }
}

/// A write guard over the registry: mutations stage on a private copy
/// and are published atomically — with an epoch bump — when the guard
/// drops. Readers holding a [`RegistrySnapshot`] are unaffected.
///
/// The guard holds the registry's writer lock, so concurrent writers
/// (e.g. on cloned brokers) queue behind it and always stage from the
/// latest published epoch — no mutation is ever lost to a concurrent
/// publish. Dropping the guard during a panic unwind discards the
/// staged copy instead of publishing a half-applied mutation.
#[derive(Debug)]
pub struct RegistryWriter<'a> {
    owner: &'a EpochRegistry,
    /// Serializes writers for the guard's lifetime.
    _serialize: MutexGuard<'a, ()>,
    staged: Option<Registry>,
    telemetry: Telemetry,
}

impl Deref for RegistryWriter<'_> {
    type Target = Registry;

    fn deref(&self) -> &Registry {
        self.staged.as_ref().expect("staged registry present")
    }
}

impl DerefMut for RegistryWriter<'_> {
    fn deref_mut(&mut self) -> &mut Registry {
        self.staged.as_mut().expect("staged registry present")
    }
}

impl Drop for RegistryWriter<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // The mutation sequence was cut short; publishing the
            // staged copy would commit a half-applied write.
            return;
        }
        let staged = self.staged.take().expect("staged registry present");
        let mut guard = self
            .owner
            .shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        guard.0 += 1;
        guard.1 = Arc::new(staged);
        self.telemetry
            .gauge("broker.registry.epoch", guard.0 as i64);
    }
}

/// A cross-round cache of binding-solve witnesses.
///
/// Negotiation re-solves near-identical single-variable problems on
/// every provider, relaxation rung and chaos retry. The cache keys each
/// binding problem by a structural hash (variable, domain, a few probe
/// levels of the agreed store's policy) and remembers the winning
/// domain value; the next structurally matching solve re-evaluates that
/// witness on its *own* store — so the seeded level is achievable by
/// construction, even across hash collisions — and hands it to
/// [`BranchAndBound::solve_seeded`] as a warm incumbent. Hits are
/// counted on the `solver.warm_hits` telemetry counter.
///
/// Clones share the underlying table, so a cloned [`Broker`] keeps
/// benefiting from (and feeding) the same cache.
/// The table is bounded: each entry carries the registry epoch it was
/// computed under and a last-use stamp, and at capacity (default
/// [`DEFAULT_BINDING_CACHE_CAPACITY`], tunable via
/// [`Broker::with_cache_capacity`]) the entry from the stalest epoch —
/// least recently used within it — is evicted. A sustained churn
/// stream therefore keeps memory flat instead of growing one entry per
/// store shape ever seen.
#[derive(Debug, Clone)]
pub(crate) struct SolveCache {
    inner: Arc<Mutex<SolveCacheInner>>,
}

#[derive(Debug)]
struct SolveCacheInner {
    entries: HashMap<u64, CacheEntry>,
    stamp: u64,
    capacity: usize,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    witness: Val,
    epoch: u64,
    stamp: u64,
}

/// Default bound on cached binding witnesses.
pub(crate) const DEFAULT_BINDING_CACHE_CAPACITY: usize = 1024;

/// At capacity, both broker caches drop the oldest
/// `capacity / EVICTION_DIVISOR` entries (at least one) in one pass,
/// making eviction amortized-constant per insert under sustained churn
/// (mirrors the core component cache's scheme).
const EVICTION_DIVISOR: usize = 10;

impl Default for SolveCache {
    fn default() -> SolveCache {
        SolveCache::with_capacity(DEFAULT_BINDING_CACHE_CAPACITY)
    }
}

impl SolveCache {
    fn with_capacity(capacity: usize) -> SolveCache {
        SolveCache {
            inner: Arc::new(Mutex::new(SolveCacheInner {
                entries: HashMap::new(),
                stamp: 0,
                capacity: capacity.max(1),
            })),
        }
    }

    fn lookup(&self, key: u64) -> Option<Val> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.stamp += 1;
        let stamp = inner.stamp;
        let entry = inner.entries.get_mut(&key)?;
        entry.stamp = stamp;
        Some(entry.witness.clone())
    }

    fn store(&self, key: u64, witness: Val, epoch: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.stamp += 1;
        let stamp = inner.stamp;
        if inner.entries.len() >= inner.capacity && !inner.entries.contains_key(&key) {
            // Batch-evict from the stalest epochs first, LRU within
            // them: drop the oldest `capacity / EVICTION_DIVISOR`
            // entries (at least one) in a single O(n) pass, so
            // sustained churn pays amortized-constant eviction cost
            // instead of a full scan per insert.
            let k = (inner.capacity / EVICTION_DIVISOR)
                .max(1)
                .min(inner.entries.len());
            let mut order: Vec<(u64, u64)> =
                inner.entries.values().map(|e| (e.epoch, e.stamp)).collect();
            let (_, cutoff, _) = order.select_nth_unstable(k - 1);
            let cutoff = *cutoff;
            inner.entries.retain(|_, e| (e.epoch, e.stamp) > cutoff);
        }
        inner.entries.insert(
            key,
            CacheEntry {
                witness,
                epoch,
                stamp,
            },
        );
    }

    pub(crate) fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }
}

/// Domain points probed when hashing a binding problem: enough to
/// separate stores that differ anywhere a small problem can differ,
/// cheap enough that a key never costs more than a handful of evals.
const KEY_PROBES: usize = 4;

/// The structural hash (FNV-1a) of a single-variable binding problem.
///
/// Collisions are a heuristic miss, never an unsoundness: the cached
/// witness is re-evaluated on the actual store before seeding.
fn binding_key<S: Semiring>(variable: &Var, domain: &Domain, sigma: &Constraint<S>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let eat = |hash: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *hash ^= u64::from(b);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&mut hash, variable.name().as_bytes());
    let values = domain.values();
    eat(&mut hash, format!("{values:?}").as_bytes());
    let probes = values.len().min(KEY_PROBES);
    for k in 0..probes {
        let i = if probes > 1 {
            k * (values.len() - 1) / (probes - 1)
        } else {
            0
        };
        let level = sigma.eval(&Assignment::new().bind(variable.clone(), values[i].clone()));
        eat(&mut hash, format!("{level:?}").as_bytes());
    }
    hash
}

impl<S: Residuated> Broker<S> {
    /// Creates a broker over a registry.
    pub fn new(semiring: S, registry: Registry) -> Broker<S> {
        Broker {
            semiring,
            registry: EpochRegistry::new(registry),
            telemetry: Telemetry::disabled(),
            cache: SolveCache::default(),
            // Binding problems are tiny: sequential search wins, and
            // the default root propagation / decomposition are no-ops
            // on a single variable.
            solver: SolverConfig::default().with_parallelism(Parallelism::Sequential),
            incremental: false,
            binding_solvers: BindingSolvers::default(),
            contention: crate::contention::ContentionState::default(),
        }
    }

    /// Routes binding solves through persistent per-problem
    /// [`IncrementalSolver`]s: each negotiation round applies the
    /// agreed store as an `update` delta instead of building a fresh
    /// problem, re-searching only when the policy actually changed and
    /// warm-starting from the previous round's optimum. Identical
    /// agreed levels and bindings; work avoided is reported on the
    /// `solver.incremental.*` telemetry family.
    pub fn with_incremental(mut self, incremental: bool) -> Broker<S> {
        self.incremental = incremental;
        self
    }

    /// Bounds the binding-witness cache (entries, not bytes). Existing
    /// entries are kept; the bound applies from the next insertion.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Broker<S> {
        self.cache = SolveCache::with_capacity(capacity);
        self
    }

    /// Applies a [`BrokerConfig`], replacing both bounded tables with
    /// fresh ones at the configured capacities. Call before the broker
    /// is cloned or used — the replaced tables are no longer shared
    /// with pre-existing clones.
    pub fn with_broker_config(mut self, config: BrokerConfig) -> Broker<S> {
        self.cache = SolveCache::with_capacity(config.binding_cache_capacity);
        self.binding_solvers = BindingSolvers::with_capacity(config.binding_solver_capacity);
        self
    }

    /// Overrides the engine configuration used for binding solves
    /// (propagation mode, decomposition, parallelism, bounds). Any
    /// configuration yields the same agreed levels; this is a
    /// performance knob surfaced to the CLI's `--propagate` and
    /// `--decompose` flags.
    pub fn with_solver_config(mut self, solver: SolverConfig) -> Broker<S> {
        self.solver = solver;
        self
    }

    /// Attaches a telemetry handle: per-provider session latency and
    /// outcomes, binding-solve counters, and the nmsccp run metrics
    /// of every negotiation session flow through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Broker<S> {
        self.telemetry = telemetry;
        self
    }

    /// The semiring the broker negotiates over.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }

    /// A consistent snapshot of the broker's registry at the current
    /// epoch. Snapshots never block writers (and vice versa); cloned
    /// brokers share the registry and see each other's epochs.
    pub fn registry(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Write access to the registry (to publish or deregister).
    /// Mutations stage privately and publish atomically — bumping the
    /// registry epoch — when the returned guard drops. Writers
    /// serialize: while one guard is alive, `registry_mut` on a clone
    /// of this broker blocks, so no concurrent write is ever lost.
    pub fn registry_mut(&mut self) -> RegistryWriter<'_> {
        let serialize = self
            .registry
            .shared
            .write
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Stage only after the writer lock is held, so serialized
        // writers always build on each other's published state.
        let staged = (*self.registry.snapshot().registry).clone();
        RegistryWriter {
            owner: &self.registry,
            _serialize: serialize,
            staged: Some(staged),
            telemetry: self.telemetry.clone(),
        }
    }

    /// Negotiates a binding for the request, returning the best
    /// agreement among all discovered providers (steps 1–5).
    ///
    /// `translate` converts each provider QoS offer into a soft
    /// constraint over the broker's semiring — the paper's
    /// XML-to-constraint translation step.
    ///
    /// # Errors
    ///
    /// [`NegotiationError::NoProvider`] if discovery finds nothing,
    /// [`NegotiationError::NoAgreement`] if every per-provider
    /// negotiation fails the client's acceptance interval.
    pub fn negotiate<F>(
        &self,
        request: &NegotiationRequest<S>,
        translate: F,
    ) -> Result<Sla<S>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        let agreements = self.negotiate_all(request, translate)?;
        // Keep the maximal agreed levels (non-dominated under the
        // semiring order), then the first by service id.
        agreements
            .into_iter()
            .fold(None::<Sla<S>>, |best, sla| match best {
                None => Some(sla),
                Some(best) => {
                    if self.semiring.lt(&best.agreed_level, &sla.agreed_level) {
                        Some(sla)
                    } else {
                        Some(best)
                    }
                }
            })
            .ok_or_else(|| NegotiationError::NoAgreement(request.capability.clone()))
    }

    /// Negotiates with every discovered provider and returns every
    /// *successful* agreement (in registry order).
    ///
    /// # Errors
    ///
    /// [`NegotiationError::NoProvider`] if discovery finds nothing, or
    /// an underlying semantics/solve error.
    pub fn negotiate_all<F>(
        &self,
        request: &NegotiationRequest<S>,
        translate: F,
    ) -> Result<Vec<Sla<S>>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        // One snapshot per negotiation: every provider in this round is
        // discovered and negotiated against the same registry epoch,
        // even if writers publish mid-round.
        let registry = self.registry.snapshot();
        self.negotiate_all_at(&registry, request, translate)
    }

    /// [`Broker::negotiate_all`] against a caller-supplied snapshot, so
    /// a *batch* of negotiations (contended allocation) can share one
    /// registry epoch across every client.
    pub(crate) fn negotiate_all_at<F>(
        &self,
        registry: &RegistrySnapshot,
        request: &NegotiationRequest<S>,
        translate: F,
    ) -> Result<Vec<Sla<S>>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        self.telemetry
            .gauge("broker.registry.epoch", registry.epoch() as i64);
        let candidates = registry.discover(&request.capability);
        if candidates.is_empty() {
            return Err(NegotiationError::NoProvider(request.capability.clone()));
        }
        // Reject contradictory acceptance intervals up front (Fig. 3's
        // side conditions): they would silently suspend every session.
        let domains = Domains::new().with(request.variable.clone(), request.domain.clone());
        if matches!(
            request.acceptance.validate(&self.semiring, &domains),
            Err(softsoa_nmsccp::ValidationError::Invalid(_))
        ) {
            return Err(NegotiationError::InvalidAcceptance(
                request.capability.clone(),
            ));
        }
        // The client side of the session is provider-independent: build
        // its agent (and the session domains) once instead of
        // re-translating the client policy for every provider.
        let client = Agent::tell(
            request.constraint.clone(),
            Interval::any(&self.semiring),
            Agent::ask(
                Constraint::always(self.semiring.clone()),
                request.acceptance.clone(),
                Agent::success(),
            ),
        );
        let mut agreements = Vec::new();
        for service in candidates {
            if let Some(sla) =
                self.negotiate_one(request, service, &client, &domains, &translate)?
            {
                agreements.push(sla);
            }
        }
        Ok(agreements)
    }

    /// Negotiates with iterative *relaxation*: if no provider yields an
    /// agreement inside the acceptance interval, the client retracts
    /// the next constraint from `relaxations` (a concession, applied
    /// through nmsccp's nonmonotonic `retract`) and the negotiation is
    /// retried — the generalisation of the paper's Example 2, where
    /// retracting `c1` turns a failed negotiation into an agreement.
    ///
    /// Returns the SLA together with the number of concessions spent.
    ///
    /// # Errors
    ///
    /// [`NegotiationError::NoProvider`] if discovery finds nothing;
    /// [`NegotiationError::NoAgreement`] if even the fully relaxed
    /// negotiation fails.
    pub fn negotiate_with_relaxation<F>(
        &self,
        request: &NegotiationRequest<S>,
        relaxations: &[Constraint<S>],
        translate: F,
    ) -> Result<(Sla<S>, usize), NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S> + Copy,
    {
        let mut current = request.clone();
        for (concessions, relaxation) in std::iter::once(None)
            .chain(relaxations.iter().map(Some))
            .enumerate()
        {
            if let Some(relaxation) = relaxation {
                // The concession: divide the client's policy by the
                // relaxed part (Example 2's partial removal).
                current.constraint = current.constraint.divide(relaxation);
            }
            match self.negotiate(&current, translate) {
                Ok(sla) => {
                    self.telemetry
                        .count("broker.concessions", concessions as u64);
                    return Ok((sla, concessions));
                }
                Err(NegotiationError::NoAgreement(_)) => continue,
                Err(other) => return Err(other),
            }
        }
        Err(NegotiationError::NoAgreement(request.capability.clone()))
    }

    /// Runs the nmsccp negotiation session against one provider
    /// (steps 3–4); `None` means the session failed the acceptance
    /// check.
    fn negotiate_one<F>(
        &self,
        request: &NegotiationRequest<S>,
        service: &ServiceDescription,
        client: &Agent<S>,
        domains: &Domains,
        translate: &F,
    ) -> Result<Option<Sla<S>>, NegotiationError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        // Translate the offers concerning the negotiation variable.
        let Some(provider_constraint) =
            provider_constraint(service, request.variable.name(), translate)
        else {
            return Ok(None);
        };

        // The provider agent publishes its policy; the (precompiled)
        // client agent publishes its own and then checks the agreement
        // interval.
        let provider = Agent::tell(
            provider_constraint,
            Interval::any(&self.semiring),
            Agent::success(),
        );
        let store = Store::empty(self.semiring.clone(), domains.clone());
        let session_start = self.telemetry.enabled().then(std::time::Instant::now);
        self.telemetry.incr("broker.sessions");
        let report = Interpreter::new(Program::new())
            .with_telemetry(self.telemetry.clone())
            .run(Agent::par(provider, client.clone()), store)?;
        if let Some(start) = session_start {
            self.telemetry.timing_labeled(
                "broker.provider.latency",
                service.id.as_str(),
                start.elapsed(),
            );
        }

        let final_store = match report.outcome {
            Outcome::Success { store } => store,
            _ => {
                self.telemetry
                    .count_labeled("broker.provider.rejections", service.id.as_str(), 1);
                return Ok(None);
            }
        };
        self.telemetry
            .count_labeled("broker.provider.agreements", service.id.as_str(), 1);
        let agreed_level = final_store.consistency().map_err(SemanticsError::from)?;

        // The concrete binding: the best value of the negotiation
        // variable under the agreed store.
        let solution =
            self.solve_binding(&request.variable, &request.domain, final_store.sigma())?;
        let binding = solution.best().first().cloned();

        Ok(Some(Sla {
            service: service.id.clone(),
            provider: service.provider.clone(),
            agreed_level,
            binding,
        }))
    }

    /// Solves the single-variable binding problem, warm-starting the
    /// incumbent from a structurally matching previous round's witness
    /// (see [`SolveCache`]). Identical `blevel` and first-best binding
    /// as the cold reference solve; warm hits increment the
    /// `solver.warm_hits` telemetry counter and the run's stats flow
    /// out on the usual `solve.*` / `solver.bound_prunes` families.
    pub(crate) fn solve_binding(
        &self,
        variable: &Var,
        domain: &Domain,
        sigma: &Constraint<S>,
    ) -> Result<Solution<S>, SolveError> {
        if self.incremental && self.semiring.is_total() {
            return self.solve_binding_incremental(variable, domain, sigma);
        }
        let problem = Scsp::new(self.semiring.clone())
            .with_domain(variable.clone(), domain.clone())
            .with_constraint(sigma.clone())
            .of_interest([variable.clone()]);
        if !self.semiring.is_total() {
            // Partially ordered QoS: stay on the reference solver.
            let solution = problem.solve()?;
            if let Some(stats) = solution.stats() {
                stats.emit(&self.telemetry, "binding");
            }
            return Ok(solution);
        }

        let key = binding_key(variable, domain, sigma);
        let seed = self.cache.lookup(key).and_then(|witness| {
            domain
                .values()
                .contains(&witness)
                .then(|| sigma.eval(&Assignment::new().bind(variable.clone(), witness)))
        });
        // Branch-and-bound in input order reproduces the reference
        // solver's lexicographically first best binding,
        // witness-exactly, warm or cold, under every engine
        // configuration (single-variable problems have one component
        // and propagation preserves the first witness).
        let solver = BranchAndBound::with_config(VarOrder::Input, self.solver);
        let solution = match seed {
            Some(level) if !self.semiring.is_zero(&level) => {
                self.telemetry.incr("solver.warm_hits");
                solver.solve_seeded(&problem, level)?
            }
            _ => solver.solve(&problem)?,
        };
        if let Some(stats) = solution.stats() {
            stats.emit(&self.telemetry, "binding");
        }
        if let Some((eta, _)) = solution.best().first() {
            if let Some(val) = eta.get(variable) {
                self.cache.store(key, val.clone(), self.registry.epoch());
                self.telemetry
                    .gauge("broker.cache.entries", self.cache.len() as i64);
            }
        }
        Ok(solution)
    }

    /// The `--incremental` binding path: a persistent
    /// [`IncrementalSolver`] per `(variable, domain)` shape receives
    /// the agreed store as an `update_constraint` delta and re-solves
    /// only what the delta dirtied, warm-starting from the previous
    /// round's witness. Same `blevel` and first-best binding as the
    /// from-scratch path (the differential harness in
    /// `tests/incremental_properties.rs` pins this).
    fn solve_binding_incremental(
        &self,
        variable: &Var,
        domain: &Domain,
        sigma: &Constraint<S>,
    ) -> Result<Solution<S>, SolveError> {
        let key = (variable.clone(), domain.values().to_vec());
        // Take the persistent solver out of the shared table (or build
        // a fresh one) so the solve itself runs without the lock:
        // concurrent incremental negotiations on cloned brokers must
        // not serialize on each other's searches.
        let (mut solver, id) = match self.binding_solvers.take(&key) {
            Some(entry) => {
                let mut solver = entry.solver;
                solver.update_constraint(entry.id, sigma.clone());
                (solver, entry.id)
            }
            None => {
                let mut solver = IncrementalSolver::new(self.semiring.clone())
                    .with_domain(variable.clone(), domain.clone())
                    .of_interest([variable.clone()])
                    .with_config(VarOrder::Input, self.solver);
                let id = solver.add_constraint(sigma.clone());
                (solver, id)
            }
        };
        let before = solver.stats().clone();
        let solution = solver.solve();
        let after = solver.stats().clone();
        // Re-insert even on error: the solver's state stays valid and
        // the next round may still reuse it.
        self.binding_solvers.put(key, solver, id);
        let solution = solution?;
        self.telemetry.incr("solver.incremental.solves");
        self.telemetry
            .count("solver.incremental.deltas", after.deltas - before.deltas);
        self.telemetry.count(
            "solver.incremental.components_resolved",
            after.components_resolved - before.components_resolved,
        );
        self.telemetry.count(
            "solver.incremental.components_reused",
            after.components_reused - before.components_reused,
        );
        self.telemetry.count(
            "solver.incremental.warm_seeds",
            after.warm_seeds - before.warm_seeds,
        );
        self.telemetry.gauge(
            "solver.incremental.reuse_ratio_permille",
            (after.reuse_ratio() * 1000.0) as i64,
        );
        Ok(solution)
    }
}

/// Combines a provider's offers on the negotiation variable into its
/// single policy constraint; `None` if no offer matches the variable.
pub(crate) fn provider_constraint<S: Semiring, F>(
    service: &ServiceDescription,
    variable: &str,
    translate: &F,
) -> Option<Constraint<S>>
where
    F: Fn(&QosOffer) -> Constraint<S>,
{
    let offers: Vec<Constraint<S>> = service
        .qos
        .offers
        .iter()
        .filter(|o| o.variable == variable)
        .map(translate)
        .collect();
    let first = offers.first()?.clone();
    Some(offers.iter().skip(1).fold(first, |acc, c| acc.combine(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OfferShape, QosDocument};
    use softsoa_dependability::Attribute;
    use softsoa_semiring::{Fuzzy, Unit, Weight, Weighted};

    fn fuzzy_provider(id: &str, points: Vec<(i64, f64)>) -> ServiceDescription {
        ServiceDescription::new(
            id,
            "acme",
            "web-service",
            QosDocument::new(id).with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "x".into(),
                shape: OfferShape::Piecewise { points },
            }),
        )
    }

    fn fig5_request() -> NegotiationRequest<Fuzzy> {
        NegotiationRequest {
            capability: "web-service".into(),
            variable: Var::new("x"),
            domain: Domain::ints(1..=9),
            constraint: Constraint::unary(Fuzzy, "x", |v| {
                Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
            }),
            acceptance: Interval::levels(Unit::new(0.3).unwrap(), Unit::MAX),
        }
    }

    #[test]
    fn fig5_fuzzy_agreement_at_half() {
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc-1", vec![(1, 1.0), (9, 0.0)]));
        let broker = Broker::new(Fuzzy, registry);
        let sla = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();
        assert_eq!(sla.agreed_level, Unit::new(0.5).unwrap());
        // The agreement is at the intersection x = 5.
        let (eta, level) = sla.binding.unwrap();
        assert_eq!(eta.get(&Var::new("x")).unwrap().as_int(), Some(5));
        assert_eq!(level, Unit::new(0.5).unwrap());
    }

    #[test]
    fn broker_picks_the_better_provider() {
        let mut registry = Registry::new();
        // svc-flat keeps a high preference everywhere → better blevel
        // (0.8 against svc-steep's 0.5).
        registry.publish(fuzzy_provider("svc-steep", vec![(1, 1.0), (9, 0.0)]));
        registry.publish(fuzzy_provider("svc-flat", vec![(1, 0.8), (9, 0.8)]));
        let broker = Broker::new(Fuzzy, registry);
        let sla = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();
        assert_eq!(sla.service, ServiceId::new("svc-flat"));
        assert_eq!(sla.agreed_level, Unit::new(0.8).unwrap());
    }

    #[test]
    fn acceptance_interval_rejects_poor_agreements() {
        let mut registry = Registry::new();
        // The provider's preference peaks at 0.2: below the client's
        // floor of 0.3.
        registry.publish(fuzzy_provider("svc-bad", vec![(1, 0.2), (9, 0.2)]));
        let broker = Broker::new(Fuzzy, registry);
        let err = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoAgreement(_)));
    }

    #[test]
    fn contradictory_acceptance_is_rejected_up_front() {
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc", vec![(1, 1.0), (9, 0.0)]));
        let broker = Broker::new(Fuzzy, registry);
        let mut request = fig5_request();
        // Fuzzy: lower 0.9 is better than upper 0.2 → contradictory.
        request.acceptance = Interval::levels(Unit::new(0.9).unwrap(), Unit::new(0.2).unwrap());
        let err = broker.negotiate(&request, QosOffer::to_fuzzy).unwrap_err();
        assert!(matches!(err, NegotiationError::InvalidAcceptance(_)));
    }

    #[test]
    fn missing_capability_is_no_provider() {
        let broker = Broker::new(Fuzzy, Registry::new());
        let err = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoProvider(_)));
    }

    #[test]
    fn provider_without_matching_variable_is_skipped() {
        let mut registry = Registry::new();
        registry.publish(ServiceDescription::new(
            "svc-other",
            "acme",
            "web-service",
            QosDocument::new("svc-other").with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "y".into(), // not the negotiation variable
                shape: OfferShape::Constant { level: 1.0 },
            }),
        ));
        let broker = Broker::new(Fuzzy, registry);
        let err = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoAgreement(_)));
    }

    #[test]
    fn relaxation_turns_failure_into_agreement() {
        // The paper's Example 2 through the broker: the client's policy
        // c4 = x + 5 makes the merged cost 3x + 5 ∉ [1, 4]; conceding
        // c1 = x + 3 leaves 2x + 2, level 2 ∈ [1, 4].
        let mut registry = Registry::new();
        registry.publish(ServiceDescription::new(
            "svc",
            "acme",
            "failure-mgmt",
            QosDocument::new("svc").with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "x".into(),
                shape: OfferShape::Linear {
                    slope: 2.0,
                    intercept: 0.0,
                }, // c3 = 2x
            }),
        ));
        let request = NegotiationRequest {
            capability: "failure-mgmt".into(),
            variable: Var::new("x"),
            domain: Domain::ints(0..=10),
            constraint: Constraint::unary(Weighted, "x", |v| {
                Weight::saturating(v.as_int().unwrap() as f64 + 5.0) // c4
            }),
            acceptance: Interval::levels(
                Weight::new(4.0).unwrap(), // no worse than 4 hours
                Weight::new(1.0).unwrap(), // no better than 1 hour
            ),
        };
        let broker = Broker::new(Weighted, registry);
        // Without relaxation: no agreement (level 5 ∉ [1, 4]).
        assert!(matches!(
            broker.negotiate(&request, QosOffer::to_weighted),
            Err(NegotiationError::NoAgreement(_))
        ));
        // Conceding c1 = x + 3 reaches level 2.
        let c1 = Constraint::unary(Weighted, "x", |v| {
            Weight::saturating(v.as_int().unwrap() as f64 + 3.0)
        });
        let (sla, concessions) = broker
            .negotiate_with_relaxation(&request, &[c1], QosOffer::to_weighted)
            .unwrap();
        assert_eq!(concessions, 1);
        assert_eq!(sla.agreed_level, Weight::new(2.0).unwrap());
    }

    #[test]
    fn exhausted_relaxations_still_fail() {
        let broker = Broker::new(Weighted, {
            let mut r = Registry::new();
            r.publish(ServiceDescription::new(
                "svc",
                "acme",
                "compute",
                QosDocument::new("svc").with_offer(QosOffer {
                    attribute: Attribute::Reliability,
                    variable: "x".into(),
                    shape: OfferShape::Constant { level: 100.0 }, // hopeless cost
                }),
            ));
            r
        });
        let request = NegotiationRequest {
            capability: "compute".into(),
            variable: Var::new("x"),
            domain: Domain::ints(0..=3),
            constraint: Constraint::always(Weighted),
            acceptance: Interval::levels(Weight::new(4.0).unwrap(), Weight::ZERO),
        };
        let err = broker
            .negotiate_with_relaxation(&request, &[], QosOffer::to_weighted)
            .unwrap_err();
        assert!(matches!(err, NegotiationError::NoAgreement(_)));
    }

    #[test]
    fn repeated_negotiations_warm_start_and_agree() {
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc-1", vec![(1, 1.0), (9, 0.0)]));
        let (telemetry, sink) = Telemetry::recording();
        let broker = Broker::new(Fuzzy, registry).with_telemetry(telemetry);
        let cold = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();
        assert_eq!(sink.snapshot().counters.get("solver.warm_hits"), None);
        // The second round re-solves the structurally identical binding
        // problem: a warm hit, with the identical agreement.
        let warm = broker
            .negotiate(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();
        assert_eq!(
            sink.snapshot().counters.get("solver.warm_hits"),
            Some(&1u64)
        );
        assert_eq!(warm.agreed_level, cold.agreed_level);
        assert_eq!(warm.binding, cold.binding);
        assert_eq!(warm.service, cold.service);
    }

    #[test]
    fn hoisted_client_compilation_keeps_agreements() {
        // negotiate_all over one registry must agree, provider by
        // provider, with negotiating each provider in isolation — the
        // client-side hoist may not change any per-provider outcome.
        let providers = [
            ("svc-steep", vec![(1, 1.0), (9, 0.0)]),
            ("svc-flat", vec![(1, 0.8), (9, 0.8)]),
            ("svc-bad", vec![(1, 0.2), (9, 0.2)]),
        ];
        let mut registry = Registry::new();
        for (id, points) in &providers {
            registry.publish(fuzzy_provider(id, points.clone()));
        }
        let all = Broker::new(Fuzzy, registry)
            .negotiate_all(&fig5_request(), QosOffer::to_fuzzy)
            .unwrap();

        let mut isolated = Vec::new();
        for (id, points) in &providers {
            let mut registry = Registry::new();
            registry.publish(fuzzy_provider(id, points.clone()));
            match Broker::new(Fuzzy, registry).negotiate_all(&fig5_request(), QosOffer::to_fuzzy) {
                Ok(slas) => isolated.extend(slas),
                Err(NegotiationError::NoProvider(_)) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }

        // Registry discovery and the fixture array order providers
        // differently; compare by service id.
        let mut all = all;
        all.sort_by(|a, b| a.service.cmp(&b.service));
        isolated.sort_by(|a, b| a.service.cmp(&b.service));
        assert_eq!(all.len(), isolated.len());
        for (a, b) in all.iter().zip(&isolated) {
            assert_eq!(a.service, b.service);
            assert_eq!(a.agreed_level, b.agreed_level);
            assert_eq!(a.binding, b.binding);
        }
    }

    #[test]
    fn solve_cache_stays_bounded_under_churn() {
        // Regression: the binding cache used to be an unbounded
        // HashMap; a churning registry (every provider reshaping its
        // policy each round) grew it one entry per store shape ever
        // seen. It must stay at its capacity.
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc-1", vec![(1, 1.0), (9, 0.0)]));
        let broker = Broker::new(Fuzzy, registry).with_cache_capacity(8);
        let request = fig5_request();
        for round in 0..64u64 {
            // A distinct policy each round → a distinct structural key.
            let wobble = (round % 32) as f64 / 64.0;
            let sigma = Constraint::unary(Fuzzy, "x", move |v| {
                Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0 - wobble)
            });
            broker
                .solve_binding(&request.variable, &request.domain, &sigma)
                .unwrap();
        }
        assert!(broker.cache.len() <= 8, "cache grew past its capacity");
    }

    #[test]
    fn solve_cache_evicts_stalest_epoch_first() {
        // Pins the eviction order of the amortized batch scheme: at
        // capacity 4 each pass drops max(4/10, 1) = 1 entry, and the
        // victim is from the stalest (epoch, stamp) pair.
        let cache = SolveCache::with_capacity(4);
        cache.store(1, Val::Int(1), 5);
        cache.store(2, Val::Int(2), 1); // stalest epoch → first victim
        cache.store(3, Val::Int(3), 5);
        cache.store(4, Val::Int(4), 3); // next-stalest → second victim
        cache.store(5, Val::Int(5), 5);
        assert!(cache.lookup(2).is_none(), "stalest epoch must go first");
        cache.store(6, Val::Int(6), 5);
        assert!(cache.lookup(4).is_none(), "then the next-stalest epoch");
        for key in [1, 3, 5, 6] {
            assert!(cache.lookup(key).is_some(), "fresh entry {key} evicted");
        }
    }

    #[test]
    fn solve_cache_evicts_lru_within_an_epoch_in_batches() {
        // Same epoch everywhere → order falls back to the use stamp,
        // and capacity 20 drops 20/10 = 2 entries per eviction pass.
        let cache = SolveCache::with_capacity(20);
        for key in 0..20u64 {
            cache.store(key, Val::Int(key as i64), 7);
        }
        // Refresh key 0 so keys 1 and 2 hold the two oldest stamps.
        assert!(cache.lookup(0).is_some());
        cache.store(100, Val::Int(100), 7);
        assert_eq!(cache.len(), 19, "one batch pass drops two entries");
        assert!(cache.lookup(1).is_none(), "oldest stamp evicted");
        assert!(cache.lookup(2).is_none(), "second-oldest stamp evicted");
        assert!(cache.lookup(0).is_some(), "refreshed entry survives");
        assert!(cache.lookup(3).is_some(), "third-oldest survives the batch");
        // The next insert fits in the freed slot without evicting.
        cache.store(101, Val::Int(101), 7);
        assert_eq!(cache.len(), 20);
        assert!(cache.lookup(3).is_some());
    }

    #[test]
    fn binding_solvers_evict_least_recently_used_shapes() {
        let solvers: BindingSolvers<Fuzzy> = BindingSolvers::with_capacity(3);
        let shape = |name: &str| (Var::new(name), vec![Val::Int(1), Val::Int(2)]);
        let entry = || {
            let mut solver = IncrementalSolver::new(Fuzzy)
                .with_domain(Var::new("x"), Domain::ints(1..=2))
                .of_interest([Var::new("x")]);
            let id = solver.add_constraint(Constraint::unary(Fuzzy, "x", |_| Unit::MAX));
            (solver, id)
        };
        for name in ["a", "b", "c"] {
            let (solver, id) = entry();
            solvers.put(shape(name), solver, id);
        }
        // Refresh "a" (take + put bumps its stamp) so "b" is the LRU.
        let refreshed = solvers.take(&shape("a")).expect("entry a present");
        solvers.put(shape("a"), refreshed.solver, refreshed.id);
        let (solver, id) = entry();
        solvers.put(shape("d"), solver, id);
        assert_eq!(solvers.len(), 3);
        assert!(solvers.take(&shape("b")).is_none(), "LRU shape evicted");
        for name in ["a", "c", "d"] {
            assert!(solvers.take(&shape(name)).is_some(), "{name} survived");
        }
    }

    #[test]
    fn registry_snapshots_are_epoch_consistent() {
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc-1", vec![(1, 1.0), (9, 0.0)]));
        let mut broker = Broker::new(Fuzzy, registry);
        let before = broker.registry();
        assert_eq!(before.epoch(), 0);
        broker
            .registry_mut()
            .publish(fuzzy_provider("svc-2", vec![(1, 0.9), (9, 0.9)]));
        // The old snapshot still sees the pre-write registry; a fresh
        // snapshot sees the new epoch and the new provider.
        assert_eq!(before.len(), 1);
        let after = broker.registry();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.len(), 2);
        // Clones share the registry (and its epochs).
        let clone = broker.clone();
        broker.registry_mut().deregister(&ServiceId::new("svc-2"));
        assert_eq!(clone.registry().epoch(), 2);
        assert_eq!(clone.registry().len(), 1);
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        // Regression: writers used to stage read-copy-update style
        // with no conflict detection, so two cloned brokers writing
        // concurrently could both stage from the same epoch and the
        // later publish silently discarded the earlier one's services.
        let broker = Broker::new(Fuzzy, Registry::new());
        let mut clones: Vec<Broker<Fuzzy>> = (0..4).map(|_| broker.clone()).collect();
        std::thread::scope(|scope| {
            for (i, clone) in clones.iter_mut().enumerate() {
                scope.spawn(move || {
                    for j in 0..8 {
                        clone.registry_mut().publish(fuzzy_provider(
                            &format!("svc-{i}-{j}"),
                            vec![(1, 1.0), (9, 0.0)],
                        ));
                    }
                });
            }
        });
        assert_eq!(broker.registry().len(), 32, "every publish survived");
        assert_eq!(broker.registry().epoch(), 32, "one epoch per write");
    }

    #[test]
    fn panicking_writer_does_not_publish() {
        let mut broker = Broker::new(Fuzzy, Registry::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut writer = broker.registry_mut();
            writer.publish(fuzzy_provider("svc-half", vec![(1, 1.0), (9, 0.0)]));
            panic!("mutation sequence cut short");
        }));
        assert!(result.is_err());
        // The half-applied staged copy was discarded, not committed.
        assert_eq!(broker.registry().len(), 0);
        assert_eq!(broker.registry().epoch(), 0);
        // The writer lock was released by the unwind: writes still work.
        broker
            .registry_mut()
            .publish(fuzzy_provider("svc-next", vec![(1, 1.0), (9, 0.0)]));
        assert_eq!(broker.registry().len(), 1);
        assert_eq!(broker.registry().epoch(), 1);
    }

    #[test]
    fn binding_solvers_stay_bounded_under_domain_churn() {
        // Regression: the per-shape solver table was unbounded — a
        // churn stream whose domains vary grew one persistent solver
        // per shape ever seen.
        let broker = Broker::new(Fuzzy, Registry::new()).with_incremental(true);
        let variable = Var::new("x");
        for round in 0..(3 * DEFAULT_BINDING_SOLVER_CAPACITY as i64) {
            // A distinct domain each round → a distinct solver shape.
            let domain = Domain::ints(0..=(1 + round % 150));
            let sigma = Constraint::unary(Fuzzy, "x", |v| {
                Unit::clamped(v.as_int().unwrap() as f64 / 200.0)
            });
            broker.solve_binding(&variable, &domain, &sigma).unwrap();
        }
        assert!(
            broker.binding_solvers.len() <= DEFAULT_BINDING_SOLVER_CAPACITY,
            "solver table grew past its capacity"
        );
    }

    #[test]
    fn capacity_one_broker_config_still_solves() {
        // The tightest possible BrokerConfig (both tables bounded at a
        // single entry) must change nothing about negotiation results:
        // caches and persistent solvers are performance state only.
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc-1", vec![(1, 1.0), (9, 0.0)]));
        registry.publish(fuzzy_provider("svc-flat", vec![(1, 0.8), (9, 0.8)]));
        let reference = Broker::new(Fuzzy, registry.clone());
        let tight = Broker::new(Fuzzy, registry)
            .with_broker_config(BrokerConfig {
                binding_cache_capacity: 1,
                binding_solver_capacity: 1,
            })
            .with_incremental(true);
        for round in 0..4 {
            let a = reference
                .negotiate(&fig5_request(), QosOffer::to_fuzzy)
                .unwrap();
            let b = tight
                .negotiate(&fig5_request(), QosOffer::to_fuzzy)
                .unwrap();
            assert_eq!(a.agreed_level, b.agreed_level, "round {round}");
            assert_eq!(a.binding, b.binding, "round {round}");
            // Distinct shapes each round keep evicting the single slot.
            let domain = Domain::ints(0..=(2 + round));
            let sigma = Constraint::unary(Fuzzy, "x", |v| {
                Unit::clamped(v.as_int().unwrap() as f64 / 10.0)
            });
            let solution = tight
                .solve_binding(&Var::new("x"), &domain, &sigma)
                .unwrap();
            let witness = solution
                .best_assignment()
                .and_then(|a| a.get(&Var::new("x")))
                .cloned();
            assert_eq!(witness, Some(Val::Int(2 + round)));
        }
        assert!(tight.binding_solvers.len() <= 1);
        assert!(tight.cache.len() <= 1);
    }

    #[test]
    fn incremental_bindings_match_from_scratch() {
        let mut registry = Registry::new();
        registry.publish(fuzzy_provider("svc-1", vec![(1, 1.0), (9, 0.0)]));
        registry.publish(fuzzy_provider("svc-flat", vec![(1, 0.8), (9, 0.8)]));
        let (telemetry, sink) = Telemetry::recording();
        let cold = Broker::new(Fuzzy, registry);
        let warm = cold
            .clone()
            .with_incremental(true)
            .with_telemetry(telemetry);
        // Several rounds (the second exercises the delta path on the
        // persistent solvers): identical agreements throughout.
        for _ in 0..3 {
            let a = cold.negotiate(&fig5_request(), QosOffer::to_fuzzy).unwrap();
            let b = warm.negotiate(&fig5_request(), QosOffer::to_fuzzy).unwrap();
            assert_eq!(a.agreed_level, b.agreed_level);
            assert_eq!(a.binding, b.binding);
            assert_eq!(a.service, b.service);
        }
        let snapshot = sink.snapshot();
        assert!(
            snapshot.counters.get("solver.incremental.solves").copied() >= Some(6),
            "every binding went through the incremental engine"
        );
        assert!(
            snapshot
                .counters
                .get("solver.incremental.warm_seeds")
                .copied()
                >= Some(1),
            "later rounds warm-start from the previous optimum"
        );
    }

    #[test]
    fn weighted_negotiation_minimises_cost() {
        // Weighted variant: provider charges 2x, client charges x + 1;
        // acceptance requires total cost within [1, 6] at the best x.
        let mut registry = Registry::new();
        registry.publish(ServiceDescription::new(
            "svc-w",
            "acme",
            "compute",
            QosDocument::new("svc-w").with_offer(QosOffer {
                attribute: Attribute::Availability,
                variable: "x".into(),
                shape: OfferShape::Linear {
                    slope: 2.0,
                    intercept: 0.0,
                },
            }),
        ));
        let request = NegotiationRequest {
            capability: "compute".into(),
            variable: Var::new("x"),
            domain: Domain::ints(0..=10),
            constraint: Constraint::unary(Weighted, "x", |v| {
                Weight::saturating(v.as_int().unwrap() as f64 + 1.0)
            }),
            acceptance: Interval::levels(Weight::new(6.0).unwrap(), Weight::new(1.0).unwrap()),
        };
        let broker = Broker::new(Weighted, registry);
        let sla = broker.negotiate(&request, QosOffer::to_weighted).unwrap();
        // Best at x = 0: cost 1.
        assert_eq!(sla.agreed_level, Weight::new(1.0).unwrap());
        let (eta, _) = sla.binding.unwrap();
        assert_eq!(eta.get(&Var::new("x")).unwrap().as_int(), Some(0));
    }
}
