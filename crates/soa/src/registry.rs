//! The service registry (the paper's UDDI stand-in).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::QosDocument;

/// A unique service identifier.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(Arc<str>);

impl ServiceId {
    /// Creates a service id.
    pub fn new(id: impl AsRef<str>) -> ServiceId {
        ServiceId(Arc::from(id.as_ref()))
    }

    /// The id as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceId {
    fn from(id: &str) -> ServiceId {
        ServiceId::new(id)
    }
}

/// A provider (the organisation offering services).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProviderId(Arc<str>);

impl ProviderId {
    /// Creates a provider id.
    pub fn new(id: impl AsRef<str>) -> ProviderId {
        ProviderId(Arc::from(id.as_ref()))
    }

    /// The id as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ProviderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ProviderId {
    fn from(id: &str) -> ProviderId {
        ProviderId::new(id)
    }
}

/// A published service: identity, provider, advertised capability and
/// the QoS document describing its non-functional behaviour.
///
/// "Service descriptions are used to advertise the service
/// capabilities, interface, behaviour, and quality" (Sec. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDescription {
    /// The service identity.
    pub id: ServiceId,
    /// The organisation providing the service.
    pub provider: ProviderId,
    /// The advertised capability (discovery key).
    pub capability: String,
    /// The non-functional offer.
    pub qos: QosDocument,
    /// Declared concurrent-binding capacity: how many clients this
    /// service can serve at once. `None` means unlimited (the paper's
    /// original single-client model); contended allocation treats it
    /// as slot count.
    pub capacity: Option<u32>,
}

impl ServiceDescription {
    /// Creates a description with unlimited capacity.
    pub fn new(
        id: impl Into<ServiceId>,
        provider: impl AsRef<str>,
        capability: impl Into<String>,
        qos: QosDocument,
    ) -> ServiceDescription {
        ServiceDescription {
            id: id.into(),
            provider: ProviderId::new(provider),
            capability: capability.into(),
            qos,
            capacity: None,
        }
    }

    /// Declares a concurrent-binding capacity (slot count).
    pub fn with_capacity(mut self, slots: u32) -> ServiceDescription {
        self.capacity = Some(slots);
        self
    }
}

/// The registry where providers publish services and the broker
/// discovers them (step 2 of the negotiation protocol).
///
/// # Examples
///
/// ```
/// use softsoa_soa::{QosDocument, Registry, ServiceDescription};
///
/// let mut registry = Registry::new();
/// registry.publish(ServiceDescription::new(
///     "red-filter-1", "acme", "red-filter", QosDocument::new("red-filter-1")));
/// assert_eq!(registry.discover("red-filter").len(), 1);
/// assert!(registry.discover("blur-filter").is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    services: BTreeMap<ServiceId, ServiceDescription>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Publishes (or republishes) a service, returning any previous
    /// description under the same id.
    pub fn publish(&mut self, description: ServiceDescription) -> Option<ServiceDescription> {
        self.services.insert(description.id.clone(), description)
    }

    /// Removes a service from the registry.
    pub fn deregister(&mut self, id: &ServiceId) -> Option<ServiceDescription> {
        self.services.remove(id)
    }

    /// Looks up a service by id.
    pub fn get(&self, id: &ServiceId) -> Option<&ServiceDescription> {
        self.services.get(id)
    }

    /// All services advertising the given capability, in id order.
    pub fn discover(&self, capability: &str) -> Vec<&ServiceDescription> {
        self.services
            .values()
            .filter(|s| s.capability == capability)
            .collect()
    }

    /// Iterates over all published services in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceDescription> {
        self.services.values()
    }

    /// The number of published services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(id: &str, capability: &str) -> ServiceDescription {
        ServiceDescription::new(id, "prov", capability, QosDocument::new(id))
    }

    #[test]
    fn publish_and_discover() {
        let mut r = Registry::new();
        r.publish(desc("a", "filter"));
        r.publish(desc("b", "filter"));
        r.publish(desc("c", "storage"));
        assert_eq!(r.len(), 3);
        let filters = r.discover("filter");
        assert_eq!(filters.len(), 2);
        assert_eq!(filters[0].id, ServiceId::new("a"));
    }

    #[test]
    fn republish_replaces() {
        let mut r = Registry::new();
        assert!(r.publish(desc("a", "filter")).is_none());
        let old = r.publish(desc("a", "storage")).unwrap();
        assert_eq!(old.capability, "filter");
        assert_eq!(r.len(), 1);
        assert!(r.discover("filter").is_empty());
    }

    #[test]
    fn deregister() {
        let mut r = Registry::new();
        r.publish(desc("a", "filter"));
        assert!(r.deregister(&ServiceId::new("a")).is_some());
        assert!(r.is_empty());
        assert!(r.deregister(&ServiceId::new("a")).is_none());
    }

    #[test]
    fn capacity_defaults_to_unlimited() {
        let d = desc("a", "filter");
        assert_eq!(d.capacity, None);
        assert_eq!(d.with_capacity(3).capacity, Some(3));
    }

    #[test]
    fn ids_display() {
        assert_eq!(ServiceId::new("svc-1").to_string(), "svc-1");
        assert_eq!(ProviderId::new("acme").to_string(), "acme");
    }
}
