//! Execution-time orchestration of a composed service.
//!
//! The paper's broker "is also an orchestrator in the sense that [it]
//! describes the automated arrangement, coordination, and management
//! of complex services". This module is the management part: it
//! drives a workload through the pipeline of (simulated) services a
//! composition selected, retries failed stage invocations, measures
//! per-stage and end-to-end reliability, and checks each stage's
//! measurement against its negotiated SLA level — closing the loop
//! between the *declared* QoS the solver optimised and the *observed*
//! QoS of the running system.

use softsoa_semiring::Unit;

use crate::{ServiceId, SimConfig, SimService, Sla};

/// Per-stage statistics of a workload run.
#[derive(Debug, Clone)]
pub struct StageStats {
    /// The stage's service.
    pub service: ServiceId,
    /// Stage invocations (including retries).
    pub invocations: u64,
    /// Failed invocations.
    pub failures: u64,
    /// Measured per-invocation reliability.
    pub measured_reliability: f64,
}

/// The outcome of driving a workload through the pipeline.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Requests attempted.
    pub requests: u64,
    /// Requests that completed every stage.
    pub completed: u64,
    /// Fraction of requests that completed.
    pub end_to_end_reliability: f64,
    /// Mean end-to-end latency of completed requests (ms).
    pub mean_latency_ms: f64,
    /// Per-stage statistics, in pipeline order.
    pub stages: Vec<StageStats>,
}

/// The verdict of checking one stage's measurement against its SLA.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaVerdict {
    /// The stage's service.
    pub service: ServiceId,
    /// The reliability level agreed in the SLA.
    pub agreed: f64,
    /// The reliability measured during the workload.
    pub measured: f64,
    /// Whether the measurement (plus tolerance) falls short.
    pub violated: bool,
}

/// Drives workloads through a pipeline of simulated services.
///
/// # Examples
///
/// ```
/// use softsoa_soa::{Orchestrator, ServiceId, SimConfig};
///
/// let mut orch = Orchestrator::new(1) // one retry per stage
///     .with_stage(ServiceId::new("red"), SimConfig { reliability: 0.95, ..Default::default() })
///     .with_stage(ServiceId::new("bw"), SimConfig { reliability: 0.99, ..Default::default() });
/// let report = orch.run_workload(2000);
/// assert!(report.end_to_end_reliability > 0.97); // retries mask most faults
/// ```
#[derive(Debug, Clone)]
pub struct Orchestrator {
    stages: Vec<(ServiceId, SimService)>,
    retries: u32,
}

impl Orchestrator {
    /// Creates an orchestrator allowing `retries` retries per stage
    /// invocation.
    pub fn new(retries: u32) -> Orchestrator {
        Orchestrator {
            stages: Vec::new(),
            retries,
        }
    }

    /// Appends a pipeline stage backed by a simulated service.
    pub fn with_stage(mut self, service: ServiceId, config: SimConfig) -> Orchestrator {
        self.stages.push((service, SimService::new(config)));
        self
    }

    /// The number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Sends `requests` requests through the pipeline; each stage is
    /// retried up to the configured budget before the request is
    /// abandoned.
    pub fn run_workload(&mut self, requests: u64) -> WorkloadReport {
        let mut completed = 0u64;
        let mut total_latency = 0.0f64;

        let before: Vec<(u64, u64)> = self
            .stages
            .iter()
            .map(|(_, svc)| (svc.invocations(), svc.failures()))
            .collect();

        'requests: for _ in 0..requests {
            let mut latency = 0.0f64;
            for (_, service) in self.stages.iter_mut() {
                let mut ok = false;
                for _ in 0..=self.retries {
                    match service.invoke() {
                        Ok(ms) => {
                            latency += ms;
                            ok = true;
                            break;
                        }
                        Err(_) => continue,
                    }
                }
                if !ok {
                    continue 'requests;
                }
            }
            completed += 1;
            total_latency += latency;
        }

        let stages = self
            .stages
            .iter()
            .zip(before)
            .map(|((id, svc), (inv0, fail0))| {
                let inv = svc.invocations() - inv0;
                let fail = svc.failures() - fail0;
                StageStats {
                    service: id.clone(),
                    invocations: inv,
                    failures: fail,
                    measured_reliability: if inv == 0 {
                        0.0
                    } else {
                        1.0 - fail as f64 / inv as f64
                    },
                }
            })
            .collect();

        WorkloadReport {
            requests,
            completed,
            end_to_end_reliability: if requests == 0 {
                0.0
            } else {
                completed as f64 / requests as f64
            },
            mean_latency_ms: if completed == 0 {
                0.0
            } else {
                total_latency / completed as f64
            },
            stages,
        }
    }

    /// Checks a workload report against the SLAs a negotiation
    /// produced, matching stages to SLAs by service id.
    ///
    /// `tolerance` absorbs sampling noise, as in
    /// [`SlaMonitor`](crate::SlaMonitor).
    pub fn check_slas<S>(
        report: &WorkloadReport,
        slas: &[Sla<S>],
        agreed_level: impl Fn(&Sla<S>) -> Unit,
        tolerance: f64,
    ) -> Vec<SlaVerdict>
    where
        S: softsoa_semiring::Semiring,
    {
        report
            .stages
            .iter()
            .filter_map(|stage| {
                let sla = slas.iter().find(|s| s.service == stage.service)?;
                let agreed = agreed_level(sla).get();
                Some(SlaVerdict {
                    service: stage.service.clone(),
                    agreed,
                    measured: stage.measured_reliability,
                    violated: stage.measured_reliability + tolerance < agreed,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ProviderId;

    fn sim(reliability: f64, seed: u64) -> SimConfig {
        SimConfig {
            reliability,
            mean_latency_ms: 5.0,
            seed,
        }
    }

    #[test]
    fn end_to_end_reliability_is_roughly_the_product() {
        let mut orch = Orchestrator::new(0)
            .with_stage(ServiceId::new("a"), sim(0.9, 1))
            .with_stage(ServiceId::new("b"), sim(0.8, 2));
        let report = orch.run_workload(20_000);
        let expected = 0.9 * 0.8;
        assert!(
            (report.end_to_end_reliability - expected).abs() < 0.02,
            "measured {}",
            report.end_to_end_reliability
        );
    }

    #[test]
    fn retries_improve_completion() {
        let run = |retries| {
            let mut orch = Orchestrator::new(retries)
                .with_stage(ServiceId::new("a"), sim(0.7, 3))
                .with_stage(ServiceId::new("b"), sim(0.7, 4));
            orch.run_workload(5_000).end_to_end_reliability
        };
        let without = run(0);
        let with = run(2);
        assert!(with > without + 0.2, "without {without}, with {with}");
    }

    #[test]
    fn per_stage_stats_are_tracked() {
        let mut orch = Orchestrator::new(0)
            .with_stage(ServiceId::new("a"), sim(1.0, 5))
            .with_stage(ServiceId::new("b"), sim(0.5, 6));
        let report = orch.run_workload(1_000);
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[0].invocations, 1_000);
        assert!((report.stages[0].measured_reliability - 1.0).abs() < 1e-12);
        assert!((report.stages[1].measured_reliability - 0.5).abs() < 0.05);
        assert!(report.mean_latency_ms > 0.0);
    }

    #[test]
    fn sla_verdicts_flag_the_dishonest_stage() {
        let mut orch = Orchestrator::new(0)
            .with_stage(ServiceId::new("honest"), sim(0.95, 7))
            .with_stage(ServiceId::new("dishonest"), sim(0.70, 8));
        let report = orch.run_workload(3_000);
        let slas: Vec<Sla<softsoa_semiring::Probabilistic>> = vec![
            Sla {
                service: ServiceId::new("honest"),
                provider: ProviderId::new("p"),
                agreed_level: Unit::clamped(0.95),
                binding: None,
            },
            Sla {
                service: ServiceId::new("dishonest"),
                provider: ProviderId::new("p"),
                agreed_level: Unit::clamped(0.95),
                binding: None,
            },
        ];
        let verdicts = Orchestrator::check_slas(&report, &slas, |sla| sla.agreed_level, 0.02);
        assert_eq!(verdicts.len(), 2);
        assert!(!verdicts[0].violated);
        assert!(verdicts[1].violated);
    }

    #[test]
    fn empty_pipeline_completes_everything() {
        let mut orch = Orchestrator::new(0);
        assert!(orch.is_empty());
        let report = orch.run_workload(10);
        assert_eq!(report.completed, 10);
        assert_eq!(report.end_to_end_reliability, 1.0);
    }
}
