//! Contention-aware allocation: fair multi-client negotiation under
//! declared provider capacities.
//!
//! The paper's protocol negotiates one client at a time, so when
//! several clients contend for a capacity-limited service the broker
//! degenerates to first-come-first-served: whoever arrives first takes
//! the best slot and a late client can *starve* indefinitely. This
//! module solves the joint problem for a whole batch instead. Each
//! provider may declare a concurrent-binding capacity
//! ([`crate::ServiceDescription::with_capacity`]); the broker gathers
//! every client's feasible agreements against **one** registry epoch
//! (via `Broker::negotiate_all_at`) and then picks the joint
//! assignment optimising a [`Fairness`] objective:
//!
//! - [`Fairness::Fcfs`] — the historical baseline: arrival order, best
//!   remaining slot;
//! - [`Fairness::Utilitarian`] — maximise total softness (sum of
//!   per-client utilities);
//! - [`Fairness::Leximin`] — max-min: raise the worst-off client
//!   first, then the next, … (egalitarian);
//! - [`Fairness::Nash`] — maximise the Nash product of utilities
//!   (proportional fairness between the two extremes).
//!
//! Utilities are *effective*: a client's agreed softness is blended
//! with its cross-batch history (cumulative softness over rounds
//! participated), so a client denied in earlier rounds has a low
//! effective utility and the leximin/Nash objectives grant it first —
//! scarce slots rotate instead of pinning to the earliest arrival.
//!
//! Objectives are scored through the [`Lex`] lexicographic semiring
//! combinator: leximin compares `(min utility, Nash product)` pairs,
//! Nash compares `(Nash product, min utility)`, utilitarian
//! `(mean utility, min utility)` — the secondary tier breaks ties so
//! allocation is deterministic.
//!
//! For batches of up to [`MAX_EXACT_CLIENTS`] clients the allocator is
//! *exact*: a subset-DP over services and client bitmasks (the same
//! `O(services · 3^n)` idiom as coalition formation's
//! `exact_formation`). Larger batches fall back to greedy progressive
//! filling, which preserves the starvation-rotation property.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

use softsoa_core::Constraint;
use softsoa_semiring::{Lex, Probabilistic, Semiring, Unit};

use crate::broker::{Broker, NegotiationRequest, RegistrySnapshot, Sla};
use crate::qos::QosOffer;
use crate::registry::ServiceId;
use crate::server::protocol::WireSemiring;

/// Largest batch solved exactly by the subset-DP; larger batches use
/// greedy progressive filling. `O(services · 3^n)` states: at 10
/// clients that is ~59 k masks per service.
pub const MAX_EXACT_CLIENTS: usize = 10;

/// Feasible agreements kept per client (best-softness first). Bounds
/// the service set the DP iterates over.
const MAX_CANDIDATES_PER_CLIENT: usize = 6;

/// The joint-allocation objective for a contended batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fairness {
    /// First-come-first-served: the historical per-client protocol,
    /// reproduced as a baseline. Arrival order, best remaining slot.
    Fcfs,
    /// Maximise the sum of effective utilities (total welfare,
    /// starvation-blind).
    Utilitarian,
    /// Maximise the minimum effective utility, ties broken by the next
    /// smallest, … (egalitarian max-min).
    #[default]
    Leximin,
    /// Maximise the product of effective utilities (proportional
    /// fairness).
    Nash,
}

impl Fairness {
    /// Every objective, in wire-name order.
    pub const ALL: [Fairness; 4] = [
        Fairness::Fcfs,
        Fairness::Utilitarian,
        Fairness::Leximin,
        Fairness::Nash,
    ];

    /// The objective's wire/CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            Fairness::Fcfs => "fcfs",
            Fairness::Utilitarian => "utilitarian",
            Fairness::Leximin => "leximin",
            Fairness::Nash => "nash",
        }
    }

    /// Parses a wire/CLI name (`fcfs`, `utilitarian`, `leximin`,
    /// `nash`).
    pub fn parse(name: &str) -> Option<Fairness> {
        Fairness::ALL.into_iter().find(|f| f.as_str() == name)
    }
}

impl fmt::Display for Fairness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One client's request inside a contended batch.
#[derive(Debug, Clone)]
pub struct ContendedRequest<S: Semiring> {
    /// Stable client identity — the key of the cross-batch fairness
    /// ledger (grants, starvation age).
    pub client: String,
    /// The negotiation the client wants served.
    pub request: NegotiationRequest<S>,
}

/// What a contended batch decided for one client.
#[derive(Debug, Clone)]
pub enum ContentionOutcome<S: Semiring> {
    /// The client was bound to a service.
    Granted(Sla<S>),
    /// The client had feasible agreements and would have been granted
    /// under FCFS, but the fairness objective gave its slot to a
    /// worse-off client this round.
    Preempted,
    /// The client had feasible agreements but lost the capacity race
    /// even under FCFS; `age` counts its consecutive unserved rounds.
    Waitlisted {
        /// Consecutive rounds this client has gone ungranted.
        age: u64,
    },
    /// No provider produced an agreement inside the client's
    /// acceptance interval (capacity was not the obstacle).
    Unserved,
}

impl<S: Semiring> ContentionOutcome<S> {
    /// The outcome's wire label (`granted`, `preempted`, `waitlisted`,
    /// `unserved`).
    pub fn label(&self) -> &'static str {
        match self {
            ContentionOutcome::Granted(_) => "granted",
            ContentionOutcome::Preempted => "preempted",
            ContentionOutcome::Waitlisted { .. } => "waitlisted",
            ContentionOutcome::Unserved => "unserved",
        }
    }
}

/// Batch-level fairness metrics, computed over the effective-utility
/// vector the allocator optimised.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FairnessReport {
    /// Clients in the batch.
    pub clients: usize,
    /// Clients granted a binding.
    pub granted: usize,
    /// Clients preempted by the fairness objective (FCFS would have
    /// served them).
    pub preempted: usize,
    /// Clients waitlisted (unserved even under FCFS).
    pub waitlisted: usize,
    /// Clients with no feasible agreement at all.
    pub unserved: usize,
    /// Jain's fairness index over effective utilities: `(Σe)² / (n·Σe²)`,
    /// 1.0 when perfectly even.
    pub jain: f64,
    /// The worst client's effective utility.
    pub min_utility: f64,
    /// Total softness across granted bindings (the utilitarian
    /// objective value).
    pub sum_softness: f64,
    /// Softness spread across granted bindings (max − min; 0 with
    /// fewer than two grants).
    pub spread: f64,
    /// The oldest starvation age after this round (0 when every client
    /// with candidates was granted).
    pub max_starvation_age: u64,
}

/// The result of one contended batch: per-client outcomes plus the
/// fairness report, all decided against a single registry epoch.
#[derive(Debug, Clone)]
pub struct ContendedAllocation<S: Semiring> {
    /// The registry epoch every client in the batch was admitted
    /// against.
    pub epoch: u64,
    /// The objective that produced the assignment.
    pub fairness: Fairness,
    /// `(client, outcome)` in batch arrival order.
    pub outcomes: Vec<(String, ContentionOutcome<S>)>,
    /// Batch-level fairness metrics.
    pub report: FairnessReport,
}

/// Cross-batch contention history, shared across broker clones so
/// every worker's joint allocations see the same fairness ledger.
#[derive(Debug, Clone, Default)]
pub struct ContentionState {
    inner: Arc<Mutex<ContentionLedger>>,
}

#[derive(Debug, Default)]
struct ContentionLedger {
    round: u64,
    clients: HashMap<String, ClientHistory>,
}

/// One client's ledger entry.
#[derive(Debug, Clone, Copy, Default)]
struct ClientHistory {
    /// Contended rounds this client has participated in.
    rounds: u64,
    /// Cumulative softness over granted rounds.
    cum: f64,
    /// Consecutive rounds without a grant.
    age: u64,
}

impl ClientHistory {
    /// Effective utility if denied this round: the historical mean
    /// softness discounted by one more (empty-handed) round.
    fn denied_utility(&self) -> f64 {
        self.cum / (1.0 + self.rounds as f64)
    }

    /// Effective utility if granted `softness` this round.
    fn granted_utility(&self, softness: f64) -> f64 {
        (self.cum + softness) / (1.0 + self.rounds as f64)
    }
}

impl ContentionState {
    /// Snapshots the ledger entries for a batch's clients.
    fn snapshot(&self, clients: impl Iterator<Item = impl AsRef<str>>) -> Vec<ClientHistory> {
        let ledger = self.inner.lock().expect("contention ledger poisoned");
        clients
            .map(|c| ledger.clients.get(c.as_ref()).copied().unwrap_or_default())
            .collect()
    }

    /// Folds one round's results into the ledger: every participant
    /// ages or resets, grants accumulate softness.
    fn record<'a>(&self, results: impl Iterator<Item = (&'a str, Option<f64>)>) {
        let mut ledger = self.inner.lock().expect("contention ledger poisoned");
        ledger.round += 1;
        for (client, grant) in results {
            let entry = ledger.clients.entry(client.to_owned()).or_default();
            entry.rounds += 1;
            match grant {
                Some(softness) => {
                    entry.cum += softness;
                    entry.age = 0;
                }
                None => entry.age += 1,
            }
        }
    }
}

/// One feasible agreement for one client.
struct Candidate<S: Semiring> {
    sla: Sla<S>,
    softness: f64,
}

impl<S: WireSemiring> Broker<S> {
    /// Negotiates a *batch* of contending clients jointly.
    ///
    /// All clients are admitted against a single registry epoch; each
    /// declared service capacity is honoured as a slot budget across
    /// the whole batch; the assignment optimises `fairness` over
    /// *effective* utilities (agreed softness blended with each
    /// client's cross-batch grant history, so starvation raises a
    /// client's priority). Infeasibility is per-client, never an
    /// error: a client without agreements is reported
    /// [`ContentionOutcome::Unserved`] while the rest of the batch
    /// proceeds.
    ///
    /// # Examples
    ///
    /// ```
    /// use softsoa_core::{Constraint, Domain, Var};
    /// use softsoa_nmsccp::Interval;
    /// use softsoa_semiring::{Fuzzy, Unit};
    /// use softsoa_soa::*;
    /// use softsoa_dependability::Attribute;
    ///
    /// let mut registry = Registry::new();
    /// registry.publish(
    ///     ServiceDescription::new(
    ///         "svc-1", "acme", "web-service",
    ///         QosDocument::new("svc-1").with_offer(QosOffer {
    ///             attribute: Attribute::Reliability,
    ///             variable: "x".into(),
    ///             shape: OfferShape::Piecewise { points: vec![(1, 0.8), (9, 0.8)] },
    ///         }))
    ///     .with_capacity(1),
    /// );
    ///
    /// let request = NegotiationRequest {
    ///     capability: "web-service".into(),
    ///     variable: Var::new("x"),
    ///     domain: Domain::ints(1..=9),
    ///     constraint: Constraint::always(Fuzzy),
    ///     acceptance: Interval::levels(Unit::new(0.3).unwrap(), Unit::MAX),
    /// };
    /// let batch: Vec<_> = ["alice", "bob"]
    ///     .iter()
    ///     .map(|c| ContendedRequest { client: c.to_string(), request: request.clone() })
    ///     .collect();
    ///
    /// let broker = Broker::new(Fuzzy, registry);
    /// let allocation = broker.negotiate_contended(&batch, Fairness::Leximin, QosOffer::to_fuzzy);
    /// // One slot, two clients: exactly one is granted.
    /// assert_eq!(allocation.report.granted, 1);
    /// assert_eq!(allocation.report.clients, 2);
    /// ```
    pub fn negotiate_contended<F>(
        &self,
        requests: &[ContendedRequest<S>],
        fairness: Fairness,
        translate: F,
    ) -> ContendedAllocation<S>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        let registry = self.registry();
        let epoch = registry.epoch();
        let n = requests.len();
        if n == 0 {
            return ContendedAllocation {
                epoch,
                fairness,
                outcomes: Vec::new(),
                report: FairnessReport {
                    jain: 1.0,
                    ..FairnessReport::default()
                },
            };
        }

        // Step 1: every client's feasible agreements, all against the
        // same snapshot. Per-client failures (no provider, no level in
        // the acceptance interval) simply mean no candidates.
        let candidates: Vec<Vec<Candidate<S>>> = requests
            .iter()
            .map(|r| {
                let mut cands: Vec<Candidate<S>> = self
                    .negotiate_all_at(&registry, &r.request, &translate)
                    .map(|slas| {
                        slas.into_iter()
                            .map(|sla| Candidate {
                                softness: S::softness(&sla.agreed_level),
                                sla,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                cands.sort_by(|a, b| {
                    b.softness
                        .total_cmp(&a.softness)
                        .then_with(|| a.sla.service.cmp(&b.sla.service))
                });
                cands.truncate(MAX_CANDIDATES_PER_CLIENT);
                cands
            })
            .collect();

        // Step 2: the slot budget per contended service. Undeclared
        // capacity means unlimited, which a batch of n can never
        // exhaust, so cap at n.
        let slots = slot_budget(&registry, &candidates, n);

        // Step 3: ledger snapshot → effective-utility inputs.
        let histories = self
            .contention
            .snapshot(requests.iter().map(|r| r.client.as_str()));

        // Step 4: the FCFS baseline (both the Fcfs objective itself
        // and the reference that distinguishes "preempted by fairness"
        // from "genuinely out of capacity").
        let fcfs = fcfs_allocate(&candidates, slots.clone());

        let assignment = match fairness {
            Fairness::Fcfs => fcfs.clone(),
            _ if n <= MAX_EXACT_CLIENTS => {
                exact_allocate(fairness, &candidates, &histories, &slots)
            }
            _ => greedy_allocate(fairness, &candidates, &histories, slots.clone()),
        };

        // Step 5: classify, update the ledger, report.
        let utilities = utility_vector(&assignment, &candidates, &histories);
        let mut outcomes = Vec::with_capacity(n);
        let mut max_starvation_age = 0u64;
        for (i, request) in requests.iter().enumerate() {
            let outcome = match assignment[i] {
                Some(j) => ContentionOutcome::Granted(candidates[i][j].sla.clone()),
                None => {
                    max_starvation_age = max_starvation_age.max(histories[i].age + 1);
                    if candidates[i].is_empty() {
                        ContentionOutcome::Unserved
                    } else if fcfs[i].is_some() {
                        ContentionOutcome::Preempted
                    } else {
                        ContentionOutcome::Waitlisted {
                            age: histories[i].age + 1,
                        }
                    }
                }
            };
            outcomes.push((request.client.clone(), outcome));
        }
        self.contention
            .record(requests.iter().enumerate().map(|(i, r)| {
                let grant = assignment[i].map(|j| candidates[i][j].softness);
                (r.client.as_str(), grant)
            }));

        let report = build_report(
            &outcomes,
            &assignment,
            &candidates,
            &utilities,
            max_starvation_age,
        );
        self.emit_fairness_telemetry(fairness, &report);

        ContendedAllocation {
            epoch,
            fairness,
            outcomes,
            report,
        }
    }

    fn emit_fairness_telemetry(&self, fairness: Fairness, report: &FairnessReport) {
        let t = &self.telemetry;
        t.count_labeled("fairness.batch", fairness.as_str(), 1);
        t.count("fairness.granted", report.granted as u64);
        t.count("fairness.preempted", report.preempted as u64);
        t.count("fairness.waitlisted", report.waitlisted as u64);
        t.count("fairness.unserved", report.unserved as u64);
        t.gauge("fairness.jain.milli", (report.jain * 1000.0).round() as i64);
        t.gauge(
            "fairness.min_utility.milli",
            (report.min_utility * 1000.0).round() as i64,
        );
        t.gauge(
            "fairness.spread.milli",
            (report.spread * 1000.0).round() as i64,
        );
        t.gauge("fairness.starvation.age", report.max_starvation_age as i64);
    }
}

/// Slot budget per service appearing in any candidate list.
fn slot_budget<S: Semiring>(
    registry: &RegistrySnapshot,
    candidates: &[Vec<Candidate<S>>],
    batch: usize,
) -> BTreeMap<ServiceId, usize> {
    let mut slots = BTreeMap::new();
    for cand in candidates.iter().flatten() {
        slots.entry(cand.sla.service.clone()).or_insert_with(|| {
            registry
                .get(&cand.sla.service)
                .and_then(|d| d.capacity)
                .map(|c| c as usize)
                .unwrap_or(batch)
                .min(batch)
        });
    }
    slots
}

/// The effective-utility vector induced by an assignment:
/// `Some(j)` → granted utility of candidate `j`, `None` → denied
/// utility (historical mean discounted by the empty round).
fn utility_vector<S: Semiring>(
    assignment: &[Option<usize>],
    candidates: &[Vec<Candidate<S>>],
    histories: &[ClientHistory],
) -> Vec<f64> {
    assignment
        .iter()
        .enumerate()
        .map(|(i, a)| match a {
            Some(j) => histories[i].granted_utility(candidates[i][*j].softness),
            None => histories[i].denied_utility(),
        })
        .collect()
}

/// The lexicographic scoring key for an objective over a utility
/// vector, as a [`Lex<Probabilistic, Probabilistic>`] value: the
/// primary tier is the objective itself, the secondary breaks ties.
fn objective_key(fairness: Fairness, utilities: &[f64]) -> (Unit, Unit) {
    let n = utilities.len().max(1) as f64;
    let min = utilities
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .clamp(0.0, 1.0);
    // (1 + e) / 2 keeps every factor in (0, 1] so a zero-utility
    // client dents the product without annihilating it.
    let nash: f64 = utilities.iter().map(|e| (1.0 + e) / 2.0).product();
    let mean = utilities.iter().sum::<f64>() / n;
    let (primary, secondary) = match fairness {
        Fairness::Leximin => (min, nash),
        Fairness::Nash => (nash, min),
        Fairness::Utilitarian | Fairness::Fcfs => (mean, min),
    };
    (Unit::clamped(primary), Unit::clamped(secondary))
}

/// Whether utility vector `a` is strictly preferred to `b` under the
/// objective. Primary comparison goes through the [`Lex`] combinator;
/// exhausted keys fall back to full leximin (ascending-sorted
/// elementwise) comparison so the allocator is deterministic.
fn prefer(fairness: Fairness, a: &[f64], b: &[f64]) -> bool {
    let lex = Lex::new(Probabilistic, Probabilistic);
    let (pa, sa) = objective_key(fairness, a);
    let (pb, sb) = objective_key(fairness, b);
    let ka = lex.value(pa, sa);
    let kb = lex.value(pb, sb);
    match lex.partial_cmp(&ka, &kb) {
        Some(Ordering::Greater) => true,
        Some(Ordering::Less) => false,
        _ => {
            let mut va = a.to_vec();
            let mut vb = b.to_vec();
            va.sort_by(f64::total_cmp);
            vb.sort_by(f64::total_cmp);
            for (x, y) in va.iter().zip(vb.iter()) {
                match x.total_cmp(y) {
                    Ordering::Greater => return true,
                    Ordering::Less => return false,
                    Ordering::Equal => {}
                }
            }
            false
        }
    }
}

/// First-come-first-served: in arrival order, each client takes its
/// best candidate whose service still has a free slot.
fn fcfs_allocate<S: Semiring>(
    candidates: &[Vec<Candidate<S>>],
    mut slots: BTreeMap<ServiceId, usize>,
) -> Vec<Option<usize>> {
    candidates
        .iter()
        .map(|cands| {
            let pick = cands
                .iter()
                .position(|c| slots.get(&c.sla.service).copied().unwrap_or(0) > 0);
            if let Some(j) = pick {
                *slots.get_mut(&cands[j].sla.service).expect("budgeted") -= 1;
            }
            pick
        })
        .collect()
}

/// Exact joint allocation: a subset-DP over services × client
/// bitmasks, mirroring coalition formation's `exact_formation`. For
/// each service we extend every reachable client-mask with every
/// subset of still-free eligible clients that fits the slot budget,
/// keeping the best assignment per mask under the objective.
///
/// Keeping one best per mask is exact because all three objectives are
/// *merge-consistent*: clients outside the mask contribute identical
/// utilities to both sides of any comparison, so the winner among
/// partial states is the winner among their completions.
fn exact_allocate<S: Semiring>(
    fairness: Fairness,
    candidates: &[Vec<Candidate<S>>],
    histories: &[ClientHistory],
    slots: &BTreeMap<ServiceId, usize>,
) -> Vec<Option<usize>> {
    let n = candidates.len();
    // Per service: the clients it can serve, each with its (single,
    // best) candidate index for that service.
    let mut eligible: BTreeMap<&ServiceId, Vec<(usize, usize)>> = BTreeMap::new();
    for (i, cands) in candidates.iter().enumerate() {
        for (j, c) in cands.iter().enumerate() {
            eligible.entry(&c.sla.service).or_default().push((i, j));
        }
    }

    let score = |assignment: &[Option<usize>]| utility_vector(assignment, candidates, histories);
    let mut dp: HashMap<u32, Vec<Option<usize>>> = HashMap::new();
    dp.insert(0, vec![None; n]);

    for (service, served) in &eligible {
        let budget = slots.get(*service).copied().unwrap_or(0);
        if budget == 0 {
            continue;
        }
        let elig_mask: u32 = served.iter().fold(0, |m, (i, _)| m | (1 << i));
        let cand_of: HashMap<usize, usize> = served.iter().copied().collect();
        // Skipping the service entirely is always allowed: start from
        // the previous layer and only improve on it.
        let mut next = dp.clone();
        for (mask, assignment) in &dp {
            let free = elig_mask & !mask;
            let mut sub = free;
            while sub != 0 {
                if (sub.count_ones() as usize) <= budget {
                    let mut extended = assignment.clone();
                    for i in 0..n {
                        if sub & (1 << i) != 0 {
                            extended[i] = Some(cand_of[&i]);
                        }
                    }
                    let new_mask = mask | sub;
                    let replace = match next.get(&new_mask) {
                        Some(existing) => prefer(fairness, &score(&extended), &score(existing)),
                        None => true,
                    };
                    if replace {
                        next.insert(new_mask, extended);
                    }
                }
                sub = (sub - 1) & free;
            }
        }
        dp = next;
    }

    dp.into_values()
        .reduce(|best, cand| {
            if prefer(fairness, &score(&cand), &score(&best)) {
                cand
            } else {
                best
            }
        })
        .unwrap_or_else(|| vec![None; n])
}

/// Greedy progressive filling for batches past [`MAX_EXACT_CLIENTS`]:
/// repeatedly grant the neediest client (leximin/Nash: lowest denied
/// utility, oldest starvation age first; utilitarian: biggest softness
/// gain) its best feasible candidate until no slot fits anyone.
fn greedy_allocate<S: Semiring>(
    fairness: Fairness,
    candidates: &[Vec<Candidate<S>>],
    histories: &[ClientHistory],
    mut slots: BTreeMap<ServiceId, usize>,
) -> Vec<Option<usize>> {
    let n = candidates.len();
    let mut assignment: Vec<Option<usize>> = vec![None; n];
    loop {
        let mut pick: Option<(usize, usize)> = None;
        for i in 0..n {
            if assignment[i].is_some() {
                continue;
            }
            let Some(j) = candidates[i]
                .iter()
                .position(|c| slots.get(&c.sla.service).copied().unwrap_or(0) > 0)
            else {
                continue;
            };
            let better = match pick {
                None => true,
                Some((pi, pj)) => match fairness {
                    Fairness::Leximin | Fairness::Nash => {
                        let (need, prev) = (
                            histories[i].denied_utility(),
                            histories[pi].denied_utility(),
                        );
                        match need.total_cmp(&prev) {
                            Ordering::Less => true,
                            Ordering::Greater => false,
                            Ordering::Equal => histories[i].age > histories[pi].age,
                        }
                    }
                    Fairness::Utilitarian | Fairness::Fcfs => {
                        candidates[i][j].softness > candidates[pi][pj].softness
                    }
                },
            };
            if better {
                pick = Some((i, j));
            }
        }
        let Some((i, j)) = pick else { break };
        assignment[i] = Some(j);
        *slots
            .get_mut(&candidates[i][j].sla.service)
            .expect("budgeted") -= 1;
    }
    assignment
}

fn build_report<S: Semiring>(
    outcomes: &[(String, ContentionOutcome<S>)],
    assignment: &[Option<usize>],
    candidates: &[Vec<Candidate<S>>],
    utilities: &[f64],
    max_starvation_age: u64,
) -> FairnessReport {
    let n = outcomes.len();
    let mut report = FairnessReport {
        clients: n,
        max_starvation_age,
        jain: 1.0,
        min_utility: utilities
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .clamp(0.0, 1.0),
        ..FairnessReport::default()
    };
    for (_, outcome) in outcomes {
        match outcome {
            ContentionOutcome::Granted(_) => report.granted += 1,
            ContentionOutcome::Preempted => report.preempted += 1,
            ContentionOutcome::Waitlisted { .. } => report.waitlisted += 1,
            ContentionOutcome::Unserved => report.unserved += 1,
        }
    }
    let granted_soft: Vec<f64> = assignment
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|j| candidates[i][j].softness))
        .collect();
    report.sum_softness = granted_soft.iter().sum();
    if granted_soft.len() >= 2 {
        let max = granted_soft
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = granted_soft.iter().copied().fold(f64::INFINITY, f64::min);
        report.spread = max - min;
    }
    let sum: f64 = utilities.iter().sum();
    let sumsq: f64 = utilities.iter().map(|e| e * e).sum();
    if sumsq > 0.0 {
        report.jain = (sum * sum) / (n as f64 * sumsq);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::{OfferShape, QosDocument, QosOffer};
    use crate::registry::{Registry, ServiceDescription};
    use softsoa_core::{Domain, Var};
    use softsoa_dependability::Attribute;
    use softsoa_nmsccp::Interval;
    use softsoa_semiring::Fuzzy;

    /// A provider whose every domain point offers a flat `level`, with
    /// `slots` concurrent-binding capacity.
    fn flat_provider(id: &str, level: f64, slots: u32) -> ServiceDescription {
        let permille = (level * 1000.0).round() as i64;
        ServiceDescription::new(
            id,
            "acme",
            "compute",
            QosDocument::new(id).with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: "x".into(),
                shape: OfferShape::Piecewise {
                    points: vec![(1, permille as f64 / 1000.0), (9, permille as f64 / 1000.0)],
                },
            }),
        )
        .with_capacity(slots)
    }

    fn contended_registry() -> Registry {
        let mut registry = Registry::new();
        registry.publish(flat_provider("svc-a", 0.9, 1));
        registry.publish(flat_provider("svc-b", 0.6, 1));
        registry
    }

    fn compute_request(min_level: f64) -> NegotiationRequest<Fuzzy> {
        NegotiationRequest {
            capability: "compute".into(),
            variable: Var::new("x"),
            domain: Domain::ints(1..=9),
            constraint: Constraint::always(Fuzzy),
            acceptance: Interval::levels(Unit::clamped(min_level), Unit::MAX),
        }
    }

    fn batch(clients: &[&str]) -> Vec<ContendedRequest<Fuzzy>> {
        clients
            .iter()
            .map(|c| ContendedRequest {
                client: (*c).to_owned(),
                request: compute_request(0.5),
            })
            .collect()
    }

    fn granted_clients(allocation: &ContendedAllocation<Fuzzy>) -> Vec<String> {
        allocation
            .outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ContentionOutcome::Granted(_)))
            .map(|(c, _)| c.clone())
            .collect()
    }

    #[test]
    fn fairness_names_round_trip() {
        for f in Fairness::ALL {
            assert_eq!(Fairness::parse(f.as_str()), Some(f));
            assert_eq!(f.to_string(), f.as_str());
        }
        assert_eq!(Fairness::parse("round-robin"), None);
        assert_eq!(Fairness::default(), Fairness::Leximin);
    }

    #[test]
    fn fcfs_serves_arrival_order_and_waitlists_the_tail() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let requests = batch(&["a", "b", "c"]);
        let allocation = broker.negotiate_contended(&requests, Fairness::Fcfs, QosOffer::to_fuzzy);

        assert_eq!(allocation.report.granted, 2);
        assert_eq!(allocation.report.waitlisted, 1);
        assert_eq!(allocation.report.preempted, 0);
        assert_eq!(granted_clients(&allocation), vec!["a", "b"]);
        assert!(matches!(
            allocation.outcomes[2].1,
            ContentionOutcome::Waitlisted { age: 1 }
        ));
        // Arrival order: "a" took the better service.
        let ContentionOutcome::Granted(sla) = &allocation.outcomes[0].1 else {
            panic!("a should be granted");
        };
        assert_eq!(sla.service.as_str(), "svc-a");
    }

    #[test]
    fn fcfs_starves_the_last_client_across_waves() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let requests = batch(&["a", "b", "c"]);
        for wave in 1..=4u64 {
            let allocation =
                broker.negotiate_contended(&requests, Fairness::Fcfs, QosOffer::to_fuzzy);
            assert_eq!(granted_clients(&allocation), vec!["a", "b"]);
            assert_eq!(allocation.report.max_starvation_age, wave);
            assert!(matches!(
                allocation.outcomes[2].1,
                ContentionOutcome::Waitlisted { age } if age == wave
            ));
        }
    }

    #[test]
    fn leximin_rotates_scarce_slots_so_nobody_starves() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let requests = batch(&["a", "b", "c"]);
        let mut grants: HashMap<String, usize> = HashMap::new();
        for wave in 1..=4u64 {
            let allocation =
                broker.negotiate_contended(&requests, Fairness::Leximin, QosOffer::to_fuzzy);
            assert_eq!(allocation.report.granted, 2, "wave {wave}");
            for client in granted_clients(&allocation) {
                *grants.entry(client).or_default() += 1;
            }
            // Denied clients come back with top priority, so nobody is
            // ever two waves behind.
            assert!(
                allocation.report.max_starvation_age <= 1,
                "wave {wave}: starvation age {}",
                allocation.report.max_starvation_age
            );
        }
        for client in ["a", "b", "c"] {
            assert!(
                grants.get(client).copied().unwrap_or(0) >= 2,
                "{client} granted {grants:?}"
            );
        }
    }

    #[test]
    fn nash_also_rotates_scarce_slots() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let requests = batch(&["a", "b", "c"]);
        for _ in 0..4 {
            let allocation =
                broker.negotiate_contended(&requests, Fairness::Nash, QosOffer::to_fuzzy);
            assert_eq!(allocation.report.granted, 2);
            assert!(allocation.report.max_starvation_age <= 1);
        }
    }

    #[test]
    fn preemption_is_classified_against_the_fcfs_baseline() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let requests = batch(&["a", "b", "c"]);
        // Wave 1 under FCFS grants a and b, leaving c starving.
        broker.negotiate_contended(&requests, Fairness::Fcfs, QosOffer::to_fuzzy);
        // Wave 2 under leximin must serve c; one of the FCFS winners
        // loses its slot and is reported preempted, not waitlisted.
        let allocation =
            broker.negotiate_contended(&requests, Fairness::Leximin, QosOffer::to_fuzzy);
        assert!(granted_clients(&allocation).contains(&"c".to_owned()));
        assert_eq!(allocation.report.preempted, 1);
        assert_eq!(allocation.report.waitlisted, 0);
        let preempted: Vec<&str> = allocation
            .outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ContentionOutcome::Preempted))
            .map(|(c, _)| c.as_str())
            .collect();
        assert!(preempted == ["a"] || preempted == ["b"], "{preempted:?}");
    }

    #[test]
    fn clients_without_agreements_are_unserved_not_errors() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let mut requests = batch(&["a", "picky"]);
        // An acceptance floor above every offer: no agreement exists.
        requests[1].request = compute_request(0.95);
        let allocation =
            broker.negotiate_contended(&requests, Fairness::Leximin, QosOffer::to_fuzzy);
        assert!(matches!(
            allocation.outcomes[1].1,
            ContentionOutcome::Unserved
        ));
        assert_eq!(allocation.report.unserved, 1);
        assert_eq!(allocation.report.granted, 1);
    }

    #[test]
    fn utilitarian_maximises_total_softness_in_a_single_wave() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let requests = batch(&["a", "b", "c"]);
        let allocation =
            broker.negotiate_contended(&requests, Fairness::Utilitarian, QosOffer::to_fuzzy);
        // Both slots used, sum = 0.9 + 0.6.
        assert_eq!(allocation.report.granted, 2);
        assert!((allocation.report.sum_softness - 1.5).abs() < 1e-9);
        assert!((allocation.report.spread - 0.3).abs() < 1e-9);
    }

    #[test]
    fn ample_capacity_grants_everyone_with_perfect_jain() {
        let mut registry = Registry::new();
        registry.publish(flat_provider("svc-a", 0.8, 3));
        let broker = Broker::new(Fuzzy, registry);
        let requests = batch(&["a", "b", "c"]);
        let allocation =
            broker.negotiate_contended(&requests, Fairness::Leximin, QosOffer::to_fuzzy);
        assert_eq!(allocation.report.granted, 3);
        assert_eq!(allocation.report.max_starvation_age, 0);
        assert!((allocation.report.jain - 1.0).abs() < 1e-9);
        assert_eq!(allocation.report.spread, 0.0);
    }

    #[test]
    fn batch_shares_one_registry_epoch() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let requests = batch(&["a", "b"]);
        let allocation =
            broker.negotiate_contended(&requests, Fairness::Leximin, QosOffer::to_fuzzy);
        assert_eq!(allocation.epoch, broker.registry().epoch());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let broker = Broker::new(Fuzzy, contended_registry());
        let allocation = broker.negotiate_contended(
            &Vec::<ContendedRequest<Fuzzy>>::new(),
            Fairness::Leximin,
            QosOffer::to_fuzzy,
        );
        assert!(allocation.outcomes.is_empty());
        assert_eq!(allocation.report.clients, 0);
        assert_eq!(allocation.report.jain, 1.0);
    }

    #[test]
    fn greedy_fallback_still_rotates_for_large_batches() {
        let mut registry = Registry::new();
        registry.publish(flat_provider("svc-a", 0.9, 4));
        registry.publish(flat_provider("svc-b", 0.6, 4));
        let broker = Broker::new(Fuzzy, registry);
        let names: Vec<String> = (0..12).map(|i| format!("client-{i:02}")).collect();
        let requests: Vec<ContendedRequest<Fuzzy>> = names
            .iter()
            .map(|c| ContendedRequest {
                client: c.clone(),
                request: compute_request(0.5),
            })
            .collect();
        assert!(requests.len() > MAX_EXACT_CLIENTS);
        let mut grants: HashMap<String, usize> = HashMap::new();
        for _ in 0..3 {
            let allocation =
                broker.negotiate_contended(&requests, Fairness::Leximin, QosOffer::to_fuzzy);
            assert_eq!(allocation.report.granted, 8);
            assert!(allocation.report.max_starvation_age <= 1);
            for client in granted_clients(&allocation) {
                *grants.entry(client).or_default() += 1;
            }
        }
        // 24 grants across 12 clients over 3 waves: everyone served.
        for name in &names {
            assert!(grants.get(name).copied().unwrap_or(0) >= 1, "{name}");
        }
    }
}
