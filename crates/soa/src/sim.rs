//! Simulated services and SLA monitoring.
//!
//! The paper's services live on the Internet; here they are simulated
//! in-process with seeded failure and latency models, which is all the
//! framework ever observes of them. The [`SlaMonitor`] implements the
//! paper's requirement that "this composition needs to be monitored":
//! it drives invocations against a simulated service and compares the
//! measured reliability with the level agreed in the SLA.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softsoa_semiring::Unit;

/// The failure/latency model of a simulated service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Probability that an invocation succeeds.
    pub reliability: f64,
    /// Mean latency of a successful invocation, in milliseconds.
    pub mean_latency_ms: f64,
    /// RNG seed; equal seeds give identical behaviour.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            reliability: 0.99,
            mean_latency_ms: 20.0,
            seed: 0,
        }
    }
}

/// A failed invocation of a simulated service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceFault;

impl std::fmt::Display for ServiceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("simulated service fault")
    }
}

impl std::error::Error for ServiceFault {}

/// An in-process simulated service.
///
/// # Examples
///
/// ```
/// use softsoa_soa::{SimConfig, SimService};
///
/// let mut svc = SimService::new(SimConfig { reliability: 0.8, ..Default::default() });
/// for _ in 0..1000 { let _ = svc.invoke(); }
/// let measured = svc.measured_reliability().unwrap();
/// assert!((measured - 0.8).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct SimService {
    config: SimConfig,
    rng: StdRng,
    invocations: u64,
    failures: u64,
}

impl SimService {
    /// Creates a service from its model.
    pub fn new(config: SimConfig) -> SimService {
        SimService {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            invocations: 0,
            failures: 0,
        }
    }

    /// Invokes the service once, returning the latency in
    /// milliseconds.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceFault`] with probability
    /// `1 - config.reliability`.
    pub fn invoke(&mut self) -> Result<f64, ServiceFault> {
        self.invocations += 1;
        if self.rng.random::<f64>() >= self.config.reliability {
            self.failures += 1;
            return Err(ServiceFault);
        }
        // Exponentially distributed latency around the mean.
        let u: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        Ok(-u.ln() * self.config.mean_latency_ms)
    }

    /// Total invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Failed invocations so far.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// The empirically measured reliability, if any invocation
    /// happened.
    pub fn measured_reliability(&self) -> Option<f64> {
        if self.invocations == 0 {
            None
        } else {
            Some(1.0 - self.failures as f64 / self.invocations as f64)
        }
    }
}

/// The verdict of monitoring a service against its agreed level.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorReport {
    /// The reliability agreed in the SLA.
    pub agreed: f64,
    /// The reliability measured over the monitoring window.
    pub measured: f64,
    /// Number of invocations in the window.
    pub window: u64,
    /// Whether the SLA is violated (measured below agreed minus
    /// tolerance).
    pub violated: bool,
}

/// Monitors a simulated service against an agreed reliability level.
#[derive(Debug, Clone, Copy)]
pub struct SlaMonitor {
    /// Invocations per monitoring window.
    pub window: u64,
    /// Slack below the agreed level tolerated before declaring a
    /// violation (absorbs sampling noise).
    pub tolerance: f64,
}

impl Default for SlaMonitor {
    fn default() -> SlaMonitor {
        SlaMonitor {
            window: 1000,
            tolerance: 0.02,
        }
    }
}

impl SlaMonitor {
    /// Drives one monitoring window and issues a verdict.
    pub fn observe(&self, service: &mut SimService, agreed: Unit) -> MonitorReport {
        let before_inv = service.invocations();
        let before_fail = service.failures();
        for _ in 0..self.window {
            let _ = service.invoke();
        }
        let inv = service.invocations() - before_inv;
        let fail = service.failures() - before_fail;
        let measured = if inv == 0 {
            0.0
        } else {
            1.0 - fail as f64 / inv as f64
        };
        MonitorReport {
            agreed: agreed.get(),
            measured,
            window: inv,
            violated: measured + self.tolerance < agreed.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_estimate_converges() {
        let mut svc = SimService::new(SimConfig {
            reliability: 0.7,
            seed: 1,
            ..Default::default()
        });
        for _ in 0..5000 {
            let _ = svc.invoke();
        }
        let measured = svc.measured_reliability().unwrap();
        assert!((measured - 0.7).abs() < 0.03, "measured {measured}");
    }

    #[test]
    fn same_seed_same_behaviour() {
        let run = |seed| {
            let mut svc = SimService::new(SimConfig {
                reliability: 0.5,
                seed,
                ..Default::default()
            });
            (0..64).map(|_| svc.invoke().is_ok()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn monitor_accepts_honest_service() {
        let mut svc = SimService::new(SimConfig {
            reliability: 0.95,
            seed: 2,
            ..Default::default()
        });
        let report = SlaMonitor::default().observe(&mut svc, Unit::new(0.95).unwrap());
        assert!(!report.violated, "measured {}", report.measured);
        assert_eq!(report.window, 1000);
    }

    #[test]
    fn monitor_flags_dishonest_service() {
        // Agreed 0.99 but actually 0.7.
        let mut svc = SimService::new(SimConfig {
            reliability: 0.7,
            seed: 3,
            ..Default::default()
        });
        let report = SlaMonitor::default().observe(&mut svc, Unit::new(0.99).unwrap());
        assert!(report.violated);
        assert!(report.measured < report.agreed);
    }

    #[test]
    fn no_invocations_no_estimate() {
        let svc = SimService::new(SimConfig::default());
        assert_eq!(svc.measured_reliability(), None);
    }

    #[test]
    fn latency_is_positive_and_roughly_mean() {
        let mut svc = SimService::new(SimConfig {
            reliability: 1.0,
            mean_latency_ms: 10.0,
            seed: 4,
        });
        let mut total = 0.0;
        let n = 4000;
        for _ in 0..n {
            let l = svc.invoke().unwrap();
            assert!(l >= 0.0);
            total += l;
        }
        let mean = total / n as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean {mean}");
    }
}
