//! Service-oriented architecture substrate: services, registry, QoS
//! broker and SLA negotiation.
//!
//! This crate implements Secs. 3 and 4 of *Bistarelli & Santini, "Soft
//! Constraints for Dependable Service Oriented Architectures"* (DSN
//! 2008) — the SOA the soft constraint framework is embedded in:
//!
//! - [`QosDocument`] / [`QosOffer`] — the typed stand-in for the
//!   XML-based QoS documents providers publish, and their translation
//!   into soft constraints over each semiring;
//! - [`Registry`] — publication and discovery (the UDDI stand-in);
//! - [`Broker`] — the QoS broker of Fig. 6: it embeds a soft
//!   constraint solver and the `nmsccp` engine and runs the five-step
//!   negotiation protocol, producing [`Sla`] bindings;
//! - [`Composition`] — service aggregation with `⊗`-combined QoS and
//!   projection-defined interfaces;
//! - [`ServiceQuery`] — the SOA *query engine* (the paper's stated
//!   future work): composite-service queries compiled into one SCSP
//!   for joint provider selection and QoS binding;
//! - [`SimService`] / [`SlaMonitor`] — simulated services with seeded
//!   failure models, and the monitoring the paper requires for
//!   compositions;
//! - [`Orchestrator`] — workload execution over a composed pipeline
//!   with retries, per-stage measurement and SLA verdicts;
//! - [`ChaosConfig`] — chaos-mode negotiation and querying: provider
//!   faults from the seeded failure model are injected into running
//!   `nmsccp` sessions, which recover by retrying, rolling back and
//!   relaxing ([`Broker::negotiate_resilient`],
//!   [`Broker::query_resilient`]).
//!
//! # Example: negotiating the fuzzy agreement of Fig. 5
//!
//! ```
//! use softsoa_core::{Constraint, Domain, Var};
//! use softsoa_nmsccp::Interval;
//! use softsoa_semiring::{Fuzzy, Unit};
//! use softsoa_soa::*;
//! use softsoa_dependability::Attribute;
//!
//! let mut registry = Registry::new();
//! registry.publish(ServiceDescription::new(
//!     "svc-1", "acme", "web-service",
//!     QosDocument::new("svc-1").with_offer(QosOffer {
//!         attribute: Attribute::Reliability,
//!         variable: "x".into(),
//!         shape: OfferShape::Piecewise { points: vec![(1, 1.0), (9, 0.0)] },
//!     })));
//!
//! let request = NegotiationRequest {
//!     capability: "web-service".into(),
//!     variable: Var::new("x"),
//!     domain: Domain::ints(1..=9),
//!     constraint: Constraint::unary(Fuzzy, "x", |v| {
//!         Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
//!     }),
//!     acceptance: Interval::levels(Unit::new(0.3).unwrap(), Unit::MAX),
//! };
//!
//! let sla = Broker::new(Fuzzy, registry).negotiate(&request, QosOffer::to_fuzzy)?;
//! assert_eq!(sla.agreed_level, Unit::new(0.5).unwrap());
//! # Ok::<(), NegotiationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod chaos;
mod compose;
mod contention;
mod orchestrator;
mod qos;
mod query;
mod registry;
pub mod server;
mod sim;

pub use broker::{
    Broker, BrokerConfig, NegotiationError, NegotiationRequest, RegistrySnapshot, RegistryWriter,
    Sla,
};
pub use chaos::{provider_fault_plan, ChaosConfig, ChaosReport, QueryChaosReport};
pub use compose::Composition;
pub use contention::{
    ContendedAllocation, ContendedRequest, ContentionOutcome, Fairness, FairnessReport,
    MAX_EXACT_CLIENTS,
};
pub use orchestrator::{Orchestrator, SlaVerdict, StageStats, WorkloadReport};
pub use qos::{OfferShape, QosDocument, QosOffer};
pub use query::{QueryError, QueryPlan, QueryStage, ServiceQuery};
pub use registry::{ProviderId, Registry, ServiceDescription, ServiceId};
pub use server::{DrainReport, NegotiationServer, ServerConfig, ServerHandle, StoreChaos};
pub use sim::{MonitorReport, ServiceFault, SimConfig, SimService, SlaMonitor};
