//! The SOA query engine — the paper's principal future work.
//!
//! > "The main results will be the development of a SOA query engine,
//! > that will use the constraint satisfaction solver to select which
//! > available service will satisfy a given query. It will also look
//! > for complex services by composing together simpler service
//! > interfaces." (Sec. 8)
//!
//! A [`ServiceQuery`] describes a composite service as a list of
//! *stages* (one capability each, with a per-stage QoS requirement)
//! plus *cross-stage* constraints (e.g. a total budget over all
//! stages). The engine compiles the whole query into **one SCSP**:
//! each stage contributes a symbolic *choice variable* ranging over
//! the candidate services and a QoS variable, linked by a dispatch
//! constraint that scores `(service, qos-value)` pairs with the
//! chosen provider's translated offer. Solving the SCSP performs
//! *joint* optimisation: unlike the greedy per-stage
//! [`Broker::compose`], it can sacrifice one stage to satisfy a
//! cross-stage constraint.

use std::collections::HashMap;
use std::fmt;

use softsoa_core::solve::{BranchAndBound, ParetoBranchAndBound, Solver, SolverConfig, VarOrder};
use softsoa_core::{Assignment, Constraint, Domain, Scsp, SolveError, Val, Var};
use softsoa_semiring::{Residuated, Semiring};

use crate::registry::ProviderId;
use crate::{Broker, QosOffer, ServiceId};

/// One stage of a composite-service query.
#[derive(Debug, Clone)]
pub struct QueryStage<S: Semiring> {
    /// The capability providers must advertise.
    pub capability: String,
    /// The stage's QoS variable (distinct across stages).
    pub variable: Var,
    /// The QoS variable's domain.
    pub domain: Domain,
    /// The client's requirement on this stage.
    pub requirement: Constraint<S>,
}

/// A query for a composite service.
#[derive(Debug, Clone)]
pub struct ServiceQuery<S: Semiring> {
    /// The stages to fill, in pipeline order.
    pub stages: Vec<QueryStage<S>>,
    /// Constraints spanning several stage variables (budgets,
    /// compatibility, end-to-end requirements).
    pub cross_constraints: Vec<Constraint<S>>,
    /// The minimum acceptable plan level, if any.
    pub min_level: Option<S::Value>,
}

/// The plan answering a query: one service per stage, the QoS binding
/// and the achieved level.
#[derive(Debug, Clone)]
pub struct QueryPlan<S: Semiring> {
    /// `(service, provider)` chosen for each stage, in stage order.
    pub selections: Vec<(ServiceId, ProviderId)>,
    /// The values of every stage QoS variable.
    pub binding: Assignment,
    /// The achieved combined level.
    pub level: S::Value,
}

/// An error produced by the query engine.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum QueryError {
    /// A stage's capability has no provider with a matching offer.
    NoProvider {
        /// Index of the stage.
        stage: usize,
        /// Its capability.
        capability: String,
    },
    /// The SCSP has no solution above `0` (or above `min_level`).
    NoPlan,
    /// Solving failed.
    Solve(SolveError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoProvider { stage, capability } => {
                write!(f, "stage {stage}: no provider offers `{capability}`")
            }
            QueryError::NoPlan => write!(f, "no plan satisfies the query"),
            QueryError::Solve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for QueryError {
    fn from(e: SolveError) -> QueryError {
        QueryError::Solve(e)
    }
}

fn choice_var(stage: usize) -> Var {
    Var::new(format!("__svc{stage}"))
}

impl<S: Residuated> Broker<S> {
    /// Compiles the query into a single SCSP over choice and QoS
    /// variables (see the module docs) — exposed for inspection and
    /// for feeding alternative solvers.
    ///
    /// # Errors
    ///
    /// Returns [`QueryError::NoProvider`] if some stage has no
    /// candidate with a matching offer.
    pub fn compile_query<F>(
        &self,
        query: &ServiceQuery<S>,
        translate: F,
    ) -> Result<Scsp<S>, QueryError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        let semiring = self.semiring().clone();
        let mut problem = Scsp::new(semiring.clone());
        let mut con: Vec<Var> = Vec::new();

        for (index, stage) in query.stages.iter().enumerate() {
            // Candidates: providers of the capability whose offers
            // mention the stage variable.
            let mut dispatch: HashMap<Val, Constraint<S>> = HashMap::new();
            for service in self.registry().discover(&stage.capability) {
                let offers: Vec<Constraint<S>> = service
                    .qos
                    .offers
                    .iter()
                    .filter(|o| o.variable == stage.variable.name())
                    .map(&translate)
                    .collect();
                if offers.is_empty() {
                    continue;
                }
                let combined = offers
                    .iter()
                    .skip(1)
                    .fold(offers[0].clone(), |acc, c| acc.combine(c));
                dispatch.insert(Val::sym(service.id.as_str()), combined);
            }
            if dispatch.is_empty() {
                return Err(QueryError::NoProvider {
                    stage: index,
                    capability: stage.capability.clone(),
                });
            }

            let sv = choice_var(index);
            let candidates: Vec<Val> = dispatch.keys().cloned().collect();
            problem.add_domain(sv.clone(), Domain::new(candidates));
            problem.add_domain(stage.variable.clone(), stage.domain.clone());

            // The dispatch constraint: level of (service, qos value).
            let zero = semiring.zero();
            problem.add_constraint(
                Constraint::binary(
                    semiring.clone(),
                    sv.clone(),
                    stage.variable.clone(),
                    move |svc, x| match dispatch.get(svc) {
                        Some(offer) => offer.eval_tuple(std::slice::from_ref(x)),
                        None => zero.clone(),
                    },
                )
                .with_label(format!("offer[{}]", stage.capability)),
            );
            problem.add_constraint(stage.requirement.clone());
            con.push(sv);
            con.push(stage.variable.clone());
        }

        for cross in &query.cross_constraints {
            problem.add_constraint(cross.clone());
        }
        Ok(problem.of_interest(con))
    }

    /// Answers a composite-service query by jointly optimising the
    /// provider selection and QoS binding of every stage.
    ///
    /// Uses branch-and-bound for totally ordered semirings and
    /// Pareto (frontier-bounded) branch-and-bound otherwise; in the
    /// partial-order case the returned plan is one non-dominated
    /// provider/binding combination.
    ///
    /// # Errors
    ///
    /// [`QueryError::NoProvider`] if a stage has no candidates;
    /// [`QueryError::NoPlan`] if nothing scores above `0` (or above
    /// `query.min_level`).
    ///
    /// # Examples
    ///
    /// ```
    /// use softsoa_core::{Constraint, Domain, Var};
    /// use softsoa_semiring::Probabilistic;
    /// use softsoa_soa::*;
    /// use softsoa_dependability::Attribute;
    ///
    /// let mut registry = Registry::new();
    /// registry.publish(ServiceDescription::new(
    ///     "filter-1", "acme", "filter",
    ///     QosDocument::new("filter-1").with_offer(QosOffer {
    ///         attribute: Attribute::Reliability,
    ///         variable: "f".into(),
    ///         shape: OfferShape::Constant { level: 0.9 },
    ///     })));
    /// let broker = Broker::new(Probabilistic, registry);
    ///
    /// let query = ServiceQuery {
    ///     stages: vec![QueryStage {
    ///         capability: "filter".into(),
    ///         variable: Var::new("f"),
    ///         domain: Domain::ints(0..=1),
    ///         requirement: Constraint::always(Probabilistic),
    ///     }],
    ///     cross_constraints: vec![],
    ///     min_level: None,
    /// };
    /// let plan = broker.query(&query, QosOffer::to_probabilistic)?;
    /// assert_eq!(plan.selections[0].0, ServiceId::new("filter-1"));
    /// # Ok::<(), QueryError>(())
    /// ```
    pub fn query<F>(
        &self,
        query: &ServiceQuery<S>,
        translate: F,
    ) -> Result<QueryPlan<S>, QueryError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        self.query_with(query, translate, &SolverConfig::default())
    }

    /// Like [`Broker::query`] but under an explicit solver engine
    /// configuration (compiled evaluation, worker threads).
    ///
    /// # Errors
    ///
    /// Same as [`Broker::query`].
    pub fn query_with<F>(
        &self,
        query: &ServiceQuery<S>,
        translate: F,
        config: &SolverConfig,
    ) -> Result<QueryPlan<S>, QueryError>
    where
        F: Fn(&QosOffer) -> Constraint<S>,
    {
        let semiring = self.semiring().clone();
        let problem = self.compile_query(query, translate)?;
        let solution = if semiring.is_total() {
            BranchAndBound::with_config(VarOrder::MostConstrained, *config).solve(&problem)?
        } else {
            ParetoBranchAndBound::with_config(*config).solve(&problem)?
        };
        if let Some(stats) = solution.stats() {
            stats.emit(&self.telemetry, "query");
        }
        let Some((eta, level)) = solution.best().first() else {
            return Err(QueryError::NoPlan);
        };
        if let Some(min) = &query.min_level {
            if semiring.lt(level, min) {
                return Err(QueryError::NoPlan);
            }
        }

        let mut selections = Vec::with_capacity(query.stages.len());
        let mut binding = Assignment::new();
        for (index, stage) in query.stages.iter().enumerate() {
            let choice = eta
                .get(&choice_var(index))
                .and_then(Val::as_sym)
                .expect("choice variable assigned");
            let service = ServiceId::new(choice);
            let provider = self
                .registry()
                .get(&service)
                .expect("selected service is registered")
                .provider
                .clone();
            selections.push((service, provider));
            if let Some(v) = eta.get(&stage.variable) {
                binding.set(stage.variable.clone(), v.clone());
            }
        }
        Ok(QueryPlan {
            selections,
            binding,
            level: level.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OfferShape, QosDocument, Registry, ServiceDescription};
    use softsoa_dependability::Attribute;
    use softsoa_semiring::{Probabilistic, Unit, Weighted, WeightedInt};

    fn provider(id: &str, capability: &str, var: &str, shape: OfferShape) -> ServiceDescription {
        ServiceDescription::new(
            id,
            format!("{id}-org").as_str(),
            capability,
            QosDocument::new(id).with_offer(QosOffer {
                attribute: Attribute::Reliability,
                variable: var.into(),
                shape,
            }),
        )
    }

    fn stage<S: Semiring>(
        capability: &str,
        var: &str,
        domain: Domain,
        requirement: Constraint<S>,
    ) -> QueryStage<S> {
        QueryStage {
            capability: capability.into(),
            variable: Var::new(var),
            domain,
            requirement,
        }
    }

    #[test]
    fn single_stage_query_picks_best_provider() {
        let mut registry = Registry::new();
        registry.publish(provider(
            "a",
            "filter",
            "f",
            OfferShape::Constant { level: 0.8 },
        ));
        registry.publish(provider(
            "b",
            "filter",
            "f",
            OfferShape::Constant { level: 0.95 },
        ));
        let broker = Broker::new(Probabilistic, registry);
        let query = ServiceQuery {
            stages: vec![stage(
                "filter",
                "f",
                Domain::ints(0..=1),
                Constraint::always(Probabilistic),
            )],
            cross_constraints: vec![],
            min_level: None,
        };
        let plan = broker.query(&query, QosOffer::to_probabilistic).unwrap();
        assert_eq!(plan.selections[0].0, ServiceId::new("b"));
        assert_eq!(plan.level, Unit::clamped(0.95));
    }

    #[test]
    fn joint_optimisation_beats_greedy_under_a_budget() {
        // Two stages, weighted (cost) semiring. Stage costs depend on a
        // per-stage quality knob q ∈ {0, 1} (higher quality, higher
        // cost). A cross-constraint demands total quality ≥ 1.
        //
        // Greedy per-stage composition would pick q = 0 twice (cheapest)
        // and violate the quality floor; the query engine must spend on
        // exactly one stage.
        let mut registry = Registry::new();
        registry.publish(provider(
            "s1",
            "stage1",
            "q1",
            OfferShape::Linear {
                slope: 5.0,
                intercept: 1.0,
            },
        ));
        registry.publish(provider(
            "s2",
            "stage2",
            "q2",
            OfferShape::Linear {
                slope: 3.0,
                intercept: 1.0,
            },
        ));
        let broker = Broker::new(Weighted, registry);
        let quality_floor =
            Constraint::crisp(Weighted, &softsoa_core::vars(["q1", "q2"]), |vals| {
                vals[0].as_int().unwrap() + vals[1].as_int().unwrap() >= 1
            });
        let query = ServiceQuery {
            stages: vec![
                stage(
                    "stage1",
                    "q1",
                    Domain::ints(0..=1),
                    Constraint::always(Weighted),
                ),
                stage(
                    "stage2",
                    "q2",
                    Domain::ints(0..=1),
                    Constraint::always(Weighted),
                ),
            ],
            cross_constraints: vec![quality_floor],
            min_level: None,
        };
        let plan = broker.query(&query, QosOffer::to_weighted).unwrap();
        // Cheapest feasible: raise quality on the cheaper stage 2:
        // cost = (5·0 + 1) + (3·1 + 1) = 5.
        assert_eq!(plan.level, softsoa_semiring::Weight::new(5.0).unwrap());
        assert_eq!(plan.binding.get(&Var::new("q1")).unwrap().as_int(), Some(0));
        assert_eq!(plan.binding.get(&Var::new("q2")).unwrap().as_int(), Some(1));
    }

    #[test]
    fn per_stage_provider_choice_interacts_with_cross_constraints() {
        // One capability, two providers with opposite cost curves; two
        // stages share a compatibility constraint: equal knob values.
        let mut registry = Registry::new();
        registry.publish(provider(
            "cheap-low",
            "compute",
            "k1",
            OfferShape::Linear {
                slope: 10.0,
                intercept: 0.0,
            },
        ));
        registry.publish(provider(
            "cheap-high",
            "compute",
            "k1",
            OfferShape::Linear {
                slope: -10.0,
                intercept: 20.0,
            },
        ));
        let broker = Broker::new(Weighted, registry);
        let query = ServiceQuery {
            stages: vec![stage(
                "compute",
                "k1",
                Domain::ints(0..=2),
                // The client needs the knob at 2.
                Constraint::crisp(Weighted, &softsoa_core::vars(["k1"]), |vals| {
                    vals[0].as_int() == Some(2)
                }),
            )],
            cross_constraints: vec![],
            min_level: None,
        };
        let plan = broker.query(&query, QosOffer::to_weighted).unwrap();
        // At k1 = 2: cheap-low costs 20, cheap-high costs 0.
        assert_eq!(plan.selections[0].0, ServiceId::new("cheap-high"));
        assert_eq!(plan.level, softsoa_semiring::Weight::ZERO);
    }

    #[test]
    fn partial_order_queries_use_the_frontier() {
        use softsoa_semiring::{Product, Weight};
        // Cost × reliability: the engine must pick a non-dominated plan.
        type CostRel = Product<Weighted, Probabilistic>;
        let semiring = CostRel::new(Weighted, Probabilistic);
        let mut registry = Registry::new();
        for (id, cost, rel) in [
            ("cheap", 5.0, 0.8),
            ("solid", 20.0, 0.99),
            ("bad", 25.0, 0.7),
        ] {
            registry.publish(ServiceDescription::new(
                id,
                "org",
                "compute",
                QosDocument::new(id).with_offer(QosOffer {
                    attribute: Attribute::Reliability,
                    variable: "k".into(),
                    shape: OfferShape::Constant { level: rel },
                }),
            ));
            // Attach the cost as a second offer on the same variable.
            let mut desc = registry.get(&ServiceId::new(id)).unwrap().clone();
            desc.qos = desc.qos.with_offer(QosOffer {
                attribute: Attribute::Maintainability,
                variable: "k".into(),
                shape: OfferShape::Constant { level: cost },
            });
            registry.publish(desc);
        }
        let broker = Broker::new(semiring, registry);
        let query = ServiceQuery {
            stages: vec![stage(
                "compute",
                "k",
                Domain::ints(0..=0),
                Constraint::always(semiring),
            )],
            cross_constraints: vec![],
            min_level: None,
        };
        // Translate both offers into the product semiring: reliability
        // offers carry full cost, cost offers carry full reliability.
        let plan = broker
            .query(&query, |offer: &QosOffer| match offer.attribute {
                Attribute::Maintainability => {
                    let shape = offer.shape.clone();
                    Constraint::unary(
                        CostRel::new(Weighted, Probabilistic),
                        Var::new(&offer.variable),
                        move |v| {
                            (
                                Weight::saturating(shape.level_at(v.as_int().unwrap_or(0))),
                                Unit::MAX,
                            )
                        },
                    )
                }
                _ => {
                    let shape = offer.shape.clone();
                    Constraint::unary(
                        CostRel::new(Weighted, Probabilistic),
                        Var::new(&offer.variable),
                        move |v| {
                            (
                                Weight::ZERO,
                                Unit::clamped(shape.level_at(v.as_int().unwrap_or(0))),
                            )
                        },
                    )
                }
            })
            .unwrap();
        // "bad" is dominated by "solid"; the plan must be one of the
        // frontier providers.
        let chosen = plan.selections[0].0.as_str();
        assert!(chosen == "cheap" || chosen == "solid", "chose {chosen}");
    }

    #[test]
    fn query_with_reference_config_agrees_with_default() {
        let mut registry = Registry::new();
        registry.publish(provider(
            "a",
            "filter",
            "f",
            OfferShape::Constant { level: 0.8 },
        ));
        registry.publish(provider(
            "b",
            "filter",
            "f",
            OfferShape::Constant { level: 0.95 },
        ));
        let broker = Broker::new(Probabilistic, registry);
        let query = ServiceQuery {
            stages: vec![stage(
                "filter",
                "f",
                Domain::ints(0..=1),
                Constraint::always(Probabilistic),
            )],
            cross_constraints: vec![],
            min_level: None,
        };
        let default = broker.query(&query, QosOffer::to_probabilistic).unwrap();
        let reference = broker
            .query_with(
                &query,
                QosOffer::to_probabilistic,
                &SolverConfig::reference(),
            )
            .unwrap();
        assert_eq!(default.selections, reference.selections);
        assert_eq!(default.level, reference.level);
    }

    #[test]
    fn missing_capability_is_reported_with_its_stage() {
        let broker = Broker::new(WeightedInt, Registry::new());
        let query: ServiceQuery<WeightedInt> = ServiceQuery {
            stages: vec![stage(
                "nowhere",
                "x",
                Domain::ints(0..=1),
                Constraint::always(WeightedInt),
            )],
            cross_constraints: vec![],
            min_level: None,
        };
        match broker.query(&query, |_| Constraint::always(WeightedInt)) {
            Err(QueryError::NoProvider { stage, capability }) => {
                assert_eq!(stage, 0);
                assert_eq!(capability, "nowhere");
            }
            other => panic!("expected NoProvider, got {other:?}"),
        }
    }

    #[test]
    fn min_level_rejects_poor_plans() {
        let mut registry = Registry::new();
        registry.publish(provider(
            "a",
            "filter",
            "f",
            OfferShape::Constant { level: 0.5 },
        ));
        let broker = Broker::new(Probabilistic, registry);
        let query = ServiceQuery {
            stages: vec![stage(
                "filter",
                "f",
                Domain::ints(0..=1),
                Constraint::always(Probabilistic),
            )],
            cross_constraints: vec![],
            min_level: Some(Unit::clamped(0.9)),
        };
        assert!(matches!(
            broker.query(&query, QosOffer::to_probabilistic),
            Err(QueryError::NoPlan)
        ));
    }

    #[test]
    fn infeasible_cross_constraint_is_no_plan() {
        let mut registry = Registry::new();
        registry.publish(provider(
            "a",
            "filter",
            "f",
            OfferShape::Constant { level: 0.9 },
        ));
        let broker = Broker::new(Probabilistic, registry);
        let query = ServiceQuery {
            stages: vec![stage(
                "filter",
                "f",
                Domain::ints(0..=1),
                Constraint::always(Probabilistic),
            )],
            cross_constraints: vec![Constraint::never(Probabilistic)],
            min_level: None,
        };
        assert!(matches!(
            broker.query(&query, QosOffer::to_probabilistic),
            Err(QueryError::NoPlan)
        ));
    }
}
