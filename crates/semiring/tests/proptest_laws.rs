//! Property-based verification of the c-semiring axioms on randomly
//! sampled carriers, for every instance the crate ships.
//!
//! The `laws` checkers verify every axiom on all pairs/triples drawn
//! from the sample vector, so each proptest case covers O(n³)
//! algebraic identities.

use proptest::collection::vec;
use proptest::prelude::*;
use softsoa_semiring::{
    laws, Boolean, Capacity, Fuzzy, Lukasiewicz, Probabilistic, Product, SetSemiring, Unit, Weight,
    Weighted, WeightedInt,
};
use std::collections::BTreeSet;

/// Exact decimals in [0, 1] so equality-based laws are not defeated by
/// float rounding: k/64 with k ∈ 0..=64.
fn unit_strategy() -> impl Strategy<Value = Unit> {
    (0u32..=64).prop_map(|k| Unit::new(f64::from(k) / 64.0).unwrap())
}

/// Exact non-negative dyadics plus ∞.
fn weight_strategy() -> impl Strategy<Value = Weight> {
    prop_oneof![
        8 => (0u32..=512).prop_map(|k| Weight::new(f64::from(k) / 8.0).unwrap()),
        1 => Just(Weight::INFINITY),
    ]
}

fn set_strategy() -> impl Strategy<Value = BTreeSet<u8>> {
    vec(0u8..6, 0..6).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weighted_laws(samples in vec(weight_strategy(), 1..7)) {
        laws::assert_semiring_laws(&Weighted, &samples);
        laws::assert_residuation_laws(&Weighted, &samples);
    }

    #[test]
    fn weighted_int_laws(samples in vec(prop_oneof![8 => 0u64..1000, 1 => Just(u64::MAX)], 1..7)) {
        laws::assert_semiring_laws(&WeightedInt, &samples);
        laws::assert_residuation_laws(&WeightedInt, &samples);
        laws::assert_invertibility(&WeightedInt, &samples);
    }

    #[test]
    fn fuzzy_laws(samples in vec(unit_strategy(), 1..7)) {
        laws::assert_semiring_laws(&Fuzzy, &samples);
        laws::assert_residuation_laws(&Fuzzy, &samples);
        laws::assert_invertibility(&Fuzzy, &samples);
    }

    #[test]
    fn capacity_laws(samples in vec(weight_strategy(), 1..7)) {
        laws::assert_semiring_laws(&Capacity, &samples);
        laws::assert_residuation_laws(&Capacity, &samples);
        laws::assert_invertibility(&Capacity, &samples);
    }

    #[test]
    fn boolean_laws(samples in vec(any::<bool>(), 1..5)) {
        laws::assert_semiring_laws(&Boolean, &samples);
        laws::assert_residuation_laws(&Boolean, &samples);
        laws::assert_invertibility(&Boolean, &samples);
    }

    #[test]
    fn set_laws(samples in vec(set_strategy(), 1..6)) {
        let s = SetSemiring::from_iter(0u8..6);
        laws::assert_semiring_laws(&s, &samples);
        laws::assert_residuation_laws(&s, &samples);
    }

    #[test]
    fn product_laws(samples in vec((any::<bool>(), 0u64..50), 1..6)) {
        let s = Product::new(Boolean, WeightedInt);
        laws::assert_semiring_laws(&s, &samples);
        laws::assert_residuation_laws(&s, &samples);
    }

    /// Probabilistic × is float multiplication, which is not exactly
    /// associative; restrict the carrier to {0, 1/2ᵏ, 1} where it is.
    #[test]
    fn probabilistic_laws(samples in vec(
        prop_oneof![
            1 => Just(Unit::MIN),
            4 => (0u32..8).prop_map(|k| Unit::new(1.0 / f64::from(1u32 << k)).unwrap()),
            1 => Just(Unit::MAX),
        ], 1..6))
    {
        laws::assert_semiring_laws(&Probabilistic, &samples);
        laws::assert_residuation_laws(&Probabilistic, &samples);
    }

    /// Łukasiewicz ⊗ on multiples of 1/64 stays on multiples of 1/64,
    /// so exact equality holds.
    #[test]
    fn lukasiewicz_laws(samples in vec(unit_strategy(), 1..6)) {
        laws::assert_semiring_laws(&Lukasiewicz, &samples);
        laws::assert_residuation_laws(&Lukasiewicz, &samples);
    }

    /// The derived order agrees with the numeric order on every
    /// totally ordered scalar instance.
    #[test]
    fn orders_match_numeric(a in unit_strategy(), b in unit_strategy()) {
        use softsoa_semiring::Semiring;
        prop_assert_eq!(Fuzzy.leq(&a, &b), a <= b);
        prop_assert_eq!(Probabilistic.leq(&a, &b), a <= b);
        prop_assert_eq!(Lukasiewicz.leq(&a, &b), a <= b);
    }
}
