//! Reusable checkers for the c-semiring axioms.
//!
//! Each function takes a semiring and sampled values and panics with a
//! descriptive message on the first violated law. They are intended to
//! be driven by `proptest` (or exhaustive loops for small carriers) in
//! the tests of every [`Semiring`] instance, in this crate and
//! downstream.
//!
//! # Examples
//!
//! ```
//! use softsoa_semiring::{laws, Boolean};
//!
//! laws::assert_semiring_laws(&Boolean, &[false, true]);
//! laws::assert_residuation_laws(&Boolean, &[false, true]);
//! ```

use crate::{Residuated, Semiring};

/// Asserts every c-semiring axiom on all pairs/triples drawn from
/// `samples`.
///
/// Checked laws: commutativity, associativity and idempotence of `+`;
/// commutativity and associativity of `×`; unit and absorbing elements;
/// distribution of `×` over `+`; monotonicity of both operations with
/// respect to the induced order; `0` minimum and `1` maximum; `a + b`
/// being the least upper bound.
///
/// # Panics
///
/// Panics with a message naming the violated law and the witnesses.
pub fn assert_semiring_laws<S: Semiring>(s: &S, samples: &[S::Value]) {
    let zero = s.zero();
    let one = s.one();

    for a in samples {
        // Units.
        assert_eq!(s.plus(a, &zero), *a, "0 must be the unit of +: a={a:?}");
        assert_eq!(s.times(a, &one), *a, "1 must be the unit of ×: a={a:?}");
        // Absorbing elements.
        assert_eq!(s.times(a, &zero), zero, "0 must absorb ×: a={a:?}");
        assert_eq!(s.plus(a, &one), one, "1 must absorb +: a={a:?}");
        // Idempotence of +.
        assert_eq!(s.plus(a, a), *a, "+ must be idempotent: a={a:?}");
        // Bounds.
        assert!(s.leq(&zero, a), "0 must be the minimum: a={a:?}");
        assert!(s.leq(a, &one), "1 must be the maximum: a={a:?}");
    }

    for a in samples {
        for b in samples {
            assert_eq!(
                s.plus(a, b),
                s.plus(b, a),
                "+ must be commutative: a={a:?} b={b:?}"
            );
            assert_eq!(
                s.times(a, b),
                s.times(b, a),
                "× must be commutative: a={a:?} b={b:?}"
            );
            // a + b is an upper bound of both.
            let lub = s.plus(a, b);
            assert!(s.leq(a, &lub), "a ≤ a+b must hold: a={a:?} b={b:?}");
            assert!(s.leq(b, &lub), "b ≤ a+b must hold: a={a:?} b={b:?}");
            // The derived order must agree with the `leq` override.
            assert_eq!(
                s.leq(a, b),
                s.plus(a, b) == *b,
                "leq must agree with a+b=b: a={a:?} b={b:?}"
            );
        }
    }

    for a in samples {
        for b in samples {
            for c in samples {
                assert_eq!(
                    s.plus(&s.plus(a, b), c),
                    s.plus(a, &s.plus(b, c)),
                    "+ must be associative: a={a:?} b={b:?} c={c:?}"
                );
                assert_eq!(
                    s.times(&s.times(a, b), c),
                    s.times(a, &s.times(b, c)),
                    "× must be associative: a={a:?} b={b:?} c={c:?}"
                );
                assert_eq!(
                    s.times(a, &s.plus(b, c)),
                    s.plus(&s.times(a, b), &s.times(a, c)),
                    "× must distribute over +: a={a:?} b={b:?} c={c:?}"
                );
                // Monotonicity: b ≤ c ⇒ a∘b ≤ a∘c.
                if s.leq(b, c) {
                    assert!(
                        s.leq(&s.plus(a, b), &s.plus(a, c)),
                        "+ must be monotonic: a={a:?} b={b:?} c={c:?}"
                    );
                    assert!(
                        s.leq(&s.times(a, b), &s.times(a, c)),
                        "× must be monotonic: a={a:?} b={b:?} c={c:?}"
                    );
                }
                // a + b must be the *least* upper bound.
                if s.leq(a, c) && s.leq(b, c) {
                    assert!(
                        s.leq(&s.plus(a, b), c),
                        "a+b must be the least upper bound: a={a:?} b={b:?} c={c:?}"
                    );
                }
            }
        }
    }
}

/// Asserts the residuation (Galois) laws on all pairs drawn from
/// `samples`.
///
/// Checked laws: `b × (a ÷ b) ≤ a` (division under-approximates) and
/// maximality of the quotient among the samples:
/// `b × x ≤ a ⇒ x ≤ a ÷ b`. Together these state the Galois property
/// `b × x ≤ a ⇔ x ≤ a ÷ b` restricted to the sampled carrier.
///
/// # Panics
///
/// Panics with a message naming the violated law and the witnesses.
pub fn assert_residuation_laws<S: Residuated>(s: &S, samples: &[S::Value]) {
    for a in samples {
        for b in samples {
            let d = s.div(a, b);
            assert!(
                s.leq(&s.times(b, &d), a),
                "b × (a ÷ b) ≤ a must hold: a={a:?} b={b:?} quotient={d:?}"
            );
            for x in samples {
                if s.leq(&s.times(b, x), a) {
                    assert!(
                        s.leq(x, &d),
                        "quotient must be maximal: a={a:?} b={b:?} x={x:?} quotient={d:?}"
                    );
                }
            }
            // Identities that follow from the Galois property.
            assert_eq!(s.div(a, &s.one()), *a, "a ÷ 1 must equal a: a={a:?}");
            assert!(s.is_one(&s.div(a, &s.zero())), "a ÷ 0 must be 1: a={a:?}");
        }
    }
}

/// Asserts that `div` inverts `times` on comparable pairs:
/// `a ≤ b ⇒ b × (a ÷ b) = a` (invertibility by residuation).
///
/// Not every residuated semiring is invertible; call this only for
/// instances documented as invertible (all instances in this crate
/// except floating-point round-off cases, for which a tolerance-based
/// test is more appropriate).
///
/// # Panics
///
/// Panics with a message naming the witnesses.
pub fn assert_invertibility<S: Residuated>(s: &S, samples: &[S::Value]) {
    for a in samples {
        for b in samples {
            if s.leq(a, b) {
                let d = s.div(a, b);
                assert_eq!(
                    s.times(b, &d),
                    *a,
                    "b × (a ÷ b) must equal a when a ≤ b: a={a:?} b={b:?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Boolean, Fuzzy, SetSemiring, Unit, Weight, Weighted, WeightedInt};
    use crate::{Probabilistic, Product};
    use std::collections::BTreeSet;

    #[test]
    fn boolean_laws() {
        assert_semiring_laws(&Boolean, &[false, true]);
        assert_residuation_laws(&Boolean, &[false, true]);
        assert_invertibility(&Boolean, &[false, true]);
    }

    #[test]
    fn fuzzy_laws() {
        let samples: Vec<Unit> = [0.0, 0.2, 0.5, 0.8, 1.0]
            .iter()
            .map(|&v| Unit::new(v).unwrap())
            .collect();
        assert_semiring_laws(&Fuzzy, &samples);
        assert_residuation_laws(&Fuzzy, &samples);
        assert_invertibility(&Fuzzy, &samples);
    }

    #[test]
    fn probabilistic_laws() {
        let samples: Vec<Unit> = [0.0, 0.25, 0.5, 1.0]
            .iter()
            .map(|&v| Unit::new(v).unwrap())
            .collect();
        assert_semiring_laws(&Probabilistic, &samples);
        assert_residuation_laws(&Probabilistic, &samples);
    }

    #[test]
    fn weighted_laws() {
        let samples: Vec<Weight> = [0.0, 1.0, 2.5, 7.0, f64::INFINITY]
            .iter()
            .map(|&v| Weight::new(v).unwrap())
            .collect();
        assert_semiring_laws(&Weighted, &samples);
        assert_residuation_laws(&Weighted, &samples);
    }

    #[test]
    fn weighted_int_laws() {
        let samples: Vec<u64> = vec![0, 1, 3, 9, 100, u64::MAX];
        assert_semiring_laws(&WeightedInt, &samples);
        assert_residuation_laws(&WeightedInt, &samples);
    }

    #[test]
    fn set_laws() {
        let s = SetSemiring::from_iter(0u8..3);
        let powerset: Vec<BTreeSet<u8>> = (0u8..8)
            .map(|bits| (0u8..3).filter(|i| bits & (1 << i) != 0).collect())
            .collect();
        assert_semiring_laws(&s, &powerset);
        assert_residuation_laws(&s, &powerset);
    }

    #[test]
    fn product_laws() {
        let s = Product::new(Boolean, WeightedInt);
        let mut samples = Vec::new();
        for b in [false, true] {
            for w in [0u64, 2, 5, u64::MAX] {
                samples.push((b, w));
            }
        }
        assert_semiring_laws(&s, &samples);
        assert_residuation_laws(&s, &samples);
    }
}
