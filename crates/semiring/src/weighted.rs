//! The weighted semiring `⟨ℝ⁺ ∪ {∞}, min, +, ∞, 0⟩` and its exact
//! integer variant.
//!
//! Weighted semirings model *additive* dependability metrics: monetary
//! cost, downtime hours, number of failures to absorb. Combining two
//! levels sums their costs; comparing prefers the *smaller* cost, so the
//! semiring top (`1`) is the cost `0` and the bottom (`0`) is `∞`.

use core::cmp::Ordering;
use core::fmt;
use core::ops::Add;

use crate::{Residuated, Semiring};

/// An error returned when constructing a [`Weight`] from an invalid float.
///
/// Weights must be non-negative and not NaN (positive infinity is
/// allowed: it is the semiring bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidWeightError(());

impl fmt::Display for InvalidWeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "weight must be a non-negative, non-NaN float")
    }
}

impl std::error::Error for InvalidWeightError {}

/// A cost in `ℝ⁺ ∪ {∞}`: the carrier of the [`Weighted`] semiring.
///
/// `Weight` is a validated `f64`: construction rejects NaN and negative
/// values, so `Weight` implements [`Ord`] and can be compared exactly.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::Weight;
///
/// let three = Weight::new(3.0)?;
/// let five = Weight::new(5.0)?;
/// assert!(three < five);
/// assert_eq!((three + five).get(), 8.0);
/// assert!(Weight::INFINITY > five);
/// # Ok::<(), softsoa_semiring::InvalidWeightError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Weight(f64);

impl Weight {
    /// The zero cost — the *top* (best) element of the weighted semiring.
    pub const ZERO: Weight = Weight(0.0);

    /// The infinite cost — the *bottom* (worst) element of the weighted
    /// semiring.
    pub const INFINITY: Weight = Weight(f64::INFINITY);

    /// Creates a weight from a float.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWeightError`] if `value` is NaN or negative.
    pub fn new(value: f64) -> Result<Weight, InvalidWeightError> {
        if value.is_nan() || value < 0.0 {
            Err(InvalidWeightError(()))
        } else {
            Ok(Weight(value))
        }
    }

    /// Creates a weight, clamping negative values to `0` and NaN to `∞`.
    pub fn saturating(value: f64) -> Weight {
        if value.is_nan() {
            Weight::INFINITY
        } else if value < 0.0 {
            Weight::ZERO
        } else {
            Weight(value)
        }
    }

    /// Returns the underlying float.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Whether this weight is the infinite (bottom) cost.
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// Saturating subtraction: `max(self - rhs, 0)`, with `∞ - x = ∞`.
    ///
    /// This is the closed form of weighted-semiring residuation.
    pub fn saturating_sub(self, rhs: Weight) -> Weight {
        if rhs.is_infinite() {
            // Anything divided by the bottom is the top.
            Weight::ZERO
        } else if self.is_infinite() {
            Weight::INFINITY
        } else {
            Weight((self.0 - rhs.0).max(0.0))
        }
    }
}

impl Eq for Weight {}

impl PartialOrd for Weight {
    fn partial_cmp(&self, other: &Weight) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Weight {
    fn cmp(&self, other: &Weight) -> Ordering {
        // Values are never NaN by construction.
        self.0.partial_cmp(&other.0).expect("Weight is never NaN")
    }
}

impl Add for Weight {
    type Output = Weight;

    fn add(self, rhs: Weight) -> Weight {
        Weight(self.0 + rhs.0)
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<u32> for Weight {
    fn from(value: u32) -> Weight {
        Weight(f64::from(value))
    }
}

impl TryFrom<f64> for Weight {
    type Error = InvalidWeightError;

    fn try_from(value: f64) -> Result<Weight, InvalidWeightError> {
        Weight::new(value)
    }
}

/// The weighted semiring `⟨ℝ⁺ ∪ {∞}, min, +, ∞, 0⟩` over [`Weight`].
///
/// `+` (semiring sum) is `min` — the *cheaper* level wins — and `×`
/// (combination) is arithmetic addition. Used throughout the paper's
/// SLA-negotiation examples (Sec. 4.1), where the cost counts hours
/// spent recovering from failures.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Semiring, Weighted, Weight};
///
/// let s = Weighted;
/// let a = Weight::new(7.0)?;
/// let b = Weight::new(16.0)?;
/// assert_eq!(s.plus(&a, &b), a);          // min: 7 is better
/// assert_eq!(s.times(&a, &b).get(), 23.0); // costs add up
/// assert!(s.leq(&b, &a));                  // 16 ≤S 7: higher cost is worse
/// # Ok::<(), softsoa_semiring::InvalidWeightError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Weighted;

impl Weighted {
    /// Convenience constructor for a [`Weight`] value.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWeightError`] if `v` is NaN or negative.
    pub fn value(v: f64) -> Result<Weight, InvalidWeightError> {
        Weight::new(v)
    }
}

impl Semiring for Weighted {
    type Value = Weight;

    fn zero(&self) -> Weight {
        Weight::INFINITY
    }

    fn one(&self) -> Weight {
        Weight::ZERO
    }

    fn plus(&self, a: &Weight, b: &Weight) -> Weight {
        (*a).min(*b)
    }

    fn times(&self, a: &Weight, b: &Weight) -> Weight {
        *a + *b
    }

    // Floating-point addition rounds, so re-associating a combined
    // cost can drift by an ulp.
    fn exact_times(&self) -> bool {
        false
    }

    fn leq(&self, a: &Weight, b: &Weight) -> bool {
        // a ≤S b ⇔ min(a, b) = b ⇔ b ≥num ... ⇔ a ≥num b.
        a >= b
    }
}

impl Residuated for Weighted {
    fn div(&self, a: &Weight, b: &Weight) -> Weight {
        a.saturating_sub(*b)
    }
}

/// The exact integer weighted semiring `⟨ℕ ∪ {∞}, min, +, ∞, 0⟩`.
///
/// Arithmetic saturates at [`u64::MAX`], which plays the role of `∞`.
/// Use this instance when tests must compare costs exactly without any
/// floating-point concern.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Semiring, Residuated, WeightedInt};
///
/// let s = WeightedInt;
/// assert_eq!(s.times(&3, &4), 7);
/// assert_eq!(s.plus(&3, &4), 3);
/// assert_eq!(s.div(&7, &3), 4);
/// assert_eq!(s.times(&u64::MAX, &1), u64::MAX); // ∞ absorbs
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeightedInt;

/// The value used as `∞` by [`WeightedInt`].
pub const INT_INFINITY: u64 = u64::MAX;

impl Semiring for WeightedInt {
    type Value = u64;

    fn zero(&self) -> u64 {
        INT_INFINITY
    }

    fn one(&self) -> u64 {
        0
    }

    fn plus(&self, a: &u64, b: &u64) -> u64 {
        (*a).min(*b)
    }

    fn times(&self, a: &u64, b: &u64) -> u64 {
        a.saturating_add(*b)
    }

    fn leq(&self, a: &u64, b: &u64) -> bool {
        a >= b
    }
}

impl Residuated for WeightedInt {
    fn div(&self, a: &u64, b: &u64) -> u64 {
        if *b == INT_INFINITY {
            0
        } else if *a == INT_INFINITY {
            INT_INFINITY
        } else {
            a.saturating_sub(*b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: f64) -> Weight {
        Weight::new(v).unwrap()
    }

    #[test]
    fn construction_rejects_invalid() {
        assert!(Weight::new(f64::NAN).is_err());
        assert!(Weight::new(-0.5).is_err());
        assert!(Weight::new(0.0).is_ok());
        assert!(Weight::new(f64::INFINITY).is_ok());
    }

    #[test]
    fn saturating_construction() {
        assert_eq!(Weight::saturating(-3.0), Weight::ZERO);
        assert_eq!(Weight::saturating(f64::NAN), Weight::INFINITY);
        assert_eq!(Weight::saturating(2.5), w(2.5));
    }

    #[test]
    fn order_is_reversed_numeric() {
        let s = Weighted;
        // Lower cost is better: 2 is "greater" in the semiring order.
        assert!(s.leq(&w(5.0), &w(2.0)));
        assert!(!s.leq(&w(2.0), &w(5.0)));
        assert!(s.lt(&w(5.0), &w(2.0)));
    }

    #[test]
    fn units_and_absorption() {
        let s = Weighted;
        assert_eq!(s.plus(&s.zero(), &w(4.0)), w(4.0));
        assert_eq!(s.times(&s.one(), &w(4.0)), w(4.0));
        assert_eq!(s.times(&s.zero(), &w(4.0)), Weight::INFINITY);
        assert_eq!(s.plus(&s.one(), &w(4.0)), Weight::ZERO);
    }

    #[test]
    fn residuation_closed_form() {
        let s = Weighted;
        assert_eq!(s.div(&w(5.0), &w(3.0)), w(2.0));
        assert_eq!(s.div(&w(3.0), &w(5.0)), Weight::ZERO);
        assert_eq!(s.div(&Weight::INFINITY, &w(5.0)), Weight::INFINITY);
        assert_eq!(s.div(&w(5.0), &Weight::INFINITY), Weight::ZERO);
        assert_eq!(s.div(&Weight::INFINITY, &Weight::INFINITY), Weight::ZERO);
    }

    #[test]
    fn residuation_galois_property_sampled() {
        let s = Weighted;
        let samples = [0.0, 0.5, 1.0, 2.0, 3.5, 10.0, f64::INFINITY];
        for &a in &samples {
            for &b in &samples {
                let (a, b) = (w(a), w(b));
                let d = s.div(&a, &b);
                // b × (a ÷ b) ≤S a
                assert!(s.leq(&s.times(&b, &d), &a), "a={a}, b={b}, d={d}");
                // and d is the maximum such x among samples
                for &x in &samples {
                    let x = w(x);
                    if s.leq(&s.times(&b, &x), &a) {
                        assert!(s.leq(&x, &d), "x={x} beats d={d} for a={a}, b={b}");
                    }
                }
            }
        }
    }

    #[test]
    fn int_semiring_matches_float_on_integers() {
        let (si, sf) = (WeightedInt, Weighted);
        for a in 0u64..8 {
            for b in 0u64..8 {
                let (fa, fb) = (w(a as f64), w(b as f64));
                assert_eq!(si.times(&a, &b) as f64, sf.times(&fa, &fb).get());
                assert_eq!(si.plus(&a, &b) as f64, sf.plus(&fa, &fb).get());
                assert_eq!(si.div(&a, &b) as f64, sf.div(&fa, &fb).get());
            }
        }
    }

    #[test]
    fn int_infinity_behaviour() {
        let s = WeightedInt;
        assert_eq!(s.times(&INT_INFINITY, &7), INT_INFINITY);
        assert_eq!(s.div(&INT_INFINITY, &7), INT_INFINITY);
        assert_eq!(s.div(&7, &INT_INFINITY), 0);
        assert!(s.leq(&INT_INFINITY, &0));
    }

    #[test]
    fn weight_display() {
        assert_eq!(w(2.5).to_string(), "2.5");
        assert_eq!(Weight::INFINITY.to_string(), "∞");
    }
}
