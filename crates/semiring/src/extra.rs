//! Additional c-semiring instances beyond the paper's core list.
//!
//! The semiring-based framework was designed "to encompass most of the
//! existing extensions, as well as other ones not yet defined"; these
//! instances exercise that claim and model QoS metrics the paper's
//! list does not cover: bottleneck *capacity* (bandwidth) and the
//! Łukasiewicz t-norm (penalty-accumulating preference).

use crate::{IdempotentTimes, Residuated, Semiring, Unit, Weight};

/// The capacity (bottleneck) semiring `⟨ℝ⁺ ∪ {∞}, max, min, 0, ∞⟩`
/// over [`Weight`].
///
/// Models *concave* resource metrics where composition is limited by
/// the narrowest link — the classic example is end-to-end bandwidth:
/// a pipeline of services is as fast as its slowest stage, and the
/// optimiser maximises that bottleneck. Note the polarity: more
/// capacity is better, so `0` (no bandwidth) is the semiring bottom
/// and `∞` the top — the opposite reading of the cost-oriented
/// [`Weighted`](crate::Weighted) instance over the same carrier.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Capacity, Semiring, Weight};
///
/// let s = Capacity;
/// let narrow = Weight::new(10.0)?;  // 10 Mb/s link
/// let wide = Weight::new(100.0)?;   // 100 Mb/s link
/// // A pipeline is limited by its narrowest stage...
/// assert_eq!(s.times(&narrow, &wide), narrow);
/// // ...and between alternatives the wider one is better.
/// assert_eq!(s.plus(&narrow, &wide), wide);
/// assert!(s.leq(&narrow, &wide));
/// # Ok::<(), softsoa_semiring::InvalidWeightError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Capacity;

impl Semiring for Capacity {
    type Value = Weight;

    fn zero(&self) -> Weight {
        Weight::ZERO
    }

    fn one(&self) -> Weight {
        Weight::INFINITY
    }

    fn plus(&self, a: &Weight, b: &Weight) -> Weight {
        (*a).max(*b)
    }

    fn times(&self, a: &Weight, b: &Weight) -> Weight {
        (*a).min(*b)
    }

    fn leq(&self, a: &Weight, b: &Weight) -> bool {
        a <= b
    }
}

impl IdempotentTimes for Capacity {}

impl Residuated for Capacity {
    fn div(&self, a: &Weight, b: &Weight) -> Weight {
        // max{x | min(b, x) ≤ a}: unconstrained when b ≤ a, else a.
        if b <= a {
            Weight::INFINITY
        } else {
            *a
        }
    }
}

/// The Łukasiewicz semiring `⟨[0, 1], max, ⊗_Ł, 0, 1⟩` over [`Unit`],
/// with `a ⊗_Ł b = max(0, a + b − 1)`.
///
/// A *penalty-accumulating* preference model: each constraint's
/// shortfall from full satisfaction (`1 − a`) adds up, and preferences
/// bottom out at `0` once the accumulated shortfall exceeds 1. Sits
/// between the fuzzy instance (no accumulation) and the weighted one
/// (unbounded accumulation); useful when a few mild SLA deviations are
/// tolerable but they must not pile up.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Lukasiewicz, Semiring, Unit};
///
/// let s = Lukasiewicz;
/// let a = Unit::new(0.9)?;
/// let b = Unit::new(0.8)?;
/// // Shortfalls 0.1 and 0.2 accumulate: level 0.7.
/// assert!((s.times(&a, &b).get() - 0.7).abs() < 1e-12);
/// // Three such levels hit zero: 0.9 + 0.8 + 0.2 − 2 < 0.
/// let c = Unit::new(0.2)?;
/// assert_eq!(s.times(&s.times(&a, &b), &c), Unit::MIN);
/// # Ok::<(), softsoa_semiring::UnitRangeError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lukasiewicz;

impl Semiring for Lukasiewicz {
    type Value = Unit;

    fn zero(&self) -> Unit {
        Unit::MIN
    }

    fn one(&self) -> Unit {
        Unit::MAX
    }

    fn plus(&self, a: &Unit, b: &Unit) -> Unit {
        (*a).max(*b)
    }

    fn times(&self, a: &Unit, b: &Unit) -> Unit {
        Unit::clamped(a.get() + b.get() - 1.0)
    }

    // Clamped floating-point addition is neither exact nor
    // re-association-stable.
    fn exact_times(&self) -> bool {
        false
    }

    fn leq(&self, a: &Unit, b: &Unit) -> bool {
        a <= b
    }
}

impl Residuated for Lukasiewicz {
    fn div(&self, a: &Unit, b: &Unit) -> Unit {
        // The Łukasiewicz residuum: min(1, 1 − b + a).
        Unit::clamped(1.0 - b.get() + a.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    fn w(v: f64) -> Weight {
        Weight::new(v).unwrap()
    }

    fn u(v: f64) -> Unit {
        Unit::new(v).unwrap()
    }

    #[test]
    fn capacity_laws() {
        let samples = [w(0.0), w(1.0), w(10.0), w(55.5), Weight::INFINITY];
        laws::assert_semiring_laws(&Capacity, &samples);
        laws::assert_residuation_laws(&Capacity, &samples);
        laws::assert_invertibility(&Capacity, &samples);
    }

    #[test]
    fn capacity_polarity_is_opposite_of_weighted() {
        use crate::Weighted;
        let (cap, cost) = (Capacity, Weighted);
        // 10 better than 5 as capacity; worse as cost.
        assert!(cap.leq(&w(5.0), &w(10.0)));
        assert!(cost.leq(&w(10.0), &w(5.0)));
    }

    #[test]
    fn capacity_bottleneck() {
        let s = Capacity;
        let pipeline = s.product([w(100.0), w(10.0), w(40.0)].iter());
        assert_eq!(pipeline, w(10.0));
    }

    #[test]
    fn lukasiewicz_laws() {
        // Multiples of 0.25 are exact in f64, so the exact-equality
        // law checkers apply.
        let samples: Vec<Unit> = [0.0, 0.25, 0.5, 0.75, 1.0].iter().map(|&v| u(v)).collect();
        laws::assert_semiring_laws(&Lukasiewicz, &samples);
        laws::assert_residuation_laws(&Lukasiewicz, &samples);
    }

    #[test]
    fn lukasiewicz_accumulates_penalties() {
        let s = Lukasiewicz;
        assert_eq!(s.times(&u(0.75), &u(0.75)), u(0.5));
        assert_eq!(s.times(&u(0.5), &u(0.25)), Unit::MIN);
        // Unlike fuzzy min, it is not idempotent below 1.
        assert_ne!(s.times(&u(0.75), &u(0.75)), u(0.75));
    }

    #[test]
    fn lukasiewicz_residuum() {
        let s = Lukasiewicz;
        assert_eq!(s.div(&u(0.5), &u(0.75)), u(0.75));
        assert_eq!(s.div(&u(0.75), &u(0.5)), Unit::MAX);
        // Galois: b ⊗ (a ÷ b) ≤ a.
        let (a, b) = (u(0.25), u(0.75));
        assert!(s.leq(&s.times(&b, &s.div(&a, &b)), &a));
    }
}
