//! Lexicographic composition of semirings for tiered optimisation.
//!
//! Where [`crate::Product`] scores criteria *independently* (yielding a
//! partial order and Pareto frontiers), [`Lex`] ranks them by
//! *priority*: values compare on the first component, and only ties
//! fall through to the second. This is the combinator behind tiered
//! fairness objectives — e.g. "maximise the worst-off client's level
//! first, then the aggregate product" (Bistarelli & Campli, *Fairness
//! as a QoS Measure for Web Services*).
//!
//! # Lawfulness
//!
//! `Lex<A, B>` is a c-semiring whenever both components are totally
//! ordered c-semirings and the first component's `×` is *cancellative*
//! on non-`0` values (`a × c = b × c ∧ c ≠ 0 ⇒ a = b`), as it is for
//! [`crate::Weighted`], [`crate::WeightedInt`],
//! [`crate::Probabilistic`] and [`crate::Boolean`]. An *idempotent*
//! first `×` (e.g. [`crate::Fuzzy`]'s `min`) breaks distributivity and
//! monotonicity: with `a = (0.5, 0.9)`, `b = (0.7, 0.1)`,
//! `c = (0.5, 0.5)`, fuzzy-first `a × (b + c)` and `a×b + a×c` land on
//! the same first component `0.5` but different second components,
//! because `min` erases the information the tie-break needs.
//! [`Lex::new`] asserts totality of both components; cancellativity is
//! a documented obligation checked by the law-harness tests.
//!
//! # Representation invariant
//!
//! Any pair whose first component is `0` is semantically the bottom
//! element (the first tier already rules it out entirely), so such
//! values are *normalised* to the canonical `(0, 0)` by every
//! constructor and operation. This keeps `PartialEq` equality aligned
//! with semiring equality.

use crate::{Residuated, Semiring};

/// The lexicographic composition `A ⋉ B` of two semirings.
///
/// The carrier is `(A::Value, B::Value)` with first-then-second
/// comparison; `×` acts componentwise (with bottom-collapse when the
/// first component hits `0`), and `+` picks the lexicographically
/// greater operand, merging second components on first-component ties.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Lex, Probabilistic, Semiring, Unit};
///
/// // Tiered objective: worst-client level first, aggregate second.
/// let s = Lex::new(Probabilistic, Probabilistic);
/// let a = s.value(Unit::new(0.5)?, Unit::new(0.9)?);
/// let b = s.value(Unit::new(0.5)?, Unit::new(0.2)?);
/// let c = s.value(Unit::new(0.4)?, Unit::new(1.0)?);
/// // First components tie, so the second decides...
/// assert!(s.lt(&b, &a));
/// // ...and a better first component wins regardless of the second.
/// assert!(s.lt(&c, &b));
/// # Ok::<(), softsoa_semiring::UnitRangeError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lex<S1, S2> {
    first: S1,
    second: S2,
}

impl<S1: Semiring, S2: Semiring> Lex<S1, S2> {
    /// Creates the lexicographic composition of two semirings.
    ///
    /// # Panics
    ///
    /// Panics if either component is not totally ordered — the
    /// lexicographic order is only well defined over total tiers.
    pub fn new(first: S1, second: S2) -> Lex<S1, S2> {
        assert!(
            first.is_total() && second.is_total(),
            "Lex requires totally ordered component semirings"
        );
        Lex { first, second }
    }

    /// The first (higher-priority) component semiring.
    pub fn first(&self) -> &S1 {
        &self.first
    }

    /// The second (tie-breaking) component semiring.
    pub fn second(&self) -> &S2 {
        &self.second
    }

    /// Builds a carrier value, normalising to the canonical bottom when
    /// the first component is `0`.
    pub fn value(&self, a: S1::Value, b: S2::Value) -> (S1::Value, S2::Value) {
        self.norm((a, b))
    }

    fn norm(&self, v: (S1::Value, S2::Value)) -> (S1::Value, S2::Value) {
        if self.first.is_zero(&v.0) {
            (self.first.zero(), self.second.zero())
        } else {
            v
        }
    }

    fn cmp_first(&self, a: &S1::Value, b: &S1::Value) -> core::cmp::Ordering {
        self.first
            .partial_cmp(a, b)
            .expect("Lex first component must be totally ordered")
    }
}

impl<S1: Semiring, S2: Semiring> Semiring for Lex<S1, S2> {
    type Value = (S1::Value, S2::Value);

    fn zero(&self) -> Self::Value {
        (self.first.zero(), self.second.zero())
    }

    fn one(&self) -> Self::Value {
        (self.first.one(), self.second.one())
    }

    fn plus(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        match self.cmp_first(&a.0, &b.0) {
            core::cmp::Ordering::Less => b.clone(),
            core::cmp::Ordering::Greater => a.clone(),
            core::cmp::Ordering::Equal => (a.0.clone(), self.second.plus(&a.1, &b.1)),
        }
    }

    fn times(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        let t0 = self.first.times(&a.0, &b.0);
        if self.first.is_zero(&t0) {
            self.zero()
        } else {
            (t0, self.second.times(&a.1, &b.1))
        }
    }

    fn exact_times(&self) -> bool {
        self.first.exact_times() && self.second.exact_times()
    }

    fn is_total(&self) -> bool {
        true
    }

    fn leq(&self, a: &Self::Value, b: &Self::Value) -> bool {
        match self.cmp_first(&a.0, &b.0) {
            core::cmp::Ordering::Less => true,
            core::cmp::Ordering::Greater => false,
            core::cmp::Ordering::Equal => self.second.leq(&a.1, &b.1),
        }
    }
}

impl<S1: Residuated, S2: Residuated> Residuated for Lex<S1, S2> {
    /// Lexicographic residuation `a ÷ b = max{x | b × x ≤ a}`.
    ///
    /// The first tier divides as usual; the second tier only divides
    /// when the first-tier product `b.0 × (a.0 ÷ b.0)` lands *exactly*
    /// on `a.0` without collapsing to `0` — in every other case the
    /// first tier already satisfies the bound strictly, so the second
    /// component of the maximum is `1`.
    fn div(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        if self.first.is_zero(&b.0) {
            return self.one();
        }
        let q0 = self.first.div(&a.0, &b.0);
        let f = self.first.times(&b.0, &q0);
        if self.first.is_zero(&f) || f != a.0 {
            self.norm((q0, self.second.one()))
        } else {
            (q0, self.second.div(&a.1, &b.1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws::{assert_residuation_laws, assert_semiring_laws};
    use crate::{Boolean, Fuzzy, Probabilistic, Unit, Weight, Weighted, WeightedInt};

    fn prob_samples(s: &Lex<Probabilistic, Probabilistic>) -> Vec<(Unit, Unit)> {
        // Powers of two keep float × exact, as in the probabilistic
        // law tests.
        let levels = [0.0, 0.25, 0.5, 1.0];
        let mut samples = Vec::new();
        for &a in &levels {
            for &b in &levels {
                samples.push(s.value(Unit::new(a).unwrap(), Unit::new(b).unwrap()));
            }
        }
        samples
    }

    #[test]
    fn probabilistic_lex_laws() {
        let s = Lex::new(Probabilistic, Probabilistic);
        let samples = prob_samples(&s);
        assert_semiring_laws(&s, &samples);
        assert_residuation_laws(&s, &samples);
    }

    #[test]
    fn weighted_lex_laws() {
        let s = Lex::new(Weighted, Fuzzy);
        let mut samples = Vec::new();
        for &w in &[0.0, 1.0, 2.5, f64::INFINITY] {
            for &f in &[0.0, 0.5, 1.0] {
                samples.push(s.value(Weight::new(w).unwrap(), Unit::new(f).unwrap()));
            }
        }
        assert_semiring_laws(&s, &samples);
        assert_residuation_laws(&s, &samples);
    }

    #[test]
    fn weighted_int_lex_laws() {
        let s = Lex::new(WeightedInt, WeightedInt);
        let mut samples = Vec::new();
        for &a in &[0u64, 2, 5, u64::MAX] {
            for &b in &[0u64, 3, u64::MAX] {
                samples.push(s.value(a, b));
            }
        }
        assert_semiring_laws(&s, &samples);
        assert_residuation_laws(&s, &samples);
    }

    #[test]
    fn boolean_lex_laws() {
        let s = Lex::new(Boolean, WeightedInt);
        let mut samples = Vec::new();
        for b in [false, true] {
            for w in [0u64, 2, u64::MAX] {
                samples.push(s.value(b, w));
            }
        }
        assert_semiring_laws(&s, &samples);
        assert_residuation_laws(&s, &samples);
    }

    #[test]
    fn order_is_lexicographic() {
        let s = Lex::new(Probabilistic, Probabilistic);
        let v = |a: f64, b: f64| s.value(Unit::new(a).unwrap(), Unit::new(b).unwrap());
        assert!(s.lt(&v(0.5, 1.0), &v(0.75, 0.0)));
        assert!(s.lt(&v(0.5, 0.25), &v(0.5, 0.5)));
        assert!(s.is_total());
        assert_eq!(s.plus(&v(0.5, 0.25), &v(0.5, 0.5)), v(0.5, 0.5));
        assert_eq!(s.plus(&v(0.5, 1.0), &v(0.75, 0.0)), v(0.75, 0.0));
    }

    #[test]
    fn bottom_collapses_and_normalises() {
        let s = Lex::new(Probabilistic, Probabilistic);
        let v = |a: f64, b: f64| s.value(Unit::new(a).unwrap(), Unit::new(b).unwrap());
        // Constructing with a zero first tier yields the canonical 0.
        assert_eq!(v(0.0, 0.9), s.zero());
        // × collapses to the canonical bottom when the first tier hits 0.
        assert_eq!(s.times(&v(0.5, 0.9), &v(0.0, 1.0)), s.zero());
        assert!(s.is_zero(&s.times(&s.zero(), &s.one())));
    }

    #[test]
    fn fuzzy_first_tier_breaks_distributivity() {
        // Documented restriction: an idempotent first × is not lawful.
        // min(0.5, 0.7) == min(0.5, 0.5) erases the tie-break's input.
        let s = Lex::new(Fuzzy, Fuzzy);
        let v = |a: f64, b: f64| s.value(Unit::new(a).unwrap(), Unit::new(b).unwrap());
        let a = v(0.5, 0.9);
        let b = v(0.7, 0.1);
        let c = v(0.5, 0.5);
        let lhs = s.times(&a, &s.plus(&b, &c));
        let rhs = s.plus(&s.times(&a, &b), &s.times(&a, &c));
        assert_ne!(lhs, rhs, "fuzzy-first Lex must not be treated as lawful");
    }

    #[test]
    #[should_panic(expected = "totally ordered")]
    fn partial_components_are_rejected() {
        use crate::Product;
        let _ = Lex::new(Product::new(Boolean, Boolean), Boolean);
    }
}
