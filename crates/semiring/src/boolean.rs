//! The classical (crisp) semiring `⟨{0, 1}, ∨, ∧, 0, 1⟩`.

use crate::{IdempotentTimes, Residuated, Semiring};

/// The classical semiring `⟨{false, true}, ∨, ∧, false, true⟩`.
///
/// Casts crisp constraints into the semiring-based framework: a tuple is
/// either allowed (`true`) or forbidden (`false`). The paper uses it to
/// check whether properties are entailed by a service definition and for
/// the qualitative integrity analysis of Sec. 5 (the federated
/// photo-editing pipeline) and the crisp partition/stability constraints
/// of Sec. 6.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Boolean, Semiring};
///
/// let s = Boolean;
/// assert_eq!(s.times(&true, &false), false); // conjunction
/// assert_eq!(s.plus(&true, &false), true);   // disjunction
/// assert!(s.leq(&false, &true));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Boolean;

impl Semiring for Boolean {
    type Value = bool;

    fn zero(&self) -> bool {
        false
    }

    fn one(&self) -> bool {
        true
    }

    fn plus(&self, a: &bool, b: &bool) -> bool {
        *a || *b
    }

    fn times(&self, a: &bool, b: &bool) -> bool {
        *a && *b
    }

    fn leq(&self, a: &bool, b: &bool) -> bool {
        !*a || *b
    }
}

impl IdempotentTimes for Boolean {}

impl Residuated for Boolean {
    fn div(&self, a: &bool, b: &bool) -> bool {
        // max{x | b ∧ x ≤ a} — the Boolean implication b → a.
        !*b || *a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables() {
        let s = Boolean;
        assert!(s.times(&true, &true));
        assert!(!s.times(&true, &false));
        assert!(s.plus(&false, &true));
        assert!(!s.plus(&false, &false));
    }

    #[test]
    fn order() {
        let s = Boolean;
        assert!(s.leq(&false, &true));
        assert!(!s.leq(&true, &false));
        assert!(s.lt(&false, &true));
        assert!(!s.lt(&true, &true));
    }

    #[test]
    fn residuation_is_implication() {
        let s = Boolean;
        assert!(s.div(&true, &true));
        assert!(!s.div(&false, &true));
        assert!(s.div(&true, &false));
        assert!(s.div(&false, &false));
    }

    #[test]
    fn residuation_galois_property_exhaustive() {
        let s = Boolean;
        for a in [false, true] {
            for b in [false, true] {
                let d = s.div(&a, &b);
                for x in [false, true] {
                    assert_eq!(s.leq(&s.times(&b, &x), &a), s.leq(&x, &d));
                }
            }
        }
    }
}
