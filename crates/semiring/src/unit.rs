//! The [`Unit`] value: a validated float in `[0, 1]`.
//!
//! `Unit` is the shared carrier of the [`Fuzzy`](crate::Fuzzy) and
//! [`Probabilistic`](crate::Probabilistic) semirings: a preference level
//! for the former, a probability for the latter.

use core::cmp::Ordering;
use core::fmt;

/// An error returned when constructing a [`Unit`] from a float outside
/// `[0, 1]` or NaN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitRangeError(());

impl fmt::Display for UnitRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit value must lie in [0, 1]")
    }
}

impl std::error::Error for UnitRangeError {}

/// A float guaranteed to lie in `[0, 1]`.
///
/// Because NaN is rejected at construction, `Unit` implements [`Ord`]
/// and exact equality is meaningful for the lattice operations `min`
/// and `max` (which always return one of their operands).
///
/// # Examples
///
/// ```
/// use softsoa_semiring::Unit;
///
/// let half = Unit::new(0.5)?;
/// assert!(half > Unit::MIN && half < Unit::MAX);
/// assert_eq!(half.get(), 0.5);
/// assert!(Unit::new(1.5).is_err());
/// # Ok::<(), softsoa_semiring::UnitRangeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Unit(f64);

impl Unit {
    /// The minimum level `0`.
    pub const MIN: Unit = Unit(0.0);

    /// The maximum level `1`.
    pub const MAX: Unit = Unit(1.0);

    /// Creates a unit value.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `value` is NaN or outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Unit, UnitRangeError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            Err(UnitRangeError(()))
        } else {
            Ok(Unit(value))
        }
    }

    /// Creates a unit value, clamping out-of-range floats (NaN maps to 0).
    pub fn clamped(value: f64) -> Unit {
        if value.is_nan() {
            Unit::MIN
        } else {
            Unit(value.clamp(0.0, 1.0))
        }
    }

    /// Returns the underlying float.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Multiplies two unit values (stays in `[0, 1]`).
    ///
    /// An inherent method rather than `std::ops::Mul` so call sites
    /// stay explicit that this is semiring ×, not float arithmetic.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Unit) -> Unit {
        Unit(self.0 * rhs.0)
    }

    /// Divides, saturating at `1` (used by probabilistic residuation).
    pub fn div_saturating(self, rhs: Unit) -> Unit {
        if rhs.0 == 0.0 || self.0 >= rhs.0 {
            Unit::MAX
        } else {
            Unit(self.0 / rhs.0)
        }
    }
}

impl Eq for Unit {}

impl PartialOrd for Unit {
    fn partial_cmp(&self, other: &Unit) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Unit {
    fn cmp(&self, other: &Unit) -> Ordering {
        // Values are never NaN by construction.
        self.0.partial_cmp(&other.0).expect("Unit is never NaN")
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Unit {
    type Error = UnitRangeError;

    fn try_from(value: f64) -> Result<Unit, UnitRangeError> {
        Unit::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Unit::new(0.0).is_ok());
        assert!(Unit::new(1.0).is_ok());
        assert!(Unit::new(-0.01).is_err());
        assert!(Unit::new(1.01).is_err());
        assert!(Unit::new(f64::NAN).is_err());
    }

    #[test]
    fn clamping() {
        assert_eq!(Unit::clamped(-2.0), Unit::MIN);
        assert_eq!(Unit::clamped(3.0), Unit::MAX);
        assert_eq!(Unit::clamped(f64::NAN), Unit::MIN);
        assert_eq!(Unit::clamped(0.25).get(), 0.25);
    }

    #[test]
    fn ordering_is_numeric() {
        let a = Unit::new(0.2).unwrap();
        let b = Unit::new(0.7).unwrap();
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn div_saturating_cases() {
        let a = Unit::new(0.2).unwrap();
        let b = Unit::new(0.8).unwrap();
        assert_eq!(a.div_saturating(b).get(), 0.25);
        assert_eq!(b.div_saturating(a), Unit::MAX);
        assert_eq!(b.div_saturating(Unit::MIN), Unit::MAX);
    }
}
