//! The probabilistic semiring `⟨[0, 1], max, ·, 0, 1⟩`.

use crate::{Residuated, Semiring, Unit, UnitRangeError};

/// The probabilistic semiring `⟨[0, 1], max, ·, 0, 1⟩` over [`Unit`].
///
/// Models *multiplicative* metrics: the probability that a composition
/// of independent services behaves correctly is the product of the
/// component probabilities, and solving maximises that product. The
/// paper uses this instance for reliability and availability
/// percentages (Sec. 4) and for the quantitative integrity analysis of
/// the photo-editing pipeline (Sec. 5).
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Probabilistic, Semiring};
///
/// let s = Probabilistic;
/// let red = Probabilistic::value(0.9)?;
/// let bw = Probabilistic::value(0.96)?;
/// // Reliability of the two filters in a pipeline.
/// assert!((s.times(&red, &bw).get() - 0.864).abs() < 1e-12);
/// # Ok::<(), softsoa_semiring::UnitRangeError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Probabilistic;

impl Probabilistic {
    /// Convenience constructor for a [`Unit`] probability.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `v` is NaN or outside `[0, 1]`.
    pub fn value(v: f64) -> Result<Unit, UnitRangeError> {
        Unit::new(v)
    }
}

impl Semiring for Probabilistic {
    type Value = Unit;

    fn zero(&self) -> Unit {
        Unit::MIN
    }

    fn one(&self) -> Unit {
        Unit::MAX
    }

    fn plus(&self, a: &Unit, b: &Unit) -> Unit {
        (*a).max(*b)
    }

    fn times(&self, a: &Unit, b: &Unit) -> Unit {
        a.mul(*b)
    }

    // Floating-point multiplication rounds, so re-associating a
    // product can drift by an ulp.
    fn exact_times(&self) -> bool {
        false
    }

    fn leq(&self, a: &Unit, b: &Unit) -> bool {
        a <= b
    }
}

impl Residuated for Probabilistic {
    fn div(&self, a: &Unit, b: &Unit) -> Unit {
        // max{x | b·x ≤ a}: 1 when b ≤ a (or b = 0), otherwise a/b.
        a.div_saturating(*b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: f64) -> Unit {
        Unit::new(v).unwrap()
    }

    #[test]
    fn product_combination() {
        let s = Probabilistic;
        assert_eq!(s.times(&u(0.5), &u(0.5)), u(0.25));
        assert_eq!(s.plus(&u(0.5), &u(0.25)), u(0.5));
    }

    #[test]
    fn units_and_absorption() {
        let s = Probabilistic;
        assert_eq!(s.plus(&s.zero(), &u(0.4)), u(0.4));
        assert_eq!(s.times(&s.one(), &u(0.4)), u(0.4));
        assert_eq!(s.times(&s.zero(), &u(0.4)), Unit::MIN);
        assert_eq!(s.plus(&s.one(), &u(0.4)), Unit::MAX);
    }

    #[test]
    fn residuation() {
        let s = Probabilistic;
        assert_eq!(s.div(&u(0.25), &u(0.5)), u(0.5));
        assert_eq!(s.div(&u(0.5), &u(0.25)), Unit::MAX);
        assert_eq!(s.div(&u(0.3), &Unit::MIN), Unit::MAX);
    }

    #[test]
    fn residuation_recovers_factor() {
        // Invertibility: a ≤ b ⇒ b × (a ÷ b) = a.
        let s = Probabilistic;
        let a = u(0.12);
        let b = u(0.4);
        let q = s.div(&a, &b);
        assert!((s.times(&b, &q).get() - a.get()).abs() < 1e-12);
    }

    #[test]
    fn residuation_galois_property_sampled() {
        let s = Probabilistic;
        let samples: Vec<Unit> = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|&v| u(v))
            .collect();
        for a in &samples {
            for b in &samples {
                let d = s.div(a, b);
                assert!(s.leq(&s.times(b, &d), a), "a={a:?} b={b:?} d={d:?}");
                for x in &samples {
                    if s.leq(&s.times(b, x), a) {
                        assert!(s.leq(x, &d));
                    }
                }
            }
        }
    }
}
