//! The set-based semiring `⟨𝒫(A), ∪, ∩, ∅, A⟩`.

use std::collections::BTreeSet;
use std::fmt;

use crate::{IdempotentTimes, Residuated, Semiring};

/// The set-based semiring `⟨𝒫(A), ∪, ∩, ∅, A⟩` over a finite universe.
///
/// Levels are subsets of a fixed universe `A`: `+` is union, `×` is
/// intersection, the bottom is the empty set and the top is `A` itself.
/// The induced order is set inclusion — a *partial* order. The paper
/// uses this instance for security rights and admissible time slots
/// (Sec. 4).
///
/// The universe is part of the semiring value, so two `SetSemiring`s
/// are equal only if their universes are; values are expected to be
/// subsets of the universe and constructors validate this.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Semiring, SetSemiring};
///
/// let s = SetSemiring::from_iter(["read", "write", "exec"]);
/// let client = s.subset(["read", "write"])?;
/// let provider = s.subset(["write", "exec"])?;
/// let granted = s.times(&client, &provider);
/// assert_eq!(granted, s.subset(["write"])?);
/// # Ok::<(), softsoa_semiring::NotInUniverseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SetSemiring<T: SetElement> {
    universe: BTreeSet<T>,
}

/// Bounds required of a set-based semiring element.
///
/// This is an alias-like helper trait, blanket-implemented for every
/// eligible type; you never implement it manually.
pub trait SetElement: Clone + Ord + fmt::Debug + Send + Sync + 'static {}

impl<T: Clone + Ord + fmt::Debug + Send + Sync + 'static> SetElement for T {}

/// An error returned when a set value contains elements outside the
/// semiring universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotInUniverseError(());

impl fmt::Display for NotInUniverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "set value contains elements outside the semiring universe"
        )
    }
}

impl std::error::Error for NotInUniverseError {}

impl<T: SetElement> SetSemiring<T> {
    /// Creates the semiring with the given universe.
    pub fn new(universe: BTreeSet<T>) -> SetSemiring<T> {
        SetSemiring { universe }
    }

    /// The universe `A` of this semiring.
    pub fn universe(&self) -> &BTreeSet<T> {
        &self.universe
    }

    /// Builds a value from elements, validating membership.
    ///
    /// # Errors
    ///
    /// Returns [`NotInUniverseError`] if any element is not in the
    /// universe.
    pub fn subset<I>(&self, elements: I) -> Result<BTreeSet<T>, NotInUniverseError>
    where
        I: IntoIterator<Item = T>,
    {
        let set: BTreeSet<T> = elements.into_iter().collect();
        if set.is_subset(&self.universe) {
            Ok(set)
        } else {
            Err(NotInUniverseError(()))
        }
    }
}

impl<T: SetElement> FromIterator<T> for SetSemiring<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SetSemiring<T> {
        SetSemiring::new(iter.into_iter().collect())
    }
}

impl<T: SetElement> Semiring for SetSemiring<T> {
    type Value = BTreeSet<T>;

    fn zero(&self) -> BTreeSet<T> {
        BTreeSet::new()
    }

    fn one(&self) -> BTreeSet<T> {
        self.universe.clone()
    }

    fn plus(&self, a: &BTreeSet<T>, b: &BTreeSet<T>) -> BTreeSet<T> {
        a.union(b).cloned().collect()
    }

    fn times(&self, a: &BTreeSet<T>, b: &BTreeSet<T>) -> BTreeSet<T> {
        a.intersection(b).cloned().collect()
    }

    fn is_total(&self) -> bool {
        // 𝒫(A) under inclusion is total only for |A| ≤ 1.
        self.universe.len() <= 1
    }

    fn leq(&self, a: &BTreeSet<T>, b: &BTreeSet<T>) -> bool {
        a.is_subset(b)
    }
}

impl<T: SetElement> IdempotentTimes for SetSemiring<T> {}

impl<T: SetElement> Residuated for SetSemiring<T> {
    fn div(&self, a: &BTreeSet<T>, b: &BTreeSet<T>) -> BTreeSet<T> {
        // max{x | b ∩ x ⊆ a} = a ∪ (A \ b).
        self.universe
            .iter()
            .filter(|e| a.contains(e) || !b.contains(e))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn semiring() -> SetSemiring<u8> {
        SetSemiring::from_iter(0..4)
    }

    fn set(elems: &[u8]) -> BTreeSet<u8> {
        elems.iter().copied().collect()
    }

    #[test]
    fn union_and_intersection() {
        let s = semiring();
        assert_eq!(s.plus(&set(&[0, 1]), &set(&[1, 2])), set(&[0, 1, 2]));
        assert_eq!(s.times(&set(&[0, 1]), &set(&[1, 2])), set(&[1]));
    }

    #[test]
    fn order_is_inclusion_and_partial() {
        let s = semiring();
        assert!(s.leq(&set(&[0]), &set(&[0, 1])));
        assert!(!s.leq(&set(&[0, 1]), &set(&[0])));
        // {0} and {1} are incomparable.
        assert_eq!(s.partial_cmp(&set(&[0]), &set(&[1])), None);
        assert!(!s.is_total());
    }

    #[test]
    fn subset_validation() {
        let s = semiring();
        assert!(s.subset([0, 3]).is_ok());
        assert!(s.subset([0, 9]).is_err());
    }

    #[test]
    fn residuation() {
        let s = semiring();
        // a ∪ complement(b)
        assert_eq!(s.div(&set(&[0]), &set(&[0, 1])), set(&[0, 2, 3]));
        assert_eq!(s.div(&set(&[]), &s.one()), set(&[]));
        assert_eq!(s.div(&set(&[1]), &set(&[])), s.one());
    }

    #[test]
    fn residuation_galois_property_exhaustive() {
        let s = SetSemiring::from_iter(0u8..3);
        let powerset: Vec<BTreeSet<u8>> = (0u8..8)
            .map(|bits| (0u8..3).filter(|i| bits & (1 << i) != 0).collect())
            .collect();
        for a in &powerset {
            for b in &powerset {
                let d = s.div(a, b);
                for x in &powerset {
                    assert_eq!(
                        s.leq(&s.times(b, x), a),
                        s.leq(x, &d),
                        "a={a:?} b={b:?} x={x:?} d={d:?}"
                    );
                }
            }
        }
    }
}
