//! Cartesian products of semirings for multi-criteria optimisation.
//!
//! The Cartesian product of c-semirings is again a c-semiring (Sec. 4 of
//! the paper), with componentwise operations and the componentwise —
//! generally *partial* — order. A provider can thus be scored at once on,
//! say, cost (weighted) and reliability (probabilistic).

use crate::{IdempotentTimes, Residuated, Semiring};

/// The Cartesian product `S1 × S2` of two semirings.
///
/// Operations act componentwise; the induced order is the componentwise
/// order, which is partial as soon as both components have at least two
/// comparable levels (solutions can be *incomparable*, i.e. Pareto
/// frontiers arise naturally).
///
/// Products nest: `Product<Product<A, B>, C>` is a three-criteria
/// semiring; see [`triple`] for a convenience constructor.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Product, Weighted, Probabilistic, Semiring};
///
/// // Optimise cost and reliability together.
/// let s = Product::new(Weighted, Probabilistic);
/// let cheap_flaky = (Weighted::value(1.0)?, Probabilistic::value(0.5)?);
/// let pricey_solid = (Weighted::value(9.0)?, Probabilistic::value(0.99)?);
/// // Neither dominates the other: the order is partial.
/// assert_eq!(s.partial_cmp(&cheap_flaky, &pricey_solid), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Product<S1, S2> {
    first: S1,
    second: S2,
}

impl<S1: Semiring, S2: Semiring> Product<S1, S2> {
    /// Creates the product of two semirings.
    pub fn new(first: S1, second: S2) -> Product<S1, S2> {
        Product { first, second }
    }

    /// The first component semiring.
    pub fn first(&self) -> &S1 {
        &self.first
    }

    /// The second component semiring.
    pub fn second(&self) -> &S2 {
        &self.second
    }
}

impl<S1: Semiring, S2: Semiring> Semiring for Product<S1, S2> {
    type Value = (S1::Value, S2::Value);

    fn zero(&self) -> Self::Value {
        (self.first.zero(), self.second.zero())
    }

    fn one(&self) -> Self::Value {
        (self.first.one(), self.second.one())
    }

    fn plus(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        (self.first.plus(&a.0, &b.0), self.second.plus(&a.1, &b.1))
    }

    fn times(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        (self.first.times(&a.0, &b.0), self.second.times(&a.1, &b.1))
    }

    fn exact_times(&self) -> bool {
        self.first.exact_times() && self.second.exact_times()
    }

    fn is_total(&self) -> bool {
        false
    }

    fn leq(&self, a: &Self::Value, b: &Self::Value) -> bool {
        self.first.leq(&a.0, &b.0) && self.second.leq(&a.1, &b.1)
    }
}

impl<S1: IdempotentTimes, S2: IdempotentTimes> IdempotentTimes for Product<S1, S2> {}

impl<S1: Residuated, S2: Residuated> Residuated for Product<S1, S2> {
    fn div(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        (self.first.div(&a.0, &b.0), self.second.div(&a.1, &b.1))
    }
}

/// Builds a three-criteria semiring `(S1 × S2) × S3`.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{triple, Weighted, Probabilistic, Fuzzy, Semiring};
///
/// let s = triple(Weighted, Probabilistic, Fuzzy);
/// let v = ((Weighted::value(2.0)?, Probabilistic::value(0.9)?), Fuzzy::value(0.7)?);
/// assert!(s.leq(&s.zero(), &v));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn triple<S1, S2, S3>(s1: S1, s2: S2, s3: S3) -> Product<Product<S1, S2>, S3>
where
    S1: Semiring,
    S2: Semiring,
    S3: Semiring,
{
    Product::new(Product::new(s1, s2), s3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Boolean, Fuzzy, Probabilistic, Unit, Weight, Weighted};

    type CostRel = Product<Weighted, Probabilistic>;

    fn s() -> CostRel {
        Product::new(Weighted, Probabilistic)
    }

    fn v(w: f64, p: f64) -> (Weight, Unit) {
        (Weight::new(w).unwrap(), Unit::new(p).unwrap())
    }

    #[test]
    fn componentwise_operations() {
        let s = s();
        let a = v(3.0, 0.5);
        let b = v(5.0, 0.8);
        assert_eq!(s.times(&a, &b), v(8.0, 0.4));
        assert_eq!(s.plus(&a, &b), v(3.0, 0.8));
    }

    #[test]
    fn partial_order() {
        let s = s();
        // (cheaper, more reliable) dominates.
        assert!(s.leq(&v(5.0, 0.5), &v(3.0, 0.8)));
        // Trade-offs are incomparable.
        assert_eq!(s.partial_cmp(&v(3.0, 0.5), &v(5.0, 0.8)), None);
        assert!(!s.is_total());
    }

    #[test]
    fn units() {
        let s = s();
        assert_eq!(s.zero(), (Weight::INFINITY, Unit::MIN));
        assert_eq!(s.one(), (Weight::ZERO, Unit::MAX));
    }

    #[test]
    fn residuation_componentwise() {
        let s = s();
        let a = v(5.0, 0.25);
        let b = v(3.0, 0.5);
        assert_eq!(s.div(&a, &b), v(2.0, 0.5));
    }

    #[test]
    fn triple_nesting() {
        let s = triple(Boolean, Fuzzy, Weighted);
        let one = s.one();
        assert_eq!(one, ((true, Unit::MAX), Weight::ZERO));
        assert!(s.leq(&s.zero(), &one));
    }
}
