//! The fuzzy semiring `⟨[0, 1], max, min, 0, 1⟩`.

use crate::{IdempotentTimes, Residuated, Semiring, Unit, UnitRangeError};

/// The fuzzy semiring `⟨[0, 1], max, min, 0, 1⟩` over [`Unit`].
///
/// Models *concave* metrics: combining levels "flattens" to the worst
/// one (`min`), and solving maximises the minimum satisfaction. In the
/// paper this instance expresses coarse preference levels (low/medium/
/// high reliability, Sec. 4) and the negotiation agreement of Fig. 5,
/// and drives the trustworthy-coalition objective of Sec. 6 (maximise
/// the minimum coalition trust).
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Fuzzy, Semiring};
///
/// let s = Fuzzy;
/// let client = Fuzzy::value(0.5)?;
/// let provider = Fuzzy::value(0.8)?;
/// // Composing two preference levels keeps the worst of the two.
/// assert_eq!(s.times(&client, &provider), client);
/// # Ok::<(), softsoa_semiring::UnitRangeError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Fuzzy;

impl Fuzzy {
    /// Convenience constructor for a [`Unit`] preference level.
    ///
    /// # Errors
    ///
    /// Returns [`UnitRangeError`] if `v` is NaN or outside `[0, 1]`.
    pub fn value(v: f64) -> Result<Unit, UnitRangeError> {
        Unit::new(v)
    }
}

impl Semiring for Fuzzy {
    type Value = Unit;

    fn zero(&self) -> Unit {
        Unit::MIN
    }

    fn one(&self) -> Unit {
        Unit::MAX
    }

    fn plus(&self, a: &Unit, b: &Unit) -> Unit {
        (*a).max(*b)
    }

    fn times(&self, a: &Unit, b: &Unit) -> Unit {
        (*a).min(*b)
    }

    fn leq(&self, a: &Unit, b: &Unit) -> bool {
        a <= b
    }
}

impl IdempotentTimes for Fuzzy {}

impl Residuated for Fuzzy {
    fn div(&self, a: &Unit, b: &Unit) -> Unit {
        // max{x | min(b, x) ≤ a}: everything if b ≤ a, otherwise a itself.
        if b <= a {
            Unit::MAX
        } else {
            *a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: f64) -> Unit {
        Unit::new(v).unwrap()
    }

    #[test]
    fn plus_is_max_times_is_min() {
        let s = Fuzzy;
        assert_eq!(s.plus(&u(0.3), &u(0.8)), u(0.8));
        assert_eq!(s.times(&u(0.3), &u(0.8)), u(0.3));
    }

    #[test]
    fn units_and_absorption() {
        let s = Fuzzy;
        assert_eq!(s.plus(&s.zero(), &u(0.4)), u(0.4));
        assert_eq!(s.times(&s.one(), &u(0.4)), u(0.4));
        assert_eq!(s.times(&s.zero(), &u(0.4)), Unit::MIN);
        assert_eq!(s.plus(&s.one(), &u(0.4)), Unit::MAX);
    }

    #[test]
    fn residuation() {
        let s = Fuzzy;
        assert_eq!(s.div(&u(0.8), &u(0.3)), Unit::MAX); // b ≤ a
        assert_eq!(s.div(&u(0.3), &u(0.8)), u(0.3)); // b > a
        assert_eq!(s.div(&u(0.5), &u(0.5)), Unit::MAX);
    }

    #[test]
    fn residuation_galois_property_sampled() {
        let s = Fuzzy;
        let samples: Vec<Unit> = [0.0, 0.1, 0.3, 0.5, 0.8, 1.0]
            .iter()
            .map(|&v| u(v))
            .collect();
        for a in &samples {
            for b in &samples {
                let d = s.div(a, b);
                assert!(s.leq(&s.times(b, &d), a));
                for x in &samples {
                    if s.leq(&s.times(b, x), a) {
                        assert!(s.leq(x, &d));
                    }
                }
            }
        }
    }

    #[test]
    fn idempotent_times() {
        // Fuzzy × is idempotent — the hallmark of concave metrics.
        let s = Fuzzy;
        for v in [0.0, 0.25, 1.0] {
            assert_eq!(s.times(&u(v), &u(v)), u(v));
        }
    }
}
