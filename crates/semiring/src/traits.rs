//! The [`Semiring`] and [`Residuated`] traits.
//!
//! An *absorptive semiring* (also called a *c-semiring*) is a tuple
//! `⟨A, +, ×, 0, 1⟩` where `+` is commutative, associative and idempotent
//! with unit `0` and absorbing element `1`, and `×` is commutative,
//! associative, distributes over `+`, has unit `1` and absorbing element
//! `0`. The relation `a ≤ b ⇔ a + b = b` is a partial order with minimum
//! `0` and maximum `1`; `⟨A, ≤⟩` is a complete lattice and `a + b` is the
//! least upper bound of `a` and `b`.
//!
//! Semirings are modelled as *operation objects*: the carrier is the
//! associated type [`Semiring::Value`] and the operations are methods on
//! the semiring value itself. This allows instances such as the set-based
//! semiring `⟨𝒫(A), ∪, ∩, ∅, A⟩` to carry their universe `A` at runtime.

use core::cmp::Ordering;
use core::fmt;

/// An absorptive semiring (c-semiring) `⟨A, +, ×, 0, 1⟩`.
///
/// Implementations must satisfy the c-semiring axioms; the reusable
/// checkers in [`crate::laws`] verify them on sampled values and every
/// instance shipped by this crate is property-tested against them.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Fuzzy, Semiring};
///
/// let s = Fuzzy;
/// let a = Fuzzy::value(0.3).unwrap();
/// let b = Fuzzy::value(0.8).unwrap();
/// // In the fuzzy semiring `+` is max and `×` is min.
/// assert_eq!(s.plus(&a, &b), b);
/// assert_eq!(s.times(&a, &b), a);
/// assert!(s.leq(&a, &b)); // 0.3 is "worse than" 0.8
/// ```
pub trait Semiring: Clone + fmt::Debug + PartialEq + Send + Sync + 'static {
    /// The carrier set `A` of the semiring.
    type Value: Clone + fmt::Debug + PartialEq + Send + Sync + 'static;

    /// The bottom element `0`: unit of `+`, absorbing for `×`, worst level.
    fn zero(&self) -> Self::Value;

    /// The top element `1`: unit of `×`, absorbing for `+`, best level.
    fn one(&self) -> Self::Value;

    /// The additive operation `+`, used to compare and merge levels.
    ///
    /// `plus` computes the least upper bound of `a` and `b` in the
    /// induced lattice.
    fn plus(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// The multiplicative operation `×`, used to combine levels.
    fn times(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Whether the induced order `≤` is total.
    ///
    /// All scalar instances are totally ordered; Cartesian products and
    /// the set-based semiring are not.
    fn is_total(&self) -> bool {
        true
    }

    /// The induced partial order: `a ≤ b ⇔ a + b = b` ("`b` is better").
    fn leq(&self, a: &Self::Value, b: &Self::Value) -> bool {
        self.plus(a, b) == *b
    }

    /// Strict order: `a < b ⇔ a ≤ b ∧ a ≠ b`.
    fn lt(&self, a: &Self::Value, b: &Self::Value) -> bool {
        a != b && self.leq(a, b)
    }

    /// Compare two values in the induced order.
    ///
    /// Returns `None` when the values are incomparable (possible only
    /// when [`Self::is_total`] is `false`).
    fn partial_cmp(&self, a: &Self::Value, b: &Self::Value) -> Option<Ordering> {
        match (self.leq(a, b), self.leq(b, a)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// Least upper bound; identical to [`Self::plus`] in a c-semiring.
    fn lub(&self, a: &Self::Value, b: &Self::Value) -> Self::Value {
        self.plus(a, b)
    }

    /// Sum (`+`-fold) of an iterator of values; the empty sum is `0`.
    ///
    /// This is the `Σ` used by constraint projection.
    fn sum<'a, I>(&self, values: I) -> Self::Value
    where
        I: IntoIterator<Item = &'a Self::Value>,
        Self::Value: 'a,
    {
        values
            .into_iter()
            .fold(self.zero(), |acc, v| self.plus(&acc, v))
    }

    /// Product (`×`-fold) of an iterator of values; the empty product is `1`.
    ///
    /// This is the combination used by constraint aggregation `⊗`.
    fn product<'a, I>(&self, values: I) -> Self::Value
    where
        I: IntoIterator<Item = &'a Self::Value>,
        Self::Value: 'a,
    {
        values
            .into_iter()
            .fold(self.one(), |acc, v| self.times(&acc, v))
    }

    /// `true` iff `×` is *exactly* associative on the value
    /// representation — re-associating a product can never change the
    /// result by even an ulp. Engines that compare a recombined
    /// product (e.g. a propagation bound) against a level computed in
    /// a different association rely on this; semirings whose `×`
    /// rounds (floating-point multiplication) must return `false`,
    /// and such engines then fall back to rounding-proof rules.
    fn exact_times(&self) -> bool {
        true
    }

    /// `true` iff `v` is the bottom element `0`.
    fn is_zero(&self, v: &Self::Value) -> bool {
        *v == self.zero()
    }

    /// `true` iff `v` is the top element `1`.
    fn is_one(&self, v: &Self::Value) -> bool {
        *v == self.one()
    }
}

/// A marker for semirings whose `×` is *idempotent* (`a × a = a`).
///
/// When `×` is idempotent it coincides with the greatest lower bound
/// of the induced lattice, and several equivalence-preserving local
/// consistency transformations become available — notably, a
/// constraint may be combined with its own projections without
/// changing the problem (`c ⊗ (c ⇓ x) ≡ c`), which is what soft
/// arc-consistency preprocessing exploits.
///
/// Implemented by the fuzzy, classical, set-based and capacity
/// instances; *not* by weighted, probabilistic or Łukasiewicz, whose
/// `×` strictly accumulates.
pub trait IdempotentTimes: Semiring {}

/// A semiring with a *division* operation, the weak inverse of `×`.
///
/// Following Bistarelli & Gadducci (ECAI 2006), an absorptive semiring is
/// *residuated* when for all `a, b` the set `{x | b × x ≤ a}` admits a
/// maximum, denoted `a ÷ b`. Every *complete* absorptive semiring is
/// residuated, so all classical instances (crisp, fuzzy, probabilistic,
/// weighted) qualify.
///
/// Division is what makes the `nmsccp` language *nonmonotonic*: it
/// implements `retract`, removing a constraint's contribution from the
/// store.
///
/// # Laws
///
/// The Galois property must hold for all values:
/// `b × x ≤ a  ⇔  x ≤ a ÷ b`, and consequently `b × (a ÷ b) ≤ a` and
/// `a ≤ b ⇒ b × (a ÷ b) = a` when the semiring is invertible.
///
/// # Examples
///
/// ```
/// use softsoa_semiring::{Residuated, Semiring, Weighted, Weight};
///
/// // In the weighted semiring × is arithmetic sum, so ÷ is saturating
/// // subtraction: removing a cost of 3 from a total of 5 leaves 2.
/// let s = Weighted;
/// let total = Weight::new(5.0).unwrap();
/// let part = Weight::new(3.0).unwrap();
/// assert_eq!(s.div(&total, &part), Weight::new(2.0).unwrap());
/// ```
pub trait Residuated: Semiring {
    /// The residuation `a ÷ b = max{x ∈ A | b × x ≤ a}`.
    fn div(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Boolean;

    #[test]
    fn partial_cmp_on_boolean() {
        let s = Boolean;
        assert_eq!(s.partial_cmp(&false, &true), Some(Ordering::Less));
        assert_eq!(s.partial_cmp(&true, &false), Some(Ordering::Greater));
        assert_eq!(s.partial_cmp(&true, &true), Some(Ordering::Equal));
    }

    #[test]
    fn sum_and_product_identities() {
        let s = Boolean;
        let empty: [bool; 0] = [];
        assert!(!s.sum(empty.iter()));
        assert!(s.product(empty.iter()));
        assert!(s.sum([true, false].iter()));
        assert!(!s.product([true, false].iter()));
    }

    #[test]
    fn lub_is_plus() {
        let s = Boolean;
        assert_eq!(s.lub(&false, &true), s.plus(&false, &true));
    }

    #[test]
    fn is_zero_is_one() {
        let s = Boolean;
        assert!(s.is_zero(&false));
        assert!(s.is_one(&true));
        assert!(!s.is_zero(&true));
        assert!(!s.is_one(&false));
    }
}
