//! Absorptive, residuated c-semirings for semiring-based soft
//! constraint solving.
//!
//! This crate provides the algebraic foundation of the `softsoa`
//! workspace, a Rust implementation of *Bistarelli & Santini, "Soft
//! Constraints for Dependable Service Oriented Architectures"* (DSN
//! 2008). A **c-semiring** `⟨A, +, ×, 0, 1⟩` fixes the set of
//! satisfiability levels of a soft constraint problem: `+` induces the
//! order in which levels are compared (`a ≤ b ⇔ a + b = b`) and `×`
//! combines levels when constraints are aggregated.
//!
//! # Instances and the dependability metrics they model
//!
//! | Instance | Structure | Metric (paper, Sec. 4) |
//! |---|---|---|
//! | [`Weighted`] / [`WeightedInt`] | ⟨ℝ⁺∪{∞}, min, +, ∞, 0⟩ | additive: cost, downtime |
//! | [`Fuzzy`] | ⟨\[0,1\], max, min, 0, 1⟩ | concave: coarse preference |
//! | [`Probabilistic`] | ⟨\[0,1\], max, ·, 0, 1⟩ | multiplicative: reliability |
//! | [`SetSemiring`] | ⟨𝒫(A), ∪, ∩, ∅, A⟩ | rights, time slots |
//! | [`Boolean`] | ⟨{0,1}, ∨, ∧, 0, 1⟩ | crisp feature checks |
//! | [`Product`] | componentwise pairing | multi-criteria |
//! | [`Capacity`] | ⟨ℝ⁺∪{∞}, max, min, 0, ∞⟩ | bottleneck: bandwidth |
//! | [`Lukasiewicz`] | ⟨\[0,1\], max, ⊗_Ł, 0, 1⟩ | bounded penalty accumulation |
//!
//! Every instance is also [`Residuated`]: it supports the division
//! `a ÷ b = max{x | b × x ≤ a}` that powers nonmonotonic constraint
//! *retraction* in the `nmsccp` language.
//!
//! # Examples
//!
//! ```
//! use softsoa_semiring::{Semiring, Residuated, Weighted, Weight};
//!
//! // Model "hours spent recovering from failures" (Sec. 4.1).
//! let hours = Weighted;
//! let p1 = Weight::new(5.0)?; // provider 1 needs 5 hours
//! let p2 = Weight::new(2.0)?; // provider 2 needs 2 hours
//!
//! // Combining the two policies costs the sum of the hours...
//! assert_eq!(hours.times(&p1, &p2).get(), 7.0);
//! // ...and retracting provider 1's policy refunds its cost.
//! assert_eq!(hours.div(&hours.times(&p1, &p2), &p1), p2);
//! # Ok::<(), softsoa_semiring::InvalidWeightError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boolean;
mod extra;
mod fuzzy;
pub mod laws;
mod lex;
mod probabilistic;
mod product;
mod set;
mod traits;
mod unit;
mod weighted;

pub use boolean::Boolean;
pub use extra::{Capacity, Lukasiewicz};
pub use fuzzy::Fuzzy;
pub use lex::Lex;
pub use probabilistic::Probabilistic;
pub use product::{triple, Product};
pub use set::{NotInUniverseError, SetElement, SetSemiring};
pub use traits::{IdempotentTimes, Residuated, Semiring};
pub use unit::{Unit, UnitRangeError};
pub use weighted::{InvalidWeightError, Weight, Weighted, WeightedInt, INT_INFINITY};

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn semirings_are_send_sync() {
        assert_send_sync::<Weighted>();
        assert_send_sync::<WeightedInt>();
        assert_send_sync::<Fuzzy>();
        assert_send_sync::<Probabilistic>();
        assert_send_sync::<Boolean>();
        assert_send_sync::<SetSemiring<u32>>();
        assert_send_sync::<Product<Weighted, Fuzzy>>();
        assert_send_sync::<Lex<Probabilistic, Probabilistic>>();
    }

    #[test]
    fn values_are_send_sync() {
        assert_send_sync::<Weight>();
        assert_send_sync::<Unit>();
    }
}
