//! Zero-dependency observability layer for the softsoa workspace.
//!
//! The paper's dependability story — checked transitions keeping the
//! store inside the `C1`–`C4` interval, the refinement `S⇓E ⊑ R⇓E` —
//! is only auditable when runs are inspectable. This crate provides
//! the measurement substrate: counters, gauges, observation
//! aggregates, ordered series, timings, and hierarchical spans, all
//! routed through a pluggable [`Sink`].
//!
//! # Overhead contract
//!
//! A [`Telemetry`] handle is disabled by default. Every recording
//! method starts with a single branch on the absence of a sink and
//! returns immediately — no allocation, no locking, no formatting, no
//! clock reads. Instrumented hot paths therefore pay one predictable
//! branch when observability is off.
//!
//! # Determinism
//!
//! [`Snapshot::to_json`] renders only the deterministic families —
//! counters, gauges, observation aggregates, and series — with keys
//! sorted and integer values only. Wall-clock timings are excluded;
//! they appear only in [`Snapshot::render_pretty`]. A fixed-seed run
//! instrumented through this crate therefore produces a byte-for-byte
//! identical JSON snapshot across invocations.
//!
//! # Examples
//!
//! ```
//! use softsoa_telemetry::Telemetry;
//!
//! let (tel, sink) = Telemetry::recording();
//! tel.count("solve.nodes", 42);
//! tel.gauge("solve.threads", 4);
//! {
//!     let span = tel.span("broker.negotiate");
//!     span.telemetry().incr("broker.sessions");
//! } // span drop records a timing under "broker.negotiate"
//! let snap = sink.snapshot();
//! assert_eq!(snap.counters.get("solve.nodes"), Some(&42));
//! assert_eq!(snap.counters.get("broker.negotiate/broker.sessions"), Some(&1));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One telemetry event, borrowed from the recording site.
///
/// Sinks receive events synchronously on the recording thread; a sink
/// that needs to retain data must copy it out.
#[derive(Debug, Clone, Copy)]
pub enum Event<'a> {
    /// A monotone counter increment.
    Count {
        /// Metric name (already prefix-resolved).
        name: &'a str,
        /// Amount to add.
        delta: u64,
    },
    /// A point-in-time value; the last write wins.
    Gauge {
        /// Metric name.
        name: &'a str,
        /// Current value.
        value: i64,
    },
    /// One sample of a distribution (histogram-style aggregate:
    /// count / sum / min / max).
    Observe {
        /// Metric name.
        name: &'a str,
        /// Sampled value.
        value: u64,
    },
    /// One point of an ordered series (e.g. the consistency level at
    /// each nmsccp step).
    Series {
        /// Series name.
        name: &'a str,
        /// X-axis position (step, attempt, ...).
        index: u64,
        /// Rendered Y value.
        value: &'a str,
    },
    /// A measured duration. Excluded from deterministic snapshots.
    Timing {
        /// Metric name.
        name: &'a str,
        /// Elapsed wall-clock time in nanoseconds.
        nanos: u64,
    },
}

impl Event<'_> {
    /// The event's metric name.
    pub fn name(&self) -> &str {
        match self {
            Event::Count { name, .. }
            | Event::Gauge { name, .. }
            | Event::Observe { name, .. }
            | Event::Series { name, .. }
            | Event::Timing { name, .. } => name,
        }
    }
}

/// Receives telemetry events. Implementations must be cheap: they run
/// synchronously on the instrumented thread.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: Event<'_>);
}

/// A cloneable handle instrumented code records through.
///
/// Disabled by default ([`Telemetry::disabled`], also `Default`):
/// every method is a single-branch no-op. Enable by attaching a
/// [`Sink`] with [`Telemetry::with_sink`] or [`Telemetry::recording`].
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn Sink>>,
    prefix: Option<Arc<str>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.sink, &self.prefix) {
            (None, _) => f.write_str("Telemetry(disabled)"),
            (Some(_), None) => f.write_str("Telemetry(enabled)"),
            (Some(_), Some(p)) => write!(f, "Telemetry(enabled, prefix={p:?})"),
        }
    }
}

impl Telemetry {
    /// The no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// A handle that forwards every event to `sink`.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Telemetry {
        Telemetry {
            sink: Some(sink),
            prefix: None,
        }
    }

    /// Convenience: an enabled handle backed by a fresh in-memory
    /// sink, returned alongside it for later [`MemorySink::snapshot`].
    pub fn recording() -> (Telemetry, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::default());
        (Telemetry::with_sink(sink.clone()), sink)
    }

    /// Whether a sink is attached. Use to guard batches of recordings
    /// or any formatting work feeding [`Telemetry::series`].
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// A handle recording to the same sink with `segment/` prepended
    /// to every metric name. Scoping a disabled handle stays free.
    pub fn scoped(&self, segment: &str) -> Telemetry {
        let Some(sink) = &self.sink else {
            return Telemetry::default();
        };
        let prefix: Arc<str> = match &self.prefix {
            Some(p) => Arc::from(format!("{p}/{segment}")),
            None => Arc::from(segment),
        };
        Telemetry {
            sink: Some(sink.clone()),
            prefix: Some(prefix),
        }
    }

    fn full_name<'a>(&self, name: &'a str) -> std::borrow::Cow<'a, str> {
        match &self.prefix {
            Some(p) => std::borrow::Cow::Owned(format!("{p}/{name}")),
            None => std::borrow::Cow::Borrowed(name),
        }
    }

    /// Adds `delta` to the counter `name`.
    pub fn count(&self, name: &str, delta: u64) {
        let Some(sink) = &self.sink else { return };
        sink.record(Event::Count {
            name: &self.full_name(name),
            delta,
        });
    }

    /// Adds one to the counter `name`.
    pub fn incr(&self, name: &str) {
        self.count(name, 1);
    }

    /// Adds `delta` to the counter `name{label}` (per-provider,
    /// per-rule, ... breakdowns).
    pub fn count_labeled(&self, name: &str, label: &str, delta: u64) {
        let Some(sink) = &self.sink else { return };
        sink.record(Event::Count {
            name: &self.full_name(&format!("{name}{{{label}}}")),
            delta,
        });
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: i64) {
        let Some(sink) = &self.sink else { return };
        sink.record(Event::Gauge {
            name: &self.full_name(name),
            value,
        });
    }

    /// Records one sample of the distribution `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let Some(sink) = &self.sink else { return };
        sink.record(Event::Observe {
            name: &self.full_name(name),
            value,
        });
    }

    /// Appends `(index, value)` to the series `name`. The value is
    /// only formatted when a sink is attached.
    pub fn series(&self, name: &str, index: u64, value: impl fmt::Display) {
        let Some(sink) = &self.sink else { return };
        let rendered = value.to_string();
        sink.record(Event::Series {
            name: &self.full_name(name),
            index,
            value: &rendered,
        });
    }

    /// Records an elapsed duration under `name`.
    pub fn timing(&self, name: &str, elapsed: Duration) {
        let Some(sink) = &self.sink else { return };
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        sink.record(Event::Timing {
            name: &self.full_name(name),
            nanos,
        });
    }

    /// Records an elapsed duration under `name{label}`.
    pub fn timing_labeled(&self, name: &str, label: &str, elapsed: Duration) {
        let Some(sink) = &self.sink else { return };
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        sink.record(Event::Timing {
            name: &self.full_name(&format!("{name}{{{label}}}")),
            nanos,
        });
    }

    /// Opens a hierarchical span named `name`.
    ///
    /// The span's [`Span::telemetry`] handle prefixes nested metrics
    /// with the span path; dropping the span records the elapsed time
    /// as a [`Event::Timing`] under the path. On a disabled handle the
    /// span is free: no clock is read.
    pub fn span(&self, name: &str) -> Span {
        if self.sink.is_none() {
            return Span {
                scope: Telemetry::default(),
                start: None,
            };
        }
        Span {
            scope: self.scoped(name),
            start: Some(Instant::now()),
        }
    }
}

/// A hierarchical timing scope; see [`Telemetry::span`].
#[derive(Debug)]
pub struct Span {
    scope: Telemetry,
    start: Option<Instant>,
}

impl Span {
    /// The handle scoped to this span's path.
    pub fn telemetry(&self) -> &Telemetry {
        &self.scope
    }

    /// Opens a child span.
    pub fn span(&self, name: &str) -> Span {
        self.scope.span(name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // Record the elapsed time under the span path itself: the
            // scope already carries the full path as its prefix.
            let Some(sink) = &self.scope.sink else { return };
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let name = self.scope.prefix.as_deref().unwrap_or("span");
            sink.record(Event::Timing { name, nanos });
        }
    }
}

/// Aggregate of [`Event::Observe`] samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObservationStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl ObservationStats {
    fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }
}

/// Aggregate of [`Event::Timing`] samples, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingStats {
    /// Number of measured durations.
    pub count: u64,
    /// Total elapsed nanoseconds (saturating).
    pub total_nanos: u64,
    /// Shortest duration, in nanoseconds.
    pub min_nanos: u64,
    /// Longest duration, in nanoseconds.
    pub max_nanos: u64,
}

impl TimingStats {
    fn record(&mut self, nanos: u64) {
        if self.count == 0 {
            self.min_nanos = nanos;
            self.max_nanos = nanos;
        } else {
            self.min_nanos = self.min_nanos.min(nanos);
            self.max_nanos = self.max_nanos.max(nanos);
        }
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
    }
}

#[derive(Debug, Clone, Default)]
struct MemoryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    observations: BTreeMap<String, ObservationStats>,
    series: BTreeMap<String, Vec<(u64, String)>>,
    timings: BTreeMap<String, TimingStats>,
}

/// The standard in-memory sink: thread-safe aggregation into sorted
/// maps, snapshot on demand.
#[derive(Default)]
pub struct MemorySink {
    state: Mutex<MemoryState>,
}

impl fmt::Debug for MemorySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MemorySink")
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event<'_>) {
        let mut state = self.state.lock().expect("telemetry sink poisoned");
        match event {
            Event::Count { name, delta } => {
                let slot = state.counters.entry(name.to_string()).or_insert(0);
                *slot = slot.saturating_add(delta);
            }
            Event::Gauge { name, value } => {
                state.gauges.insert(name.to_string(), value);
            }
            Event::Observe { name, value } => {
                state
                    .observations
                    .entry(name.to_string())
                    .or_default()
                    .record(value);
            }
            Event::Series { name, index, value } => {
                state
                    .series
                    .entry(name.to_string())
                    .or_default()
                    .push((index, value.to_string()));
            }
            Event::Timing { name, nanos } => {
                state
                    .timings
                    .entry(name.to_string())
                    .or_default()
                    .record(nanos);
            }
        }
    }
}

impl MemorySink {
    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let state = self.state.lock().expect("telemetry sink poisoned");
        Snapshot {
            counters: state.counters.clone(),
            gauges: state.gauges.clone(),
            observations: state.observations.clone(),
            series: state.series.clone(),
            timings: state.timings.clone(),
        }
    }
}

/// A point-in-time copy of a [`MemorySink`]'s aggregates.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotone counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges, by name.
    pub gauges: BTreeMap<String, i64>,
    /// Distribution aggregates, by name.
    pub observations: BTreeMap<String, ObservationStats>,
    /// Ordered series, by name.
    pub series: BTreeMap<String, Vec<(u64, String)>>,
    /// Wall-clock timing aggregates, by name. Excluded from
    /// [`Snapshot::to_json`].
    pub timings: BTreeMap<String, TimingStats>,
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Snapshot {
    /// Renders the deterministic families — counters, gauges,
    /// observation aggregates, series — as one line of JSON with keys
    /// in sorted order and integer values only. Timings are excluded,
    /// so equal fixed-seed runs produce byte-for-byte equal output.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"observations\":{");
        for (i, (k, o)) in self.observations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                o.count, o.sum, o.min, o.max
            ));
        }
        out.push_str("},\"series\":{");
        for (i, (k, points)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push_str(":[");
            for (j, (index, value)) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{index},"));
                push_json_string(&mut out, value);
                out.push(']');
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// Renders a human-readable report including wall-clock timings.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k} = {v}\n"));
            }
        }
        if !self.observations.is_empty() {
            out.push_str("observations:\n");
            for (k, o) in &self.observations {
                let mean = o.sum.checked_div(o.count).unwrap_or(0);
                out.push_str(&format!(
                    "  {k}: n={} sum={} min={} mean={} max={}\n",
                    o.count, o.sum, o.min, mean, o.max
                ));
            }
        }
        if !self.series.is_empty() {
            out.push_str("series:\n");
            for (k, points) in &self.series {
                out.push_str(&format!("  {k}:"));
                for (index, value) in points {
                    out.push_str(&format!(" {index}:{value}"));
                }
                out.push('\n');
            }
        }
        if !self.timings.is_empty() {
            out.push_str("timings (non-deterministic, excluded from json):\n");
            for (k, t) in &self.timings {
                let mean = t.total_nanos.checked_div(t.count).unwrap_or(0);
                out.push_str(&format!(
                    "  {k}: n={} total={}µs min={}µs mean={}µs max={}µs\n",
                    t.count,
                    t.total_nanos / 1_000,
                    t.min_nanos / 1_000,
                    mean / 1_000,
                    t.max_nanos / 1_000
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_reports_disabled() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.count("a", 1);
        tel.gauge("b", 2);
        tel.observe("c", 3);
        tel.series("d", 0, "x");
        tel.timing("e", Duration::from_millis(1));
        let span = tel.span("f");
        assert!(!span.telemetry().enabled());
        drop(span);
        assert_eq!(format!("{tel:?}"), "Telemetry(disabled)");
    }

    #[test]
    fn counters_accumulate_and_labels_key_separately() {
        let (tel, sink) = Telemetry::recording();
        tel.incr("hits");
        tel.count("hits", 4);
        tel.count_labeled("hits", "svc-a", 2);
        let snap = sink.snapshot();
        assert_eq!(snap.counters["hits"], 5);
        assert_eq!(snap.counters["hits{svc-a}"], 2);
    }

    #[test]
    fn gauges_last_write_wins() {
        let (tel, sink) = Telemetry::recording();
        tel.gauge("threads", 2);
        tel.gauge("threads", 8);
        assert_eq!(sink.snapshot().gauges["threads"], 8);
    }

    #[test]
    fn observations_aggregate_count_sum_min_max() {
        let (tel, sink) = Telemetry::recording();
        for v in [5u64, 1, 9] {
            tel.observe("chunk", v);
        }
        let o = sink.snapshot().observations["chunk"];
        assert_eq!((o.count, o.sum, o.min, o.max), (3, 15, 1, 9));
    }

    #[test]
    fn series_preserve_order_and_indices() {
        let (tel, sink) = Telemetry::recording();
        tel.series("level", 0, 10);
        tel.series("level", 1, 7);
        tel.series("level", 1, 7);
        let points = sink.snapshot().series["level"].clone();
        assert_eq!(
            points,
            vec![
                (0, "10".to_string()),
                (1, "7".to_string()),
                (1, "7".to_string())
            ]
        );
    }

    #[test]
    fn spans_scope_names_and_record_timings() {
        let (tel, sink) = Telemetry::recording();
        {
            let outer = tel.span("outer");
            outer.telemetry().incr("work");
            {
                let inner = outer.span("inner");
                inner.telemetry().incr("work");
            }
        }
        let snap = sink.snapshot();
        assert_eq!(snap.counters["outer/work"], 1);
        assert_eq!(snap.counters["outer/inner/work"], 1);
        assert_eq!(snap.timings["outer"].count, 1);
        assert_eq!(snap.timings["outer/inner"].count, 1);
    }

    #[test]
    fn json_is_deterministic_sorted_and_excludes_timings() {
        let (tel, sink) = Telemetry::recording();
        tel.count("z", 1);
        tel.count("a", 2);
        tel.gauge("g", -3);
        tel.observe("o", 4);
        tel.series("s", 0, "lo\"w");
        tel.timing("t", Duration::from_millis(5));
        let a = sink.snapshot().to_json();
        let b = sink.snapshot().to_json();
        assert_eq!(a, b);
        assert_eq!(
            a,
            "{\"counters\":{\"a\":2,\"z\":1},\"gauges\":{\"g\":-3},\
             \"observations\":{\"o\":{\"count\":1,\"sum\":4,\"min\":4,\"max\":4}},\
             \"series\":{\"s\":[[0,\"lo\\\"w\"]]}}"
        );
        assert!(!a.contains("\"t\""));
        assert!(sink.snapshot().render_pretty().contains("timings"));
    }

    #[test]
    fn scoped_prefixes_compose() {
        let (tel, sink) = Telemetry::recording();
        tel.scoped("broker").scoped("provider").incr("retries");
        assert_eq!(sink.snapshot().counters["broker/provider/retries"], 1);
    }
}
