//! The dependability attribute taxonomy (Sec. 3 of the paper, after
//! Avižienis, Laprie, Randell & Landwehr).

use std::fmt;

/// A dependability attribute of a computing system.
///
/// The paper adopts the "generally agreed list" of attributes from
/// [Avižienis et al., 2004]; some are objectively quantifiable, others
/// (notably safety) are subjective scores.
///
/// # Examples
///
/// ```
/// use softsoa_dependability::{Attribute, MetricClass};
///
/// assert!(Attribute::Availability.is_quantifiable());
/// assert!(!Attribute::Safety.is_quantifiable());
/// assert!(Attribute::Reliability
///     .recommended_metrics()
///     .contains(&MetricClass::Multiplicative));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Attribute {
    /// The probability that a service is present and ready for use.
    Availability,
    /// The capability of maintaining the service and service quality.
    Reliability,
    /// The absence of catastrophic consequences.
    Safety,
    /// Information is accessible only to those authorised to use it.
    Confidentiality,
    /// The absence of improper system alterations.
    Integrity,
    /// The ability to undergo modifications and repairs.
    Maintainability,
}

impl Attribute {
    /// All six attributes, in the paper's order.
    pub const ALL: [Attribute; 6] = [
        Attribute::Availability,
        Attribute::Reliability,
        Attribute::Safety,
        Attribute::Confidentiality,
        Attribute::Integrity,
        Attribute::Maintainability,
    ];

    /// The attributes whose composite the paper calls *security*:
    /// confidentiality, integrity and availability.
    pub const SECURITY: [Attribute; 3] = [
        Attribute::Confidentiality,
        Attribute::Integrity,
        Attribute::Availability,
    ];

    /// Whether the attribute is quantifiable by direct measurement
    /// (a "rather objective score" in the paper's words). Safety is
    /// the canonical subjective one.
    pub fn is_quantifiable(self) -> bool {
        !matches!(self, Attribute::Safety)
    }

    /// The classes of metric the paper's Sec. 4 suggests for this
    /// attribute, in order of preference.
    pub fn recommended_metrics(self) -> &'static [MetricClass] {
        match self {
            // "availability and reliability can be modeled [as additive
            // metrics]"; "also availability can be represented with a
            // percentage value".
            Attribute::Availability => &[MetricClass::Additive, MetricClass::Multiplicative],
            // "the frequency of system faults can [be] studied from a
            // probabilistic point of view"; fuzzy when detailed
            // information is not available.
            Attribute::Reliability => &[
                MetricClass::Multiplicative,
                MetricClass::Additive,
                MetricClass::Concave,
            ],
            Attribute::Safety => &[MetricClass::Concave],
            // "related security rights, or time slots" — set-based.
            Attribute::Confidentiality => &[MetricClass::SetBased, MetricClass::Crisp],
            Attribute::Integrity => &[MetricClass::Crisp, MetricClass::Multiplicative],
            Attribute::Maintainability => &[MetricClass::Additive, MetricClass::Concave],
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Attribute::Availability => "availability",
            Attribute::Reliability => "reliability",
            Attribute::Safety => "safety",
            Attribute::Confidentiality => "confidentiality",
            Attribute::Integrity => "integrity",
            Attribute::Maintainability => "maintainability",
        };
        f.write_str(name)
    }
}

/// A class of QoS/dependability metric and the c-semiring that models
/// it (the instantiation list of Sec. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MetricClass {
    /// Counts/quantities to minimise — the Weighted semiring
    /// `⟨ℝ⁺, min, +, ∞, 0⟩`.
    Additive,
    /// Probabilities to maximise — the Probabilistic semiring
    /// `⟨[0,1], max, ·, 0, 1⟩`.
    Multiplicative,
    /// "Flattening" preferences — the Fuzzy semiring
    /// `⟨[0,1], max, min, 0, 1⟩`.
    Concave,
    /// Rights/time slots — the Set-based semiring `⟨𝒫(A), ∪, ∩, ∅, A⟩`.
    SetBased,
    /// True/false property checks — the Classical semiring
    /// `⟨{0,1}, ∨, ∧, 0, 1⟩`.
    Crisp,
}

impl MetricClass {
    /// The name of the c-semiring instance modelling this class.
    pub fn semiring_name(self) -> &'static str {
        match self {
            MetricClass::Additive => "Weighted",
            MetricClass::Multiplicative => "Probabilistic",
            MetricClass::Concave => "Fuzzy",
            MetricClass::SetBased => "Set-based",
            MetricClass::Crisp => "Classical",
        }
    }
}

impl fmt::Display for MetricClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MetricClass::Additive => "additive",
            MetricClass::Multiplicative => "multiplicative",
            MetricClass::Concave => "concave",
            MetricClass::SetBased => "set-based",
            MetricClass::Crisp => "crisp",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_six_distinct_attributes() {
        let mut set = std::collections::BTreeSet::new();
        set.extend(Attribute::ALL);
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn security_composite() {
        assert_eq!(
            Attribute::SECURITY,
            [
                Attribute::Confidentiality,
                Attribute::Integrity,
                Attribute::Availability
            ]
        );
    }

    #[test]
    fn only_safety_is_subjective() {
        for attr in Attribute::ALL {
            assert_eq!(attr.is_quantifiable(), attr != Attribute::Safety);
        }
    }

    #[test]
    fn every_attribute_has_a_metric() {
        for attr in Attribute::ALL {
            assert!(!attr.recommended_metrics().is_empty());
        }
    }

    #[test]
    fn semiring_names() {
        assert_eq!(MetricClass::Additive.semiring_name(), "Weighted");
        assert_eq!(MetricClass::Crisp.semiring_name(), "Classical");
    }

    #[test]
    fn display() {
        assert_eq!(Attribute::Integrity.to_string(), "integrity");
    }
}
