//! Fault injection for policy-level robustness analysis.
//!
//! Sec. 5 of the paper shows integrity breaking when one module
//! (`REDF`) "could take on any behaviour". This module generalises
//! that experiment: inject a fault into each policy of a composed
//! implementation in turn and re-check refinement, yielding the set of
//! modules whose failure is *safe* and the set whose failure violates
//! the requirement.

use softsoa_core::{Constraint, Domains, MissingDomainError, Var};
use softsoa_semiring::{Probabilistic, Semiring, Unit};

use crate::refinement::locally_refines;

/// Replaces a policy by the vacuous policy `1̄` over the same scope —
/// the module "could take on any behaviour" (the paper's unreliable
/// `RedFilter`).
pub fn unconstrain<S: Semiring>(policy: &Constraint<S>) -> Constraint<S> {
    let semiring = policy.semiring().clone();
    let one = semiring.one();
    let scope: Vec<Var> = policy.scope().to_vec();
    let label = policy
        .label()
        .map_or_else(|| "faulty".to_string(), |l| format!("{l}(faulty)"));
    Constraint::from_fn(semiring, &scope, move |_| one.clone()).with_label(label)
}

/// Attenuates a policy uniformly: every level is `×`-combined with
/// `factor`, whatever the semiring — multiply probabilities, add
/// weighted costs, take fuzzy minima. This is the semiring-generic
/// fault of an ageing or partially failed component; it is also the
/// policy-level counterpart of a store-wide
/// `Degrade` fault in `nmsccp`'s resilience machinery.
pub fn attenuate<S: Semiring>(policy: &Constraint<S>, factor: &S::Value) -> Constraint<S> {
    let semiring = policy.semiring().clone();
    let inner = policy.clone();
    let factor = factor.clone();
    let scope: Vec<Var> = policy.scope().to_vec();
    let label = policy
        .label()
        .map_or_else(|| "attenuated".to_string(), |l| format!("{l}(attenuated)"));
    Constraint::from_fn(semiring.clone(), &scope, move |vals| {
        semiring.times(&inner.eval_tuple(vals), &factor)
    })
    .with_label(label)
}

/// Degrades a probabilistic policy by multiplying every level by
/// `factor` (e.g. an ageing component at 90% of its nominal
/// reliability). Delegates to the semiring-generic [`attenuate`].
pub fn degrade(policy: &Constraint<Probabilistic>, factor: Unit) -> Constraint<Probabilistic> {
    let label = policy
        .label()
        .map_or_else(|| "degraded".to_string(), |l| format!("{l}(degraded)"));
    attenuate(policy, &factor).with_label(label)
}

/// The verdict for injecting a fault into one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultVerdict {
    /// Index of the faulted module in the campaign's policy list.
    pub module: usize,
    /// The module's label, if any.
    pub label: Option<String>,
    /// Whether the requirement still holds with this module faulty.
    pub still_safe: bool,
}

/// Runs a single-fault campaign: for each policy in `policies`,
/// replace it by its unconstrained version, recompose, and check
/// Def. 1 refinement against `requirement` at `interface`.
///
/// Returns one verdict per module. A module whose verdict is
/// `still_safe` is one the composition tolerates failing — the
/// system's integrity does not depend on it.
///
/// # Errors
///
/// Returns [`MissingDomainError`] if a support or interface variable
/// has no domain.
///
/// # Examples
///
/// The paper's experiment, systematised — only the composition with a
/// faulty module on the `incomp ≤ outcomp` path breaks `Memory`:
///
/// ```
/// use softsoa_dependability::{photo, single_fault_campaign};
///
/// let doms = photo::domains(4096, 1024);
/// let verdicts = single_fault_campaign(
///     &[photo::red_filter(), photo::bw_filter(), photo::compression()],
///     &photo::memory(),
///     &photo::interface(),
///     &doms,
/// )?;
/// // Every module is on the size chain: any single fault breaks it.
/// assert!(verdicts.iter().all(|v| !v.still_safe));
/// # Ok::<(), softsoa_core::MissingDomainError>(())
/// ```
pub fn single_fault_campaign<S: Semiring>(
    policies: &[Constraint<S>],
    requirement: &Constraint<S>,
    interface: &[Var],
    domains: &Domains,
) -> Result<Vec<FaultVerdict>, MissingDomainError> {
    let semiring = requirement.semiring().clone();
    let mut verdicts = Vec::with_capacity(policies.len());
    for (module, _) in policies.iter().enumerate() {
        let composed = policies
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if i == module {
                    unconstrain(p)
                } else {
                    p.clone()
                }
            })
            .fold(Constraint::always(semiring.clone()), |acc, p| {
                acc.combine(&p)
            });
        let still_safe = locally_refines(&composed, requirement, interface, domains)?;
        verdicts.push(FaultVerdict {
            module,
            label: policies[module].label().map(str::to_string),
            still_safe,
        });
    }
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::photo;
    use softsoa_core::{vars, Assignment, Domain};
    use softsoa_semiring::Boolean;

    #[test]
    fn unconstrain_keeps_scope() {
        let c = photo::red_filter();
        let f = unconstrain(&c);
        assert_eq!(f.scope(), c.scope());
        let eta = Assignment::new()
            .bind(photo::redbyte(), 4096)
            .bind(photo::bwbyte(), 0);
        assert!(!c.eval(&eta));
        assert!(f.eval(&eta));
        assert_eq!(f.label(), Some("RedFilter(faulty)"));
    }

    #[test]
    fn degrade_scales_levels() {
        let c = photo::c1();
        let d = degrade(&c, Unit::new(0.5).unwrap());
        let eta = Assignment::new()
            .bind(photo::outcomp(), 4096)
            .bind(photo::bwbyte(), 1024);
        assert!((d.eval(&eta).get() - 0.48).abs() < 1e-12);
    }

    #[test]
    fn attenuate_is_semiring_generic() {
        use softsoa_semiring::{Weight, Weighted};
        // In the weighted semiring, attenuation adds a flat cost.
        let c = Constraint::unary(Weighted, "x", |v| {
            Weight::saturating(v.as_int().unwrap() as f64)
        })
        .with_label("cost");
        let a = attenuate(&c, &Weight::new(2.0).unwrap());
        let eta = Assignment::new().bind(Var::new("x"), 3);
        assert_eq!(a.eval(&eta), Weight::new(5.0).unwrap());
        assert_eq!(a.label(), Some("cost(attenuated)"));
    }

    #[test]
    fn campaign_reproduces_the_paper_imp2_result() {
        let doms = photo::domains(4096, 1024);
        let verdicts = single_fault_campaign(
            &[
                photo::red_filter(),
                photo::bw_filter(),
                photo::compression(),
            ],
            &photo::memory(),
            &photo::interface(),
            &doms,
        )
        .unwrap();
        // Faulting RedFilter is exactly the paper's Imp2: not safe.
        assert!(!verdicts[0].still_safe);
        assert_eq!(verdicts[0].label.as_deref(), Some("RedFilter"));
    }

    #[test]
    fn campaign_identifies_redundant_modules() {
        // A system with a redundant parallel check: y ≤ x enforced twice.
        let doms = Domains::new()
            .with("x", Domain::ints(0..=2))
            .with("y", Domain::ints(0..=2));
        let check = |label: &str| {
            Constraint::crisp(Boolean, &vars(["x", "y"]), |t| {
                t[1].as_int().unwrap() <= t[0].as_int().unwrap()
            })
            .with_label(label)
        };
        let requirement = check("req");
        let verdicts = single_fault_campaign(
            &[check("primary"), check("backup")],
            &requirement,
            &vars(["x", "y"]),
            &doms,
        )
        .unwrap();
        // Either check alone still upholds the requirement.
        assert!(verdicts.iter().all(|v| v.still_safe));
    }
}
