//! The federated photo-editing system of Fig. 8 (Sec. 5).
//!
//! A client-side compression module (`COMPF`) and two provider-side
//! filters (`REDF`, `BWF`) form a federated pipeline. Four variables
//! track the photo's size in Kb along the pipeline (the paper's
//! `outcomp`, `bwbyte`, `redbyte`, `incomp`); each module publishes a
//! policy constraint, and the client's high-level `Memory` requirement
//! is checked against the composed implementation by refinement.
//!
//! Two analyses, both from the paper:
//!
//! - **crisp** (Classical semiring): `Imp1 = RedFilter ⊗ BWFilter ⊗
//!   Compression` upholds `Memory`; replacing `RedFilter` with the
//!   unreliable `true` policy (`Imp2`) breaks it;
//! - **quantitative** (Probabilistic semiring): module reliabilities
//!   `c1, c2, c3` depend on how aggressively each stage shrinks the
//!   image; their composition `Imp3` is compared against a
//!   minimum-reliability requirement.

use softsoa_core::{vars, Constraint, Domain, Domains, Var};
use softsoa_semiring::{Boolean, Probabilistic, Unit};

/// The photo size (Kb) at the start of the process.
pub fn outcomp() -> Var {
    Var::new("outcomp")
}

/// The photo size after the black-and-white filter.
pub fn bwbyte() -> Var {
    Var::new("bwbyte")
}

/// The photo size after the red filter.
pub fn redbyte() -> Var {
    Var::new("redbyte")
}

/// The photo size after the final compression, back at the client.
pub fn incomp() -> Var {
    Var::new("incomp")
}

/// The domains of the four size variables: `{0, step, 2·step, …,
/// max_kb}`.
///
/// The paper's quantitative constraints speak of sizes up to 4096 Kb;
/// `step` trades fidelity for solver cost (benches sweep it).
///
/// # Panics
///
/// Panics if `step == 0`.
pub fn domains(max_kb: i64, step: i64) -> Domains {
    let size = Domain::ints_stepped(0, max_kb, step);
    Domains::new()
        .with(outcomp(), size.clone())
        .with(bwbyte(), size.clone())
        .with(redbyte(), size.clone())
        .with(incomp(), size)
}

fn leq(x: Var, y: Var) -> Constraint<Boolean> {
    Constraint::binary(Boolean, x, y, |a, b| {
        a.as_int().unwrap() <= b.as_int().unwrap()
    })
}

/// The client's requirement: `Memory ≡ incomp ≤ outcomp` — the photo
/// must not occupy more memory after the round trip.
pub fn memory() -> Constraint<Boolean> {
    leq(incomp(), outcomp()).with_label("Memory")
}

/// The red-filter staff's policy: `RedFilter ≡ redbyte ≤ bwbyte`.
pub fn red_filter() -> Constraint<Boolean> {
    leq(redbyte(), bwbyte()).with_label("RedFilter")
}

/// The black-and-white staff's policy: `BWFilter ≡ bwbyte ≤ outcomp`.
pub fn bw_filter() -> Constraint<Boolean> {
    leq(bwbyte(), outcomp()).with_label("BWFilter")
}

/// The compression module's policy: `Compression ≡ incomp ≤ redbyte`.
pub fn compression() -> Constraint<Boolean> {
    leq(incomp(), redbyte()).with_label("Compression")
}

/// The *unreliable* red filter of the paper's `Imp2`: a small bug lets
/// it take on any behaviour, so its policy is the vacuous
/// `redbyte ≤ bwbyte ∨ redbyte > bwbyte = true`.
pub fn unreliable_red_filter() -> Constraint<Boolean> {
    Constraint::crisp(Boolean, &vars(["redbyte", "bwbyte"]), |_| true)
        .with_label("RedFilter(unreliable)")
}

/// `Imp1 ≡ RedFilter ⊗ BWFilter ⊗ Compression` — the design that
/// assumes every module reliable.
pub fn imp1() -> Constraint<Boolean> {
    red_filter()
        .combine(&bw_filter())
        .combine(&compression())
        .with_label("Imp1")
}

/// `Imp2 ≡ BWFilter ⊗ RedFilter(unreliable) ⊗ Compression` — the more
/// realistic design acknowledging the red filter's bug.
pub fn imp2() -> Constraint<Boolean> {
    bw_filter()
        .combine(&unreliable_red_filter())
        .combine(&compression())
        .with_label("Imp2")
}

/// The interface of the federated service: the client-visible
/// variables `{incomp, outcomp}`.
pub fn interface() -> Vec<Var> {
    vec![incomp(), outcomp()]
}

/// The paper's reliability shape for a size-reducing stage, as given
/// for `c1`:
///
/// ```text
/// c(in, out) = 1                       if in ≤ 1024 Kb
///            = 0                       if in > 4096 Kb
///            = 1 − in / (100 · out)    otherwise
/// ```
///
/// "The more the image size is reduced during the compression, the
/// more it is possible to experience some errors." Degenerate cases
/// (`out = 0`, negative values) clamp to `0`.
pub fn stage_reliability(input_kb: i64, output_kb: i64) -> Unit {
    if input_kb <= 1024 {
        Unit::MAX
    } else if input_kb > 4096 || output_kb <= 0 {
        Unit::MIN
    } else {
        Unit::clamped(1.0 - input_kb as f64 / (100.0 * output_kb as f64))
    }
}

fn reliability_constraint(input: Var, output: Var, label: &str) -> Constraint<Probabilistic> {
    Constraint::binary(Probabilistic, input, output, |a, b| {
        stage_reliability(a.as_int().unwrap(), b.as_int().unwrap())
    })
    .with_label(label)
}

/// `c1(outcomp, bwbyte)`: the BW-filter stage's reliability (the
/// constraint spelled out in the paper, with `c1(4096, 1024) = 0.96`).
pub fn c1() -> Constraint<Probabilistic> {
    reliability_constraint(outcomp(), bwbyte(), "c1")
}

/// `c2(bwbyte, redbyte)`: the red-filter stage's reliability
/// ("in the same way, we can define c2 and c3").
pub fn c2() -> Constraint<Probabilistic> {
    reliability_constraint(bwbyte(), redbyte(), "c2")
}

/// `c3(redbyte, incomp)`: the compression stage's reliability.
pub fn c3() -> Constraint<Probabilistic> {
    reliability_constraint(redbyte(), incomp(), "c3")
}

/// `Imp3 = c1 ⊗ c2 ⊗ c3`: the global reliability of the system.
pub fn imp3() -> Constraint<Probabilistic> {
    c1().combine(&c2()).combine(&c3()).with_label("Imp3")
}

/// The client's minimum-reliability requirement `MemoryProb`: a
/// constant demanded level over the interface variables.
pub fn memory_prob(min_reliability: Unit) -> Constraint<Probabilistic> {
    Constraint::from_fn(Probabilistic, &interface(), move |_| min_reliability)
        .with_label("MemoryProb")
}

/// Finds the most reliable end-to-end configuration: the assignment of
/// all four size variables maximising `Imp3`, given a fixed input size.
///
/// Uses the `blevel` machinery of the solver (the paper: "by exploiting
/// the notion of best level of consistency, we can find the best (i.e.
/// the most reliable) implementation among those possible").
///
/// # Errors
///
/// Returns [`softsoa_core::SolveError`] if the sizes exceed the
/// declared domains.
pub fn best_configuration(
    input_kb: i64,
    domains: &Domains,
) -> Result<(softsoa_core::Assignment, Unit), softsoa_core::SolveError> {
    use softsoa_core::Scsp;
    let fixed_input = Constraint::unary(Probabilistic, outcomp(), move |v| {
        if v.as_int() == Some(input_kb) {
            Unit::MAX
        } else {
            Unit::MIN
        }
    });
    // The pipeline's size-ordering policies, cast into the
    // probabilistic semiring as crisp constraints: a feasible
    // configuration must still be a run of the Fig. 8 pipeline.
    let chain = |x: Var, y: Var| {
        Constraint::binary(Probabilistic, x, y, |a, b| {
            if a.as_int().unwrap() <= b.as_int().unwrap() {
                Unit::MAX
            } else {
                Unit::MIN
            }
        })
    };
    let mut p = Scsp::new(Probabilistic)
        .with_constraint(imp3())
        .with_constraint(fixed_input)
        .with_constraint(chain(bwbyte(), outcomp()))
        .with_constraint(chain(redbyte(), bwbyte()))
        .with_constraint(chain(incomp(), redbyte()))
        .of_interest([outcomp(), bwbyte(), redbyte(), incomp()]);
    for (v, d) in domains.iter() {
        p.add_domain(v.clone(), d.clone());
    }
    let solution = p.solve()?;
    let best = solution
        .best()
        .first()
        .cloned()
        .unwrap_or_else(|| (softsoa_core::Assignment::new(), Unit::MIN));
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refinement::{check_refinement, locally_refines, meets_requirement};
    use softsoa_core::Assignment;

    fn doms() -> Domains {
        domains(4096, 512)
    }

    #[test]
    fn imp1_upholds_memory() {
        // Imp1 ⇓ {incomp, outcomp} ⊑ Memory (the paper's integrity check).
        assert!(locally_refines(&imp1(), &memory(), &interface(), &doms()).unwrap());
    }

    #[test]
    fn imp2_fails_memory() {
        // With the unreliable red filter, redbyte is unconstrained and
        // the memory probity requirement no longer holds.
        let report = check_refinement(&imp2(), &memory(), &interface(), &doms()).unwrap();
        assert!(!report.holds());
        let ce = report.counterexample().unwrap();
        let inc = ce.assignment.get(&incomp()).unwrap().as_int().unwrap();
        let out = ce.assignment.get(&outcomp()).unwrap().as_int().unwrap();
        assert!(inc > out, "counterexample must violate incomp ≤ outcomp");
    }

    #[test]
    fn paper_reliability_value() {
        // c1(4096, 1024) = 1 − 4096/(100·1024) = 0.96.
        assert!((stage_reliability(4096, 1024).get() - 0.96).abs() < 1e-12);
        // ≤ 1 Mb inputs are fully reliable; > 4 Mb inputs fail.
        assert_eq!(stage_reliability(1024, 1), Unit::MAX);
        assert_eq!(stage_reliability(4097, 4096), Unit::MIN);
        // Degenerate zero output.
        assert_eq!(stage_reliability(2048, 0), Unit::MIN);
    }

    #[test]
    fn c1_matches_formula_on_assignments() {
        let eta = Assignment::new().bind(outcomp(), 4096).bind(bwbyte(), 1024);
        assert!((c1().eval(&eta).get() - 0.96).abs() < 1e-12);
    }

    #[test]
    fn imp3_multiplies_stage_reliabilities() {
        let eta = Assignment::new()
            .bind(outcomp(), 2048)
            .bind(bwbyte(), 2048)
            .bind(redbyte(), 1024)
            .bind(incomp(), 512);
        let expected = stage_reliability(2048, 2048).get()
            * stage_reliability(2048, 1024).get()
            * stage_reliability(1024, 512).get();
        assert!((imp3().eval(&eta).get() - expected).abs() < 1e-12);
    }

    #[test]
    fn reliability_requirement_direction() {
        // A modest requirement is met; a perfect one is not (large
        // inputs can always fail).
        let imp = imp3();
        assert!(meets_requirement(&imp, &memory_prob(Unit::MIN), &doms()).unwrap());
        assert!(!meets_requirement(&imp, &memory_prob(Unit::MAX), &doms()).unwrap());
    }

    #[test]
    fn best_configuration_prefers_gentle_stages() {
        let doms = domains(4096, 1024);
        let (eta, level) = best_configuration(2048, &doms).unwrap();
        assert!(level > Unit::MIN);
        // The best plan keeps every stage at ≤ 1024 Kb input or shrinks
        // minimally; in particular outcomp is fixed at the input size.
        assert_eq!(eta.get(&outcomp()).unwrap().as_int(), Some(2048));
    }
}
