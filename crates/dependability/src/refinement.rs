//! Integrity as refinement (Sec. 5, Defs. 1 and 2).

use softsoa_core::{Assignment, Constraint, Domains, MissingDomainError, Var};
use softsoa_semiring::Semiring;

/// The result of a refinement check, with a counterexample when it
/// fails.
///
/// Returned by [`check_refinement`]; [`locally_refines`] is the
/// boolean shortcut.
#[derive(Debug, Clone)]
pub struct RefinementReport<S: Semiring> {
    holds: bool,
    counterexample: Option<Counterexample<S>>,
}

/// An interface assignment witnessing a refinement failure.
#[derive(Debug, Clone)]
pub struct Counterexample<S: Semiring> {
    /// The assignment of the interface variables.
    pub assignment: Assignment,
    /// The implementation's level there (`S⇓V η`).
    pub implementation_level: S::Value,
    /// The requirement's level there (`R⇓V η`).
    pub requirement_level: S::Value,
}

impl<S: Semiring> RefinementReport<S> {
    /// Whether the refinement holds.
    pub fn holds(&self) -> bool {
        self.holds
    }

    /// A counterexample, when the refinement fails.
    pub fn counterexample(&self) -> Option<&Counterexample<S>> {
        self.counterexample.as_ref()
    }
}

/// Definition 1: `S` *locally refines* `R` through the interface `V`
/// iff `S⇓V ⊑ R⇓V`.
///
/// Projection hides the internal variables; the comparison then
/// quantifies over interface assignments only, which is exactly how
/// Sec. 5 checks that the composed photo-editing implementation
/// upholds the client's `Memory` requirement.
///
/// # Errors
///
/// Returns [`MissingDomainError`] if a support or interface variable
/// has no domain.
///
/// # Examples
///
/// ```
/// use softsoa_core::{vars, Constraint, Domain, Domains};
/// use softsoa_dependability::locally_refines;
/// use softsoa_semiring::Boolean;
///
/// let doms = Domains::new()
///     .with("in", Domain::ints(0..=3))
///     .with("mid", Domain::ints(0..=3))
///     .with("out", Domain::ints(0..=3));
/// let stage1 = Constraint::crisp(Boolean, &vars(["in", "mid"]), |t| {
///     t[1].as_int() <= t[0].as_int()
/// });
/// let stage2 = Constraint::crisp(Boolean, &vars(["mid", "out"]), |t| {
///     t[1].as_int() <= t[0].as_int()
/// });
/// let requirement = Constraint::crisp(Boolean, &vars(["in", "out"]), |t| {
///     t[1].as_int() <= t[0].as_int()
/// });
/// let implementation = stage1.combine(&stage2);
/// assert!(locally_refines(&implementation, &requirement, &vars(["in", "out"]), &doms)?);
/// # Ok::<(), softsoa_core::MissingDomainError>(())
/// ```
pub fn locally_refines<S: Semiring>(
    implementation: &Constraint<S>,
    requirement: &Constraint<S>,
    interface: &[Var],
    domains: &Domains,
) -> Result<bool, MissingDomainError> {
    Ok(check_refinement(implementation, requirement, interface, domains)?.holds())
}

/// Definition 2: `S` is *as dependably safe as* `R` at the interface
/// `E` iff `S⇓E ⊑ R⇓E`.
///
/// The same relation as [`locally_refines`]; the paper's Def. 2 adds
/// the reading that `S` includes "details about the nature of the
/// reliability of its infrastructure" — dependability is a class of
/// refinement.
///
/// # Errors
///
/// Returns [`MissingDomainError`] if a support or interface variable
/// has no domain.
pub fn dependably_safe<S: Semiring>(
    implementation: &Constraint<S>,
    requirement: &Constraint<S>,
    interface: &[Var],
    domains: &Domains,
) -> Result<bool, MissingDomainError> {
    locally_refines(implementation, requirement, interface, domains)
}

/// Checks Definition 1 and, on failure, produces the first interface
/// assignment where `S⇓V η ≰ R⇓V η`.
///
/// # Errors
///
/// Returns [`MissingDomainError`] if a support or interface variable
/// has no domain.
pub fn check_refinement<S: Semiring>(
    implementation: &Constraint<S>,
    requirement: &Constraint<S>,
    interface: &[Var],
    domains: &Domains,
) -> Result<RefinementReport<S>, MissingDomainError> {
    let semiring = implementation.semiring().clone();
    let s_proj = implementation.project(interface, domains)?;
    let r_proj = requirement.project(interface, domains)?;

    // Quantify over the interface variables (sorted, deduplicated).
    let mut vars: Vec<Var> = interface.to_vec();
    vars.sort();
    vars.dedup();
    for tuple in domains.tuples(&vars)? {
        let eta = Assignment::from_tuple(&vars, &tuple);
        let s_level = s_proj.eval(&eta);
        let r_level = r_proj.eval(&eta);
        if !semiring.leq(&s_level, &r_level) {
            return Ok(RefinementReport {
                holds: false,
                counterexample: Some(Counterexample {
                    assignment: eta,
                    implementation_level: s_level,
                    requirement_level: r_level,
                }),
            });
        }
    }
    Ok(RefinementReport {
        holds: true,
        counterexample: None,
    })
}

/// The quantitative reading of Sec. 5: the composition `imp` *meets*
/// the minimum-level requirement `req` iff `req ⊑ imp` — the
/// implementation's level is at least the required one everywhere.
///
/// Note the direction flip with respect to [`locally_refines`]: for
/// crisp integrity the implementation must *allow no more* than the
/// requirement, while for quantitative reliability it must *provide
/// at least* the required level (the paper's `MemoryProb ⊑ Imp3`).
///
/// # Errors
///
/// Returns [`MissingDomainError`] if a support variable has no domain.
pub fn meets_requirement<S: Semiring>(
    implementation: &Constraint<S>,
    requirement: &Constraint<S>,
    domains: &Domains,
) -> Result<bool, MissingDomainError> {
    requirement.leq(implementation, domains)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_core::{vars, Domain};
    use softsoa_semiring::{Boolean, Probabilistic, Unit};

    fn doms() -> Domains {
        Domains::new()
            .with("a", Domain::ints(0..=3))
            .with("b", Domain::ints(0..=3))
            .with("c", Domain::ints(0..=3))
    }

    fn leq_constraint(x: &str, y: &str) -> Constraint<Boolean> {
        Constraint::crisp(Boolean, &vars([x, y]), |t| {
            t[0].as_int().unwrap() <= t[1].as_int().unwrap()
        })
    }

    #[test]
    fn chain_refines_end_to_end_requirement() {
        // a ≤ b ⊗ b ≤ c refines a ≤ c at interface {a, c}.
        let imp = leq_constraint("a", "b").combine(&leq_constraint("b", "c"));
        let req = leq_constraint("a", "c");
        assert!(locally_refines(&imp, &req, &vars(["a", "c"]), &doms()).unwrap());
    }

    #[test]
    fn broken_chain_fails_with_counterexample() {
        // Drop the middle constraint: b unconstrained, so a ≤ c is not
        // enforced.
        let imp = leq_constraint("a", "b").combine(&Constraint::always(Boolean));
        let req = leq_constraint("a", "c");
        let report = check_refinement(&imp, &req, &vars(["a", "c"]), &doms()).unwrap();
        assert!(!report.holds());
        let ce = report.counterexample().unwrap();
        // The implementation allows (true) an assignment the
        // requirement forbids (false).
        assert!(ce.implementation_level);
        assert!(!ce.requirement_level);
        let a = ce.assignment.get(&Var::new("a")).unwrap().as_int().unwrap();
        let c = ce.assignment.get(&Var::new("c")).unwrap().as_int().unwrap();
        assert!(a > c);
    }

    #[test]
    fn dependably_safe_is_an_alias() {
        let imp = leq_constraint("a", "b");
        let req = leq_constraint("a", "b");
        assert!(dependably_safe(&imp, &req, &vars(["a", "b"]), &doms()).unwrap());
    }

    #[test]
    fn meets_requirement_quantitative_direction() {
        let u = |v: f64| Unit::new(v).unwrap();
        let imp = Constraint::unary(Probabilistic, "a", move |_| u(0.9));
        let req_ok = Constraint::unary(Probabilistic, "a", move |_| u(0.8));
        let req_too_high = Constraint::unary(Probabilistic, "a", move |_| u(0.95));
        assert!(meets_requirement(&imp, &req_ok, &doms()).unwrap());
        assert!(!meets_requirement(&imp, &req_too_high, &doms()).unwrap());
    }

    #[test]
    fn refinement_is_reflexive_and_transitive_on_samples() {
        let c1 = leq_constraint("a", "b");
        let c2 = c1.combine(&leq_constraint("b", "c"));
        let iface = vars(["a", "b"]);
        // Reflexive.
        assert!(locally_refines(&c1, &c1, &iface, &doms()).unwrap());
        // c2 ⊑ c1 (combination only constrains further) → c2 refines c1.
        assert!(locally_refines(&c2, &c1, &iface, &doms()).unwrap());
    }
}
