//! Dependability attributes and integrity-as-refinement analysis over
//! soft constraints.
//!
//! This crate implements Secs. 3 and 5 of *Bistarelli & Santini, "Soft
//! Constraints for Dependable Service Oriented Architectures"* (DSN
//! 2008):
//!
//! - the **attribute taxonomy** of dependable computing
//!   ([`Attribute`]) and the mapping from metric classes to c-semiring
//!   instances ([`MetricClass`]);
//! - **integrity as refinement**: `S` locally refines `R` at interface
//!   `V` iff `S⇓V ⊑ R⇓V` ([`locally_refines`], Def. 1) and its
//!   dependable-safety reading ([`dependably_safe`], Def. 2), with
//!   counterexample extraction ([`check_refinement`]);
//! - the **federated photo-editing case study** of Fig. 8 ([`photo`]),
//!   both crisp (`Imp1`/`Imp2` against `Memory`) and quantitative
//!   (the probabilistic `c1 ⊗ c2 ⊗ c3` against `MemoryProb`);
//! - **fault injection** ([`single_fault_campaign`]) generalising the
//!   paper's unreliable-module experiment;
//! - **availability modelling** ([`availability`]): MTBF/MTTR to
//!   steady-state availability, series/parallel composition, and
//!   replica-count soft constraints (the principled version of the
//!   paper's "80% plus 5% per processor" policy).
//!
//! # Example
//!
//! ```
//! use softsoa_dependability::{locally_refines, photo};
//!
//! let doms = photo::domains(4096, 512);
//! // The composed pipeline upholds the client's memory requirement...
//! assert!(locally_refines(&photo::imp1(), &photo::memory(),
//!     &photo::interface(), &doms)?);
//! // ...but not when the red filter can take on any behaviour.
//! assert!(!locally_refines(&photo::imp2(), &photo::memory(),
//!     &photo::interface(), &doms)?);
//! # Ok::<(), softsoa_core::MissingDomainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attributes;
pub mod availability;
mod fault;
pub mod photo;
mod refinement;

pub use attributes::{Attribute, MetricClass};
pub use fault::{attenuate, degrade, single_fault_campaign, unconstrain, FaultVerdict};
pub use refinement::{
    check_refinement, dependably_safe, locally_refines, meets_requirement, Counterexample,
    RefinementReport,
};
