//! Availability modelling: from component failure/repair rates to
//! soft constraints.
//!
//! Availability — "the probability that a service is present and ready
//! for use" — is the first attribute of the paper's taxonomy, and
//! Sec. 4 sketches policies of the form "the reliability is equal to
//! 80% plus 5% for each other processor used to execute the service".
//! This module derives such curves from first principles instead of
//! postulating them: a component's steady-state availability is
//! `MTBF / (MTBF + MTTR)`; series composition multiplies
//! availabilities, parallel redundancy composes failure probabilities;
//! and [`redundancy_constraint`] turns "availability as a function of
//! replica count" into an ordinary probabilistic soft constraint ready
//! for the broker.

use softsoa_core::{Constraint, Var};
use softsoa_semiring::{Probabilistic, Unit};

/// The failure/repair model of one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentModel {
    /// Mean time between failures, in hours.
    pub mtbf_hours: f64,
    /// Mean time to repair, in hours.
    pub mttr_hours: f64,
}

impl ComponentModel {
    /// The steady-state availability `MTBF / (MTBF + MTTR)`.
    ///
    /// Degenerate models (non-positive MTBF) yield availability `0`;
    /// a zero MTTR yields `1`.
    pub fn availability(&self) -> Unit {
        if self.mtbf_hours <= 0.0 {
            return Unit::MIN;
        }
        if self.mttr_hours <= 0.0 {
            return Unit::MAX;
        }
        Unit::clamped(self.mtbf_hours / (self.mtbf_hours + self.mttr_hours))
    }

    /// Expected downtime per (365-day) year, in hours.
    pub fn downtime_hours_per_year(&self) -> f64 {
        (1.0 - self.availability().get()) * 365.0 * 24.0
    }
}

/// Availability of components in *series*: all must be up — the
/// product of the availabilities (the `×` of the probabilistic
/// semiring, which is why pipeline QoS composes with `⊗`).
pub fn series<I: IntoIterator<Item = Unit>>(availabilities: I) -> Unit {
    availabilities
        .into_iter()
        .fold(Unit::MAX, |acc, a| acc.mul(a))
}

/// Availability of `n` redundant replicas in *parallel*: the service
/// is down only when every replica is — `1 − Π (1 − aᵢ)`.
pub fn parallel<I: IntoIterator<Item = Unit>>(availabilities: I) -> Unit {
    let all_down = availabilities
        .into_iter()
        .fold(1.0, |acc, a| acc * (1.0 - a.get()));
    Unit::clamped(1.0 - all_down)
}

/// Availability of `replicas` identical replicas of a component.
pub fn replicated(base: Unit, replicas: u32) -> Unit {
    parallel(std::iter::repeat(base).take(replicas as usize))
}

/// A probabilistic soft constraint over the replica-count variable:
/// the offered availability as a function of how many replicas the
/// client pays for (zero replicas = no service).
///
/// This is the principled version of the paper's "80% plus 5% per
/// processor" polynomial: the curve saturates at 1 instead of growing
/// linearly forever.
///
/// # Examples
///
/// ```
/// use softsoa_core::Assignment;
/// use softsoa_dependability::availability::{redundancy_constraint, ComponentModel};
///
/// let model = ComponentModel { mtbf_hours: 720.0, mttr_hours: 80.0 }; // A = 0.9
/// let offer = redundancy_constraint("replicas", model);
/// let one = offer.eval(&Assignment::new().bind("replicas", 1));
/// let two = offer.eval(&Assignment::new().bind("replicas", 2));
/// assert!((one.get() - 0.9).abs() < 1e-12);
/// assert!((two.get() - 0.99).abs() < 1e-12); // 1 − 0.1²
/// ```
pub fn redundancy_constraint(
    variable: impl Into<Var>,
    model: ComponentModel,
) -> Constraint<Probabilistic> {
    let base = model.availability();
    Constraint::unary(Probabilistic, variable, move |v| match v.as_int() {
        Some(n) if n > 0 => replicated(base, n as u32),
        _ => Unit::MIN,
    })
    .with_label("availability(replicas)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_core::{Assignment, Domain, Scsp};
    use softsoa_semiring::Semiring;

    fn u(v: f64) -> Unit {
        Unit::clamped(v)
    }

    #[test]
    fn steady_state_availability() {
        let m = ComponentModel {
            mtbf_hours: 990.0,
            mttr_hours: 10.0,
        };
        assert!((m.availability().get() - 0.99).abs() < 1e-12);
        assert!((m.downtime_hours_per_year() - 87.6).abs() < 1e-9);
    }

    #[test]
    fn degenerate_models() {
        assert_eq!(
            ComponentModel {
                mtbf_hours: 0.0,
                mttr_hours: 5.0
            }
            .availability(),
            Unit::MIN
        );
        assert_eq!(
            ComponentModel {
                mtbf_hours: 100.0,
                mttr_hours: 0.0
            }
            .availability(),
            Unit::MAX
        );
    }

    #[test]
    fn series_matches_semiring_product() {
        let parts = [u(0.9), u(0.99), u(0.95)];
        let direct = series(parts);
        let via_semiring = Probabilistic.product(parts.iter());
        assert!((direct.get() - via_semiring.get()).abs() < 1e-12);
    }

    #[test]
    fn parallel_redundancy() {
        assert!((parallel([u(0.9), u(0.9)]).get() - 0.99).abs() < 1e-12);
        assert!((replicated(u(0.9), 3).get() - 0.999).abs() < 1e-12);
        assert_eq!(replicated(u(0.9), 0), Unit::MIN);
        // A perfect replica makes the group perfect.
        assert_eq!(parallel([u(0.5), Unit::MAX]), Unit::MAX);
    }

    #[test]
    fn redundancy_constraint_in_a_problem() {
        // How many replicas for ≥ 0.999 availability at minimum count?
        let model = ComponentModel {
            mtbf_hours: 900.0,
            mttr_hours: 100.0,
        }; // A = 0.9
        let offer = redundancy_constraint("n", model);
        let floor = Constraint::crisp(Probabilistic, &softsoa_core::vars(["n"]), |v| {
            v[0].as_int().unwrap() <= 3
        });
        let p = Scsp::new(Probabilistic)
            .with_domain("n", Domain::ints(0..=6))
            .with_constraint(offer.clone())
            .with_constraint(floor)
            .of_interest(["n"]);
        let solution = p.solve().unwrap();
        // Best within the budget of 3 replicas: 1 − 0.1³ = 0.999.
        assert!((solution.blevel().get() - 0.999).abs() < 1e-12);
        let eta = Assignment::new().bind("n", 0);
        assert_eq!(offer.eval(&eta), Unit::MIN);
    }
}
