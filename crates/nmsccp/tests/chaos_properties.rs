//! Property-based tests of the resilient runtime: trace
//! replayability under fixed seeds, C1–C4 interval preservation (every
//! excursion outside the declared interval is followed by a recorded
//! recovery or by the explicit "no recovery available" marker), and
//! the acceptance demo — a negotiation that deadlocks naively but
//! completes under retry plus relaxation.

use proptest::prelude::*;
use softsoa_core::{Constraint, Domain, Domains};
use softsoa_nmsccp::{
    Agent, EntryOrigin, FaultPalette, FaultPlan, Interpreter, Interval, Policy, Program,
    RecoveryPolicy, ResilienceReport, ResilientInterpreter, Store, TraceEntry,
};
use softsoa_semiring::WeightedInt;

fn doms() -> Domains {
    Domains::new().with("x", Domain::ints(0..=6))
}

fn store() -> Store<WeightedInt> {
    Store::empty(WeightedInt, doms())
}

fn lin(a: u64, b: u64) -> Constraint<WeightedInt> {
    Constraint::unary(WeightedInt, "x", move |v| {
        a * v.as_int().unwrap() as u64 + b
    })
    .with_label(format!("{a}x+{b}"))
}

fn any_iv() -> Interval<WeightedInt> {
    Interval::any(&WeightedInt)
}

/// A random chain of tells over a small constraint pool.
fn tell_chain_strategy() -> impl Strategy<Value = Agent<WeightedInt>> {
    proptest::collection::vec((0u64..3, 0u64..4), 1..4).prop_map(|coeffs| {
        coeffs
            .into_iter()
            .rev()
            .fold(Agent::success(), |acc, (a, b)| {
                Agent::tell(lin(a, b), any_iv(), acc)
            })
    })
}

/// The full fault vocabulary over the same constraint pool.
fn palette() -> FaultPalette<WeightedInt> {
    FaultPalette {
        corruptions: vec![lin(1, 2), lin(2, 1)],
        degradations: vec![1u64, 2u64],
        retractions: vec![lin(0, 1), lin(1, 0)],
        drop_transitions: true,
        crash_branches: true,
    }
}

/// A comparable fingerprint of one trace entry.
fn fingerprint(entry: &TraceEntry<WeightedInt>) -> (usize, String, u64, EntryOrigin) {
    (
        entry.step,
        entry.note.clone(),
        entry.consistency,
        entry.origin,
    )
}

fn run_chaos(
    agent: &Agent<WeightedInt>,
    plan: &FaultPlan<WeightedInt>,
    recovery: &RecoveryPolicy<WeightedInt>,
) -> ResilienceReport<WeightedInt> {
    ResilientInterpreter::new(Program::new())
        .with_plan(plan.clone())
        .with_recovery(recovery.clone())
        .with_max_steps(500)
        .run(agent.clone(), store())
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same seed, same run: the full trace, the fault log and every
    /// recovery counter are bit-identical across replays.
    #[test]
    fn fixed_seed_chaos_runs_replay_identically(
        left in tell_chain_strategy(),
        right in tell_chain_strategy(),
        seed in any::<u64>(),
        rate_pct in 0u32..90,
    ) {
        let agent = Agent::par(left, right);
        let rate = f64::from(rate_pct) / 100.0;
        let plan = FaultPlan::seeded(seed, 24, rate, &palette());
        let recovery = RecoveryPolicy::default();
        let a = run_chaos(&agent, &plan, &recovery);
        let b = run_chaos(&agent, &plan, &recovery);
        let trace = |r: &ResilienceReport<WeightedInt>| {
            r.report.trace.iter().map(fingerprint).collect::<Vec<_>>()
        };
        prop_assert_eq!(trace(&a), trace(&b));
        prop_assert_eq!(&a.fault_log, &b.fault_log);
        prop_assert_eq!(a.report.steps, b.report.steps);
        prop_assert_eq!(a.faults_injected, b.faults_injected);
        prop_assert_eq!(a.dropped_transitions, b.dropped_transitions);
        prop_assert_eq!(a.retries, b.retries);
        prop_assert_eq!(a.rollbacks, b.rollbacks);
        prop_assert_eq!(a.relaxations_applied, b.relaxations_applied);
        prop_assert_eq!(a.invariant_violations, b.invariant_violations);
        prop_assert_eq!(a.final_consistency, b.final_consistency);
    }

    /// Seeded fault plans are pure functions of the seed.
    #[test]
    fn fault_plans_are_pure_functions_of_the_seed(
        seed in any::<u64>(),
        rate_pct in 0u32..100,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let a = FaultPlan::seeded(seed, 32, rate, &palette());
        let b = FaultPlan::seeded(seed, 32, rate, &palette());
        let steps = |p: &FaultPlan<WeightedInt>| {
            p.events().iter().map(|e| e.at_step).collect::<Vec<_>>()
        };
        prop_assert_eq!(steps(&a), steps(&b));
        prop_assert_eq!(a.len(), b.len());
    }

    /// The dependability guarantee of the paper's checked transitions,
    /// under chaos: whenever an intermediate store leaves the declared
    /// C1–C4 interval, the runtime *reacts* — a recovery-origin entry
    /// (rollback or relaxation) follows the excursion, or the trace
    /// carries the explicit marker that no recovery was available.
    /// Violations never pass silently.
    #[test]
    fn interval_excursions_are_always_answered(
        left in tell_chain_strategy(),
        right in tell_chain_strategy(),
        seed in any::<u64>(),
        lower in 2u64..8,
    ) {
        let agent = Agent::par(left, right);
        // Upper bound at the semiring one (cost 0): the empty store is
        // inside, so only "too bad" excursions count.
        let invariant = Interval::levels(lower, 0u64);
        let recovery = RecoveryPolicy {
            relaxations: vec![lin(0, 1), lin(1, 0)],
            invariant: Some(invariant),
            ..RecoveryPolicy::default()
        };
        let plan = FaultPlan::seeded(seed, 24, 0.4, &palette());
        let report = run_chaos(&agent, &plan, &recovery);

        let trace = &report.report.trace;
        let unrecovered = trace
            .iter()
            .any(|e| e.note == "recovery: interval violated, no recovery available");
        for (i, entry) in trace.iter().enumerate() {
            let inside = entry.consistency <= lower;
            if !inside {
                let answered = trace[i + 1..]
                    .iter()
                    .any(|later| later.origin == EntryOrigin::Recovery);
                prop_assert!(
                    answered || unrecovered,
                    "unanswered excursion to {} (> {lower}) at trace index {i}",
                    entry.consistency
                );
            }
        }
        // The report's counters agree with the trace.
        let recovery_entries = trace
            .iter()
            .filter(|e| e.origin == EntryOrigin::Recovery)
            .count();
        prop_assert!(
            report.rollbacks + report.relaxations_applied + report.retries <= recovery_entries + 1,
            "counters exceed recorded recovery entries"
        );
    }

    /// Chaos runs always terminate within fuel and report a valid
    /// final level, whatever the plan does to the store.
    #[test]
    fn chaos_runs_terminate_cleanly(
        left in tell_chain_strategy(),
        right in tell_chain_strategy(),
        seed in any::<u64>(),
        rate_pct in 0u32..100,
    ) {
        let agent = Agent::par(left, right);
        let rate = f64::from(rate_pct) / 100.0;
        let plan = FaultPlan::seeded(seed, 16, rate, &palette());
        let report = run_chaos(&agent, &plan, &RecoveryPolicy::default());
        // Tell-only programs always re-enable; only injected faults and
        // recovery idling can consume extra steps, both bounded.
        prop_assert!(report.report.steps <= 500);
        prop_assert_eq!(
            report.final_consistency,
            report.report.final_consistency().unwrap()
        );
    }
}

/// The acceptance demo: Example 2 of the paper with an inflexible
/// provider deadlocks under the plain interpreter, and completes at
/// the agreed level 2 once the resilient runtime retries and then
/// concedes `c1` from the relaxation ladder.
#[test]
fn deadlocked_negotiation_completes_under_retry_and_relaxation() {
    let provider = Agent::tell(lin(1, 5), any_iv(), Agent::success());
    let client = Agent::tell(
        lin(2, 0),
        any_iv(),
        Agent::ask(
            Constraint::always(WeightedInt),
            Interval::levels(4u64, 2u64),
            Agent::success(),
        ),
    );
    let agent = Agent::par(provider, client);

    let naive = Interpreter::new(Program::new())
        .with_policy(Policy::First)
        .run(agent.clone(), store())
        .unwrap();
    assert!(!naive.outcome.is_success(), "naive run must deadlock");

    let recovery = RecoveryPolicy {
        relaxations: vec![lin(1, 3).with_label("c1")],
        ..RecoveryPolicy::default()
    };
    let report = ResilientInterpreter::new(Program::new())
        .with_recovery(recovery)
        .run(agent, store())
        .unwrap();
    assert!(report.is_success(), "resilient run must complete");
    assert_eq!(report.final_consistency, 2);
    assert!(report.retries > 0, "the deadlock is noticed via retries");
    assert_eq!(report.relaxations_applied, 1);
}
