//! Robustness tests of the nmsccp text parser: arbitrary input must
//! never panic, and structurally valid programs must parse and print
//! consistently.

use proptest::prelude::*;
use softsoa_core::Constraint;
use softsoa_nmsccp::{parse_agent, parse_program, Agent, ParseEnv};
use softsoa_semiring::WeightedInt;

fn env() -> ParseEnv<WeightedInt> {
    ParseEnv::new(WeightedInt)
        .with_constraint(
            "c",
            Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64),
        )
        .with_constraint("d", Constraint::always(WeightedInt))
        .with_level("lo", 9u64)
        .with_level("hi", 1u64)
}

/// A generator of *syntactically plausible* agent texts built from the
/// grammar's tokens (most are valid; some are rejected — either way,
/// no panics, no hangs).
fn token_soup() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("success".to_string()),
        Just("tell(c)".to_string()),
        Just("tell(d)".to_string()),
        Just("ask(c)".to_string()),
        Just("nask(d)".to_string()),
        Just("retract(c)".to_string()),
        Just("update{x}(c)".to_string()),
        Just("->[lo, hi]".to_string()),
        Just("->[bot, top]".to_string()),
        Just("||".to_string()),
        Just("+".to_string()),
        Just("exists x.".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("p(x)".to_string()),
        Just("# comment\n".to_string()),
    ];
    proptest::collection::vec(token, 0..12).prop_map(|tokens| tokens.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total: any token soup yields Ok or Err, never a
    /// panic.
    #[test]
    fn parser_never_panics_on_token_soup(text in token_soup()) {
        let _ = parse_agent(&text, &env());
        let _ = parse_program(&text, &env());
    }

    /// The parser is total on fully arbitrary byte-ish input too.
    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,64}") {
        let _ = parse_agent(&text, &env());
    }

    /// Well-formed tell chains always parse, and their display form
    /// mentions every constraint in order.
    #[test]
    fn tell_chains_parse(n in 1usize..6) {
        let text = "tell(c) ".repeat(n) + "success";
        let agent = parse_agent(&text, &env()).unwrap();
        let mut depth = 0;
        let mut cursor = agent;
        while let Agent::Tell(action) = cursor {
            depth += 1;
            cursor = action.then().clone();
        }
        prop_assert!(cursor.is_success());
        prop_assert_eq!(depth, n);
    }

    /// Error offsets always lie within the input.
    #[test]
    fn error_offsets_are_in_bounds(text in token_soup()) {
        if let Err(e) = parse_agent(&text, &env()) {
            prop_assert!(e.offset() <= text.len());
        }
    }
}

/// Deterministic pathological inputs.
#[test]
fn pathological_inputs() {
    let env = env();
    // Deep nesting parses (no recursion blowup at sane depths).
    let deep = "(".repeat(64) + "success" + &")".repeat(64);
    assert!(parse_agent(&deep, &env).is_ok());
    // Unbalanced parens are an error, not a hang.
    assert!(parse_agent("((success)", &env).is_err());
    // Empty input is an error.
    assert!(parse_agent("", &env).is_err());
    // An interval with swapped brackets is an error.
    assert!(parse_agent("tell(c) ->]lo, hi[ success", &env).is_err());
    // Unicode in identifiers is rejected cleanly.
    assert!(parse_agent("tell(café) success", &env).is_err());
}
