//! Property-based tests of the nmsccp language: confluence of
//! monotonic fragments, executor agreement and crash-freedom on
//! randomly generated agents.

use proptest::prelude::*;
use softsoa_core::{Constraint, Domain, Domains};
use softsoa_nmsccp::{
    Agent, ConcurrentExecutor, Guard, Interpreter, Interval, Policy, Program, Store,
};
use softsoa_semiring::{Semiring, WeightedInt};

fn doms() -> Domains {
    Domains::new().with("x", Domain::ints(0..=6))
}

fn store() -> Store<WeightedInt> {
    Store::empty(WeightedInt, doms())
}

fn lin(a: u64, b: u64) -> Constraint<WeightedInt> {
    Constraint::unary(WeightedInt, "x", move |v| {
        a * v.as_int().unwrap() as u64 + b
    })
    .with_label(format!("{a}x+{b}"))
}

fn any_iv() -> Interval<WeightedInt> {
    Interval::any(&WeightedInt)
}

/// A random chain of tells over a small constraint pool.
fn tell_chain_strategy() -> impl Strategy<Value = Agent<WeightedInt>> {
    proptest::collection::vec((0u64..3, 0u64..4), 1..4).prop_map(|coeffs| {
        coeffs
            .into_iter()
            .rev()
            .fold(Agent::success(), |acc, (a, b)| {
                Agent::tell(lin(a, b), any_iv(), acc)
            })
    })
}

/// A random agent over the full action alphabet (no procedure calls).
fn agent_strategy() -> impl Strategy<Value = Agent<WeightedInt>> {
    let leaf = prop_oneof![
        Just(Agent::<WeightedInt>::success()),
        (0u64..3, 0u64..4).prop_map(|(a, b)| Agent::tell(lin(a, b), any_iv(), Agent::success())),
        (0u64..3, 0u64..4).prop_map(|(a, b)| Agent::ask(lin(a, b), any_iv(), Agent::success())),
        (0u64..3, 0u64..4).prop_map(|(a, b)| Agent::nask(lin(a, b), any_iv(), Agent::success())),
        (0u64..3, 0u64..4).prop_map(|(a, b)| Agent::retract(lin(a, b), any_iv(), Agent::success())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Agent::par(a, b)),
            ((0u64..3, 0u64..4), inner.clone())
                .prop_map(|((a, b), then)| { Agent::tell(lin(a, b), any_iv(), then) }),
            ((0u64..3, 0u64..4), (0u64..3, 0u64..4), inner.clone(), inner).prop_map(
                |((a1, b1), (a2, b2), t1, t2)| {
                    Agent::sum([
                        Guard::ask(lin(a1, b1), any_iv(), t1),
                        Guard::nask(lin(a2, b2), any_iv(), t2),
                    ])
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Monotonic (tell-only) programs are confluent: every policy
    /// reaches success with the same final store level.
    #[test]
    fn tell_only_programs_are_confluent(
        left in tell_chain_strategy(),
        right in tell_chain_strategy(),
        seed in any::<u64>(),
    ) {
        let agent = Agent::par(left, right);
        let mut levels = Vec::new();
        for policy in [Policy::First, Policy::RoundRobin, Policy::Random(seed)] {
            let report = Interpreter::new(Program::new())
                .with_policy(policy)
                .run(agent.clone(), store())
                .unwrap();
            prop_assert!(report.outcome.is_success());
            levels.push(report.outcome.store().consistency().unwrap());
        }
        prop_assert!(levels.windows(2).all(|w| w[0] == w[1]));
    }

    /// The concurrent executor agrees with the sequential one on
    /// tell-only programs.
    #[test]
    fn concurrent_matches_sequential_on_tells(
        left in tell_chain_strategy(),
        right in tell_chain_strategy(),
        seed in any::<u64>(),
    ) {
        let sequential = Interpreter::new(Program::new())
            .run(Agent::par(left.clone(), right.clone()), store())
            .unwrap();
        let concurrent = ConcurrentExecutor::new(Program::new())
            .with_seed(seed)
            .run(vec![left, right], store())
            .unwrap();
        prop_assert!(concurrent.all_succeeded());
        prop_assert_eq!(
            concurrent.store.consistency().unwrap(),
            sequential.outcome.store().consistency().unwrap()
        );
    }

    /// Random agents never error or hang: the interpreter always
    /// returns an outcome within fuel (there are no procedure calls,
    /// so fuel exhaustion itself would indicate a bug).
    #[test]
    fn random_agents_terminate_cleanly(agent in agent_strategy(), seed in any::<u64>()) {
        let report = Interpreter::new(Program::new())
            .with_policy(Policy::Random(seed))
            .with_max_steps(500)
            .run(agent, store())
            .unwrap();
        prop_assert!(report.steps < 500, "loop-free agents must not exhaust fuel");
        // The store level can only be a valid semiring value.
        let level = report.outcome.store().consistency().unwrap();
        prop_assert!(WeightedInt.leq(&WeightedInt.zero(), &level));
    }

    /// tell(c) then retract(c) is observationally a no-op on the store
    /// level whenever the retract is reachable.
    #[test]
    fn tell_then_retract_roundtrips(a in 0u64..3, b in 0u64..4) {
        let c = lin(a, b);
        let agent = Agent::tell(
            c.clone(),
            any_iv(),
            Agent::retract(c, any_iv(), Agent::success()),
        );
        let report = Interpreter::new(Program::new()).run(agent, store()).unwrap();
        prop_assert!(report.outcome.is_success());
        prop_assert_eq!(report.outcome.store().consistency().unwrap(), 0);
    }

    /// Deadlocked runs keep a truthful residual: re-running the
    /// residual agent on the final store deadlocks again immediately.
    #[test]
    fn deadlock_residuals_are_stable(agent in agent_strategy(), seed in any::<u64>()) {
        let report = Interpreter::new(Program::new())
            .with_policy(Policy::Random(seed))
            .run(agent, store())
            .unwrap();
        if let softsoa_nmsccp::Outcome::Deadlock { store, agent } = report.outcome {
            let again = Interpreter::new(Program::new())
                .run(agent, store)
                .unwrap();
            let deadlocked_again =
                matches!(again.outcome, softsoa_nmsccp::Outcome::Deadlock { .. });
            prop_assert!(deadlocked_again);
            prop_assert_eq!(again.steps, 0);
        }
    }
}
