//! The nonmonotonic soft concurrent constraint language `nmsccp`.
//!
//! This crate implements Sec. 2.1 of *Bistarelli & Santini, "Soft
//! Constraints for Dependable Service Oriented Architectures"* (DSN
//! 2008): a concurrent language whose agents interact through a shared
//! store of soft constraints, guarded by *checked transitions* that
//! keep the store's consistency level within a dependability interval.
//!
//! | Paper (Figs. 2–4) | Here |
//! |---|---|
//! | agent syntax `A` | [`Agent`] |
//! | checked transitions C1–C4 (Fig. 3) | [`Interval`], [`Bound`] |
//! | transition rules R1–R10 (Fig. 4) | [`enabled`] in [`semantics`] |
//! | the store `σ` | [`Store`] |
//! | programs `F.A` | [`Program`], [`parse_program`] |
//!
//! Nonmonotonicity comes from `retract` (semiring residuation `÷`) and
//! `update` (projection plus combination): the store's consistency can
//! *improve* over time, which is what lets SLA negotiations relax
//! requirements (Example 2 of the paper).
//!
//! # Execution
//!
//! - [`Interpreter`] — sequential, with deterministic or seeded-random
//!   scheduling and full traces;
//! - [`ConcurrentExecutor`] — one OS thread per agent over a shared
//!   store, with suspension and global-deadlock detection;
//! - [`run_sessions`] — many independent negotiations in parallel;
//! - [`TimedInterpreter`] — scheduled tells/retracts (the timing
//!   mechanisms of the paper's Example 2);
//! - [`ResilientInterpreter`] — deterministic fault injection
//!   ([`FaultPlan`]) with retry, checkpoint/rollback and relaxation
//!   recovery ([`RecoveryPolicy`]);
//! - [`Explorer`] — bounded exploration of *all* schedules: is an
//!   agreement possible under some schedule, and is it guaranteed
//!   under every one?
//!
//! # Example: the paper's Example 2
//!
//! ```
//! use softsoa_nmsccp::{parse_agent, Interpreter, ParseEnv, Policy, Program, Store};
//! use softsoa_core::{Constraint, Domain, Domains};
//! use softsoa_semiring::WeightedInt;
//!
//! let lin = |a: u64, b: u64| Constraint::unary(WeightedInt, "x", move |v| {
//!     a * v.as_int().unwrap() as u64 + b
//! });
//! let env = ParseEnv::new(WeightedInt)
//!     .with_constraint("c1", lin(1, 3))
//!     .with_constraint("c3", lin(2, 0))
//!     .with_constraint("c4", lin(1, 5))
//!     .with_constraint("one", Constraint::always(WeightedInt))
//!     .with_level("two", 2u64)
//!     .with_level("four", 4u64)
//!     .with_level("ten", 10u64);
//!
//! let agent = parse_agent("
//!     tell(c4) retract(c1) ->[ten, two] success
//!     || tell(c3) ask(one) ->[four, two] success
//! ", &env)?;
//!
//! let report = Interpreter::new(Program::new())
//!     .with_policy(Policy::Random(3))
//!     .run(agent, Store::empty(WeightedInt,
//!         Domains::new().with("x", Domain::ints(0..=10))))?;
//! // The store relaxes to 2x + 2; both parties agree at level 2.
//! assert!(report.outcome.is_success());
//! assert_eq!(report.outcome.store().consistency()?, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod checked;
mod concurrent;
mod explore;
mod interp;
mod parser;
mod resilience;
pub mod semantics;
mod store;
mod timed;

pub use agent::{Action, Agent, Clause, Guard, GuardKind, Program};
pub use checked::{Bound, Interval, InvalidIntervalError, ValidationError};
pub use concurrent::{
    run_sessions, AgentOutcome, AgentReport, ConcurrentExecutor, ConcurrentReport,
};
pub use explore::{Exploration, ExplorationStats, Explorer};
pub use interp::{EntryOrigin, Interpreter, Outcome, Policy, RunReport, TraceEntry};
pub use parser::{parse_agent, parse_program, ParseEnv, ParseError};
pub use resilience::{
    FaultAction, FaultEvent, FaultPalette, FaultPlan, FaultStatus, RecoveryPolicy,
    ResilienceReport, ResilientInterpreter,
};
pub use semantics::{enabled, FreshGen, Rule, SemanticsError, Transition};
pub use store::{Store, StoreError};
pub use timed::{EventStatus, TimedAction, TimedEvent, TimedInterpreter, TimedRunReport};
