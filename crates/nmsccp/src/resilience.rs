//! Deterministic fault injection and recovery for `nmsccp` runs.
//!
//! Sec. 5 of the paper motivates the checked transitions C1–C4 with a
//! module that "could take on any behaviour": dependability means the
//! negotiation keeps its store inside a declared interval *while the
//! environment misbehaves*. This module makes that story executable.
//! A [`FaultPlan`] is a step-indexed schedule of faults — the chaos
//! counterpart of the timed tells/retracts in [`crate::TimedEvent`] —
//! injected *during* interpretation, and a [`RecoveryPolicy`] gives
//! the runtime four ways to survive them:
//!
//! - **guard deadlines + bounded retry** — a starved `ask` suspends
//!   for a step budget and retries with deterministic exponential
//!   backoff instead of deadlocking immediately;
//! - **checkpoint/rollback** — the last `(agent, store)` pair that
//!   satisfied the declared interval is restored when a mutation
//!   leaves the interval;
//! - **graceful degradation** — a retract-based relaxation ladder is
//!   consumed rung by rung (residuation `÷`, Example 2 of the paper)
//!   until the interval is re-entered or a blocked run unblocks;
//! - **replayable traces** — every fault and every recovery action is
//!   a [`TraceEntry`] with a [`EntryOrigin::Fault`] or
//!   [`EntryOrigin::Recovery`] origin, so a fixed seed reproduces the
//!   run bit for bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softsoa_core::Constraint;
use softsoa_semiring::{Residuated, Semiring};
use softsoa_telemetry::Telemetry;

use crate::interp::emit_run;
use crate::semantics::{enabled, FreshGen, Rule, SemanticsError};
use crate::{
    Agent, EntryOrigin, Interval, Outcome, Policy, Program, RunReport, Store, StoreError,
    TraceEntry,
};

/// A fault the environment can inject into a running configuration.
#[derive(Debug, Clone)]
pub enum FaultAction<S: Semiring> {
    /// Silently swallow the next chosen transition: the scheduler
    /// picks it, the trace records it as dropped, the configuration
    /// does not move (a lost message).
    DropTransition,
    /// Tell an adversarial constraint into the store (a corrupted
    /// policy, Sec. 5's "any behaviour" module).
    Corrupt(Constraint<S>),
    /// Worsen every level of the store uniformly by the given semiring
    /// value ([`Store::attenuate`]) — a provider-wide quality loss.
    Degrade(S::Value),
    /// Replace the `i mod n`-th parallel branch (of `n` leaves) with
    /// `success`, silencing it forever (a crashed provider). Skipped
    /// when the agent has no parallel branch.
    CrashBranch(usize),
    /// Retract a told policy from the store (rule R7) — the dual of
    /// [`FaultAction::Corrupt`]. Skipped when the store does not
    /// entail the constraint.
    Unconstrain(Constraint<S>),
}

/// A scheduled fault: *at* the given interpreter step, inject the
/// action. Events at step `k` fire before the `k`-th transition, and
/// each firing consumes one step, exactly like [`crate::TimedEvent`].
#[derive(Debug, Clone)]
pub struct FaultEvent<S: Semiring> {
    /// The step count at which the fault fires.
    pub at_step: usize,
    /// The fault to inject.
    pub action: FaultAction<S>,
}

/// What happened to a scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStatus {
    /// The fault was injected.
    Applied,
    /// An [`FaultAction::Unconstrain`] was skipped because the store
    /// did not entail the constraint at fire time.
    SkippedNotEntailed,
    /// A [`FaultAction::CrashBranch`] was skipped because the agent
    /// had no parallel branch to crash.
    SkippedNoBranch,
}

/// The kinds of faults a seeded [`FaultPlan`] may draw from.
///
/// An empty palette generates no faults regardless of the rate.
#[derive(Debug, Clone)]
pub struct FaultPalette<S: Semiring> {
    /// Constraints available to [`FaultAction::Corrupt`].
    pub corruptions: Vec<Constraint<S>>,
    /// Values available to [`FaultAction::Degrade`].
    pub degradations: Vec<S::Value>,
    /// Constraints available to [`FaultAction::Unconstrain`].
    pub retractions: Vec<Constraint<S>>,
    /// Whether [`FaultAction::DropTransition`] may be drawn.
    pub drop_transitions: bool,
    /// Whether [`FaultAction::CrashBranch`] may be drawn.
    pub crash_branches: bool,
}

impl<S: Semiring> Default for FaultPalette<S> {
    fn default() -> FaultPalette<S> {
        FaultPalette {
            corruptions: Vec::new(),
            degradations: Vec::new(),
            retractions: Vec::new(),
            drop_transitions: false,
            crash_branches: false,
        }
    }
}

/// A deterministic, replayable schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan<S: Semiring> {
    events: Vec<FaultEvent<S>>,
}

impl<S: Semiring> FaultPlan<S> {
    /// A plan with no faults.
    pub fn none() -> FaultPlan<S> {
        FaultPlan { events: Vec::new() }
    }

    /// Creates a plan from explicit events.
    pub fn new(events: Vec<FaultEvent<S>>) -> FaultPlan<S> {
        FaultPlan { events }
    }

    /// Draws a plan from a seed: at every step below `horizon` a fault
    /// fires with probability `rate`, its kind and payload picked
    /// uniformly from the palette. The same `(seed, horizon, rate,
    /// palette)` always yields the same plan.
    pub fn seeded(seed: u64, horizon: usize, rate: f64, palette: &FaultPalette<S>) -> FaultPlan<S> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for at_step in 0..horizon {
            if rng.random::<f64>() >= rate {
                continue;
            }
            let mut actions: Vec<FaultAction<S>> = Vec::new();
            if palette.drop_transitions {
                actions.push(FaultAction::DropTransition);
            }
            if !palette.corruptions.is_empty() {
                let i = rng.random_range(0..palette.corruptions.len());
                actions.push(FaultAction::Corrupt(palette.corruptions[i].clone()));
            }
            if !palette.degradations.is_empty() {
                let i = rng.random_range(0..palette.degradations.len());
                actions.push(FaultAction::Degrade(palette.degradations[i].clone()));
            }
            if !palette.retractions.is_empty() {
                let i = rng.random_range(0..palette.retractions.len());
                actions.push(FaultAction::Unconstrain(palette.retractions[i].clone()));
            }
            if palette.crash_branches {
                actions.push(FaultAction::CrashBranch(rng.random_range(0..8)));
            }
            if actions.is_empty() {
                continue;
            }
            let pick = rng.random_range(0..actions.len());
            events.push(FaultEvent {
                at_step,
                action: actions.swap_remove(pick),
            });
        }
        FaultPlan { events }
    }

    /// The scheduled events, in declaration order.
    pub fn events(&self) -> &[FaultEvent<S>] {
        &self.events
    }

    /// The number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// How the runtime recovers from suspensions and interval violations.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy<S: Semiring> {
    /// How many steps a blocked configuration idles before each retry
    /// (the per-guard deadline that turns a starved `ask` into a
    /// recoverable suspension).
    pub guard_deadline: usize,
    /// How many retries a blocked configuration gets before the
    /// relaxation ladder is consulted. The budget resets whenever a
    /// transition or a relaxation makes progress.
    pub max_retries: usize,
    /// Base of the deterministic exponential backoff: retry `n` idles
    /// `guard_deadline + backoff_base · 2ⁿ⁻¹` steps.
    pub backoff_base: usize,
    /// The relaxation ladder: constraints retracted one rung at a time
    /// (weakest contribution first) to unblock a deadlocked run or
    /// re-enter a violated interval. Rungs the store does not entail
    /// are skipped.
    pub relaxations: Vec<Constraint<S>>,
    /// The dependability interval (C1–C4) the store must stay inside.
    /// `None` disables checkpointing and rollback.
    pub invariant: Option<Interval<S>>,
    /// Absolute session deadline on the virtual step clock. A retry is
    /// never allowed to sleep past it: the idle wait is clamped to the
    /// steps remaining, and once the clock reaches the deadline with
    /// agents still pending the run ends with
    /// [`Outcome::DeadlineExceeded`] instead of retrying into a dead
    /// session. `None` leaves the session unbounded (the `max_steps`
    /// fuel budget still applies).
    pub deadline: Option<usize>,
}

impl<S: Semiring> Default for RecoveryPolicy<S> {
    fn default() -> RecoveryPolicy<S> {
        RecoveryPolicy {
            guard_deadline: 4,
            max_retries: 3,
            backoff_base: 2,
            relaxations: Vec::new(),
            invariant: None,
            deadline: None,
        }
    }
}

/// The report of a resilient run: the usual [`RunReport`] plus the
/// fate of every fault and the recovery counters.
#[derive(Debug, Clone)]
pub struct ResilienceReport<S: Semiring> {
    /// The underlying run report (outcome, steps, full trace —
    /// including fault and recovery entries).
    pub report: RunReport<S>,
    /// `(event index, status)` for every fault that fired, in firing
    /// order. Indices refer to [`FaultPlan::events`].
    pub fault_log: Vec<(usize, FaultStatus)>,
    /// How many faults were actually injected (status `Applied`).
    pub faults_injected: usize,
    /// How many chosen transitions a [`FaultAction::DropTransition`]
    /// swallowed.
    pub dropped_transitions: usize,
    /// How many retries a blocked configuration consumed.
    pub retries: usize,
    /// How many rollbacks to a checkpoint were performed.
    pub rollbacks: usize,
    /// How many relaxation rungs were retracted.
    pub relaxations_applied: usize,
    /// How many times the declared interval was violated (recovered or
    /// not).
    pub invariant_violations: usize,
    /// The consistency level `σ ⇓ ∅` of the final store.
    pub final_consistency: S::Value,
}

impl<S: Semiring> ResilienceReport<S> {
    /// Whether the run terminated with `success`.
    pub fn is_success(&self) -> bool {
        self.report.outcome.is_success()
    }
}

/// Tracks checkpoint, ladder position and recovery counters during a
/// resilient run.
struct RecoveryState<S: Semiring> {
    checkpoint: Option<(Agent<S>, Store<S>)>,
    next_rung: usize,
    rollbacks: usize,
    relaxations: usize,
    violations: usize,
    unrecovered_logged: bool,
}

impl<S: Residuated> RecoveryState<S> {
    fn new() -> RecoveryState<S> {
        RecoveryState {
            checkpoint: None,
            next_rung: 0,
            rollbacks: 0,
            relaxations: 0,
            violations: 0,
            unrecovered_logged: false,
        }
    }

    /// Retracts the next entailed rung of the ladder, if any.
    fn apply_next_rung(
        &mut self,
        recovery: &RecoveryPolicy<S>,
        store: &mut Store<S>,
        steps: &mut usize,
        trace: &mut Vec<TraceEntry<S>>,
    ) -> Result<bool, SemanticsError> {
        while self.next_rung < recovery.relaxations.len() {
            let rung = recovery.relaxations[self.next_rung].clone();
            self.next_rung += 1;
            match store.retract(&rung) {
                Ok(next) => {
                    *store = next;
                    self.relaxations += 1;
                    trace.push(TraceEntry {
                        step: *steps,
                        rule: Rule::Retract,
                        note: format!("recovery: relax({})", label(&rung)),
                        consistency: store.consistency()?,
                        enabled: 0,
                        origin: EntryOrigin::Recovery,
                    });
                    *steps += 1;
                    return Ok(true);
                }
                Err(StoreError::NotEntailed) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(false)
    }

    /// Checks the declared interval after a mutation. On a pass with
    /// `arm_checkpoint`, records the state as the rollback target. On
    /// a violation: restore the checkpoint if one is armed, otherwise
    /// relax rung by rung until the interval is re-entered, otherwise
    /// record (once) that the violation is unrecoverable and carry on.
    fn ensure_invariant(
        &mut self,
        recovery: &RecoveryPolicy<S>,
        agent: &mut Agent<S>,
        store: &mut Store<S>,
        steps: &mut usize,
        trace: &mut Vec<TraceEntry<S>>,
        arm_checkpoint: bool,
    ) -> Result<(), SemanticsError> {
        let Some(interval) = &recovery.invariant else {
            return Ok(());
        };
        if interval.check(store).map_err(SemanticsError::from)? {
            if arm_checkpoint {
                self.checkpoint = Some((agent.clone(), store.clone()));
            }
            return Ok(());
        }
        self.violations += 1;
        if let Some((ck_agent, ck_store)) = self.checkpoint.take() {
            *agent = ck_agent;
            *store = ck_store;
            self.rollbacks += 1;
            trace.push(TraceEntry {
                step: *steps,
                rule: Rule::Update,
                note: "recovery: rollback to last checkpoint inside the interval".to_string(),
                consistency: store.consistency()?,
                enabled: 0,
                origin: EntryOrigin::Recovery,
            });
            *steps += 1;
            return Ok(());
        }
        loop {
            if interval.check(store).map_err(SemanticsError::from)? {
                return Ok(());
            }
            if !self.apply_next_rung(recovery, store, steps, trace)? {
                if !self.unrecovered_logged {
                    self.unrecovered_logged = true;
                    trace.push(TraceEntry {
                        step: *steps,
                        rule: Rule::Ask,
                        note: "recovery: interval violated, no recovery available".to_string(),
                        consistency: store.consistency()?,
                        enabled: 0,
                        origin: EntryOrigin::Recovery,
                    });
                    *steps += 1;
                }
                return Ok(());
            }
        }
    }
}

/// How a resilient run ended (internal; converted to [`Outcome`]).
enum End {
    Success,
    OutOfFuel,
    Deadlock,
    DeadlineExceeded,
}

/// An interpreter that injects a [`FaultPlan`] into a run and applies
/// a [`RecoveryPolicy`] to survive it.
///
/// Both the fault schedule and every recovery decision are functions
/// of `(plan, recovery, policy, max_steps)` and the step counter
/// alone, so a fixed seed reproduces the whole run — trace, fault log
/// and counters — bit for bit.
///
/// # Examples
///
/// Example 1 of the paper deadlocks: the merged policies cost 5 hours,
/// outside the client's `[1, 4]` interval. Under a recovery policy
/// whose relaxation ladder holds `c1 = x + 3`, the runtime retries,
/// then retracts `c1` (Example 2's relaxation) and the negotiation
/// completes at level 2:
///
/// ```
/// use softsoa_nmsccp::{Agent, Interval, Program, RecoveryPolicy,
///     ResilientInterpreter, Store};
/// use softsoa_core::{Constraint, Domain, Domains};
/// use softsoa_semiring::WeightedInt;
///
/// let doms = Domains::new().with("x", Domain::ints(0..=10));
/// let lin = |a: u64, b: u64| Constraint::unary(WeightedInt, "x", move |v| {
///     a * v.as_int().unwrap() as u64 + b
/// });
/// let p1 = Agent::tell(lin(1, 5), Interval::any(&WeightedInt), Agent::success());
/// let p2 = Agent::tell(lin(2, 0), Interval::any(&WeightedInt),
///     Agent::ask(Constraint::always(WeightedInt),
///         Interval::levels(4u64, 1u64), Agent::success()));
///
/// let recovery = RecoveryPolicy {
///     relaxations: vec![lin(1, 3).with_label("c1")],
///     ..RecoveryPolicy::default()
/// };
/// let report = ResilientInterpreter::new(Program::new())
///     .with_recovery(recovery)
///     .run(Agent::par(p1, p2), Store::empty(WeightedInt, doms))?;
/// assert!(report.is_success());
/// assert_eq!(report.final_consistency, 2);
/// assert_eq!(report.relaxations_applied, 1);
/// # Ok::<(), softsoa_nmsccp::SemanticsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ResilientInterpreter<S: Semiring> {
    program: Program<S>,
    plan: FaultPlan<S>,
    recovery: RecoveryPolicy<S>,
    policy: Policy,
    max_steps: usize,
    telemetry: Telemetry,
}

/// Upper bound on the idle wait of a single retry, in steps.
///
/// The exponential backoff `backoff_base · 2^(attempt−1)` saturates
/// here: beyond this the step clock would race past any realistic
/// fuel budget in one suspension, and with large `max_retries` the
/// unbounded shift itself overflows. The cap keeps every retry wait
/// finite and lets `max_steps` decide when the run is out of fuel.
pub const MAX_RETRY_WAIT: usize = 1 << 16;

impl<S: Residuated> ResilientInterpreter<S> {
    /// Creates a resilient interpreter with no faults, the default
    /// [`RecoveryPolicy`], the [`Policy::First`] schedule and a budget
    /// of 10 000 steps.
    pub fn new(program: Program<S>) -> ResilientInterpreter<S> {
        ResilientInterpreter {
            program,
            plan: FaultPlan::none(),
            recovery: RecoveryPolicy::default(),
            policy: Policy::First,
            max_steps: 10_000,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; each finished run is replayed
    /// into it (per-rule counts, consistency series, fault and
    /// recovery counters).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ResilientInterpreter<S> {
        self.telemetry = telemetry;
        self
    }

    /// Sets the fault plan.
    pub fn with_plan(mut self, plan: FaultPlan<S>) -> ResilientInterpreter<S> {
        self.plan = plan;
        self
    }

    /// Sets the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy<S>) -> ResilientInterpreter<S> {
        self.recovery = recovery;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: Policy) -> ResilientInterpreter<S> {
        self.policy = policy;
        self
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> ResilientInterpreter<S> {
        self.max_steps = max_steps;
        self
    }

    /// Runs the agent under the fault plan and recovery policy.
    ///
    /// # Errors
    ///
    /// Returns [`SemanticsError`] as the sequential interpreter does.
    pub fn run(
        &self,
        agent: Agent<S>,
        store: Store<S>,
    ) -> Result<ResilienceReport<S>, SemanticsError> {
        let mut rng = match self.policy {
            Policy::First | Policy::RoundRobin => None,
            Policy::Random(seed) => Some(StdRng::seed_from_u64(seed)),
        };
        let mut fresh = FreshGen::new();
        let mut agent = agent.normalize();
        let mut store = store;
        let mut trace = Vec::new();
        let mut steps = 0usize;

        let mut schedule: Vec<(usize, &FaultEvent<S>)> =
            self.plan.events.iter().enumerate().collect();
        schedule.sort_by_key(|(i, e)| (e.at_step, *i));
        let mut next_fault = 0usize;

        let mut fault_log = Vec::new();
        let mut faults_injected = 0usize;
        let mut dropped_transitions = 0usize;
        let mut retries = 0usize;
        let mut retry_attempt = 0usize;
        let mut drop_pending = false;
        let mut rec = RecoveryState::new();

        // Arm the initial checkpoint if the empty-run store already
        // satisfies the invariant.
        rec.ensure_invariant(
            &self.recovery,
            &mut agent,
            &mut store,
            &mut steps,
            &mut trace,
            true,
        )?;

        let end = loop {
            // 1. Inject due faults (each costs a step, like a timed
            //    event).
            while next_fault < schedule.len() && schedule[next_fault].1.at_step <= steps {
                let (event_index, event) = schedule[next_fault];
                next_fault += 1;
                let mut mutated = false;
                let (status, rule, note) = match &event.action {
                    FaultAction::DropTransition => {
                        drop_pending = true;
                        (
                            FaultStatus::Applied,
                            Rule::Tell,
                            "fault: drop next transition".to_string(),
                        )
                    }
                    FaultAction::Corrupt(c) => {
                        store = store.tell(c)?;
                        mutated = true;
                        (
                            FaultStatus::Applied,
                            Rule::Tell,
                            format!("fault: corrupt({})", label(c)),
                        )
                    }
                    FaultAction::Degrade(v) => {
                        store = store.attenuate(v)?;
                        mutated = true;
                        (
                            FaultStatus::Applied,
                            Rule::Tell,
                            format!("fault: degrade({v:?})"),
                        )
                    }
                    FaultAction::CrashBranch(i) => {
                        let leaves = par_leaf_count(&agent);
                        if leaves <= 1 {
                            (
                                FaultStatus::SkippedNoBranch,
                                Rule::Tell,
                                "fault: crash branch skipped (no parallel branch)".to_string(),
                            )
                        } else {
                            let target = i % leaves;
                            agent = crash_leaf(agent, target).normalize();
                            (
                                FaultStatus::Applied,
                                Rule::Tell,
                                format!("fault: crash branch {target} of {leaves}"),
                            )
                        }
                    }
                    FaultAction::Unconstrain(c) => match store.retract(c) {
                        Ok(next) => {
                            store = next;
                            mutated = true;
                            (
                                FaultStatus::Applied,
                                Rule::Retract,
                                format!("fault: unconstrain({})", label(c)),
                            )
                        }
                        Err(StoreError::NotEntailed) => (
                            FaultStatus::SkippedNotEntailed,
                            Rule::Retract,
                            format!("fault: unconstrain({}) skipped", label(c)),
                        ),
                        Err(e) => return Err(e.into()),
                    },
                };
                if status == FaultStatus::Applied {
                    faults_injected += 1;
                }
                trace.push(TraceEntry {
                    step: steps,
                    rule,
                    note,
                    consistency: store.consistency()?,
                    enabled: 0,
                    origin: EntryOrigin::Fault,
                });
                fault_log.push((event_index, status));
                steps += 1;
                if mutated {
                    rec.ensure_invariant(
                        &self.recovery,
                        &mut agent,
                        &mut store,
                        &mut steps,
                        &mut trace,
                        false,
                    )?;
                }
            }

            if agent.is_success() {
                break End::Success;
            }
            if self.recovery.deadline.is_some_and(|d| steps >= d) {
                break End::DeadlineExceeded;
            }
            if steps >= self.max_steps {
                break End::OutOfFuel;
            }

            let transitions = enabled(&self.program, &agent, &store, &mut fresh)?;
            if transitions.is_empty() {
                if next_fault < schedule.len() {
                    // Suspended, but faults still pend: advance the
                    // clock to the next one — it may unblock us.
                    steps = steps.max(schedule[next_fault].1.at_step);
                    continue;
                }
                if retry_attempt < self.recovery.max_retries {
                    // Per-guard deadline: idle, then retry with
                    // deterministic exponential backoff, saturating
                    // at MAX_RETRY_WAIT (a `1 << attempt` shift is
                    // otherwise undefined past 63 attempts).
                    retry_attempt += 1;
                    retries += 1;
                    let exp = u32::try_from(retry_attempt - 1).unwrap_or(u32::MAX);
                    let base = self.recovery.backoff_base;
                    let backoff = if base == 0 || exp <= base.leading_zeros() {
                        base.checked_shl(exp).unwrap_or(usize::MAX)
                    } else {
                        usize::MAX
                    };
                    let mut wait = self
                        .recovery
                        .guard_deadline
                        .saturating_add(backoff)
                        .min(MAX_RETRY_WAIT);
                    if let Some(deadline) = self.recovery.deadline {
                        // Never sleep past the session deadline: the
                        // final wait is clamped to the steps remaining
                        // (the top of the loop then ends the run with
                        // `DeadlineExceeded` if the retry still finds
                        // the configuration blocked).
                        wait = wait.min(deadline.saturating_sub(steps));
                    }
                    self.telemetry
                        .observe("nmsccp.recovery.backoff_wait", wait as u64);
                    steps = steps.saturating_add(wait);
                    trace.push(TraceEntry {
                        step: steps,
                        rule: Rule::Ask,
                        note: format!(
                            "recovery: retry {retry_attempt} after {wait}-step suspension"
                        ),
                        consistency: store.consistency()?,
                        enabled: 0,
                        origin: EntryOrigin::Recovery,
                    });
                    continue;
                }
                // Retries exhausted: degrade gracefully, one rung at a
                // time, with a fresh retry budget per rung.
                if rec.apply_next_rung(&self.recovery, &mut store, &mut steps, &mut trace)? {
                    retry_attempt = 0;
                    continue;
                }
                break End::Deadlock;
            }

            let count = transitions.len();
            let index = match (&self.policy, &mut rng) {
                (Policy::RoundRobin, _) => steps % count,
                (_, Some(rng)) => rng.random_range(0..count),
                _ => 0,
            };
            let chosen = transitions.into_iter().nth(index).expect("index in range");
            if drop_pending {
                // The armed fault swallows the chosen transition: the
                // configuration does not move.
                drop_pending = false;
                dropped_transitions += 1;
                trace.push(TraceEntry {
                    step: steps,
                    rule: chosen.rule,
                    note: format!("fault: dropped {}", chosen.note),
                    consistency: store.consistency()?,
                    enabled: count,
                    origin: EntryOrigin::Fault,
                });
                steps += 1;
                continue;
            }
            trace.push(TraceEntry {
                step: steps,
                rule: chosen.rule,
                note: chosen.note,
                consistency: chosen.store.consistency()?,
                enabled: count,
                origin: EntryOrigin::Agent,
            });
            agent = chosen.agent.normalize();
            store = chosen.store;
            steps += 1;
            retry_attempt = 0;
            rec.ensure_invariant(
                &self.recovery,
                &mut agent,
                &mut store,
                &mut steps,
                &mut trace,
                true,
            )?;
        };

        let final_consistency = store.consistency()?;
        let outcome = match end {
            End::Success => Outcome::Success { store },
            End::OutOfFuel => Outcome::OutOfFuel { store, agent },
            End::Deadlock => Outcome::Deadlock { store, agent },
            End::DeadlineExceeded => Outcome::DeadlineExceeded { store, agent },
        };
        let report = ResilienceReport {
            report: RunReport {
                outcome,
                steps,
                trace,
            },
            fault_log,
            faults_injected,
            dropped_transitions,
            retries,
            rollbacks: rec.rollbacks,
            relaxations_applied: rec.relaxations,
            invariant_violations: rec.violations,
            final_consistency,
        };
        self.emit(&report);
        Ok(report)
    }

    /// Replays a finished resilient run into the attached telemetry:
    /// the base run metrics plus fault and recovery counters. The
    /// degradation rung reached and the interval excursions come from
    /// the report itself, so emission is deterministic.
    fn emit(&self, report: &ResilienceReport<S>) {
        let t = &self.telemetry;
        if !t.enabled() {
            return;
        }
        emit_run(t, &report.report);
        t.count("nmsccp.faults.injected", report.faults_injected as u64);
        t.count(
            "nmsccp.faults.dropped_transitions",
            report.dropped_transitions as u64,
        );
        t.count("nmsccp.recovery.retries", report.retries as u64);
        t.count("nmsccp.recovery.rollbacks", report.rollbacks as u64);
        t.count(
            "nmsccp.recovery.relaxations",
            report.relaxations_applied as u64,
        );
        t.count(
            "nmsccp.recovery.interval_excursions",
            report.invariant_violations as u64,
        );
        t.gauge(
            "nmsccp.recovery.rung_reached",
            report.relaxations_applied as i64,
        );
    }
}

/// The number of parallel leaves of an agent (1 for a non-`Par`).
fn par_leaf_count<S: Semiring>(agent: &Agent<S>) -> usize {
    match agent {
        Agent::Par(l, r) => par_leaf_count(l) + par_leaf_count(r),
        _ => 1,
    }
}

/// Replaces the `target`-th parallel leaf (in-order) with `success`.
fn crash_leaf<S: Semiring>(agent: Agent<S>, target: usize) -> Agent<S> {
    fn go<S: Semiring>(agent: Agent<S>, target: usize, counter: &mut usize) -> Agent<S> {
        match agent {
            Agent::Par(l, r) => {
                let l = go(*l, target, counter);
                let r = go(*r, target, counter);
                Agent::par(l, r)
            }
            other => {
                let i = *counter;
                *counter += 1;
                if i == target {
                    Agent::success()
                } else {
                    other
                }
            }
        }
    }
    go(agent, target, &mut 0)
}

fn label<S: Semiring>(c: &Constraint<S>) -> String {
    c.label().map_or_else(|| "c".to_string(), str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_core::{Constraint, Domain, Domains};
    use softsoa_semiring::WeightedInt;

    fn doms() -> Domains {
        Domains::new().with("x", Domain::ints(0..=10))
    }

    fn lin(a: u64, b: u64, name: &str) -> Constraint<WeightedInt> {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
        .with_label(name)
    }

    fn any() -> Interval<WeightedInt> {
        Interval::any(&WeightedInt)
    }

    /// Example 1 (deadlocks naively) completes under retry +
    /// relaxation — the headline acceptance demo.
    #[test]
    fn deadlocked_negotiation_completes_under_relaxation() {
        let mk = || {
            let p1 = Agent::tell(lin(1, 5, "c4"), any(), Agent::success());
            let p2 = Agent::tell(
                lin(2, 0, "c3"),
                any(),
                Agent::ask(
                    Constraint::always(WeightedInt).with_label("1"),
                    Interval::levels(4u64, 1u64),
                    Agent::success(),
                ),
            );
            Agent::par(p1, p2)
        };
        // Naive interpretation deadlocks at level 5 ∉ [1, 4].
        let naive = crate::Interpreter::new(Program::new())
            .run(mk(), Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(matches!(naive.outcome, Outcome::Deadlock { .. }));

        // Resilient interpretation retries, then relaxes c1 away.
        let recovery = RecoveryPolicy {
            relaxations: vec![lin(1, 3, "c1")],
            ..RecoveryPolicy::default()
        };
        let report = ResilientInterpreter::new(Program::new())
            .with_recovery(recovery)
            .run(mk(), Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.is_success());
        assert_eq!(report.final_consistency, 2);
        assert_eq!(report.retries, 3);
        assert_eq!(report.relaxations_applied, 1);
        assert!(report
            .report
            .trace
            .iter()
            .any(|t| t.origin == EntryOrigin::Recovery && t.note.contains("relax(c1)")));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let palette = FaultPalette {
            corruptions: vec![lin(0, 2, "noise")],
            degradations: vec![1u64],
            retractions: vec![lin(0, 1, "one")],
            drop_transitions: true,
            crash_branches: true,
        };
        let a = FaultPlan::seeded(42, 50, 0.3, &palette);
        let b = FaultPlan::seeded(42, 50, 0.3, &palette);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (ea, eb) in a.events().iter().zip(b.events()) {
            assert_eq!(ea.at_step, eb.at_step);
            assert_eq!(
                std::mem::discriminant(&ea.action),
                std::mem::discriminant(&eb.action)
            );
        }
        // A different seed yields a different plan (for this seed
        // pair; both draws are deterministic).
        let c = FaultPlan::seeded(43, 50, 0.3, &palette);
        let fingerprint =
            |p: &FaultPlan<WeightedInt>| p.events().iter().map(|e| e.at_step).collect::<Vec<_>>();
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn corrupting_fault_triggers_rollback() {
        // The agent tells a good policy (level 1, inside [3, 0]); a
        // corruption at step 1 pushes the store to level 6, and the
        // rollback restores the checkpointed state.
        let agent = Agent::tell(
            lin(1, 1, "good"),
            any(),
            Agent::ask(
                Constraint::always(WeightedInt).with_label("1"),
                Interval::levels(3u64, 0u64),
                Agent::success(),
            ),
        );
        let plan = FaultPlan::new(vec![FaultEvent {
            at_step: 1,
            action: FaultAction::Corrupt(lin(0, 5, "garbage")),
        }]);
        let recovery = RecoveryPolicy {
            invariant: Some(Interval::levels(3u64, 0u64)),
            ..RecoveryPolicy::default()
        };
        let report = ResilientInterpreter::new(Program::new())
            .with_plan(plan)
            .with_recovery(recovery)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.is_success());
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.invariant_violations, 1);
        assert_eq!(report.final_consistency, 1); // corruption undone
    }

    #[test]
    fn dropped_transition_is_recorded_and_not_applied() {
        let agent = Agent::tell(lin(0, 2, "c"), any(), Agent::success());
        let plan = FaultPlan::new(vec![FaultEvent {
            at_step: 0,
            action: FaultAction::DropTransition,
        }]);
        let report = ResilientInterpreter::new(Program::new())
            .with_plan(plan)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        // The tell is dropped once, then re-chosen and applied.
        assert!(report.is_success());
        assert_eq!(report.dropped_transitions, 1);
        assert_eq!(report.final_consistency, 2);
        let dropped: Vec<&TraceEntry<WeightedInt>> = report
            .report
            .trace
            .iter()
            .filter(|t| t.note.starts_with("fault: dropped"))
            .collect();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].origin, EntryOrigin::Fault);
        assert_eq!(dropped[0].consistency, 0); // store unchanged
    }

    #[test]
    fn crash_branch_silences_one_provider() {
        // Two providers; crashing leaf 1 removes the second tell.
        let mk =
            |tag: u64, name: &'static str| Agent::tell(lin(0, tag, name), any(), Agent::success());
        let plan = FaultPlan::new(vec![FaultEvent {
            at_step: 0,
            action: FaultAction::CrashBranch(1),
        }]);
        let report = ResilientInterpreter::new(Program::new())
            .with_plan(plan)
            .run(
                Agent::par(mk(1, "a"), mk(2, "b")),
                Store::empty(WeightedInt, doms()),
            )
            .unwrap();
        assert!(report.is_success());
        assert_eq!(report.faults_injected, 1);
        assert_eq!(report.final_consistency, 1); // only "a" told
    }

    #[test]
    fn crash_branch_skipped_without_parallelism() {
        let agent = Agent::tell(lin(0, 1, "c"), any(), Agent::success());
        let plan = FaultPlan::new(vec![FaultEvent {
            at_step: 0,
            action: FaultAction::CrashBranch(0),
        }]);
        let report = ResilientInterpreter::new(Program::new())
            .with_plan(plan)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert_eq!(report.fault_log, vec![(0, FaultStatus::SkippedNoBranch)]);
        assert_eq!(report.faults_injected, 0);
        assert!(report.is_success());
    }

    #[test]
    fn unconstrain_fault_skipped_when_not_entailed() {
        let agent = Agent::tell(lin(1, 1, "c"), any(), Agent::success());
        let plan = FaultPlan::new(vec![FaultEvent {
            at_step: 0,
            action: FaultAction::Unconstrain(lin(9, 9, "big")),
        }]);
        let report = ResilientInterpreter::new(Program::new())
            .with_plan(plan)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert_eq!(report.fault_log, vec![(0, FaultStatus::SkippedNotEntailed)]);
        assert!(report.is_success());
    }

    #[test]
    fn degrade_fault_attenuates_the_store() {
        let agent = Agent::tell(lin(1, 1, "c"), any(), Agent::success());
        let plan = FaultPlan::new(vec![FaultEvent {
            at_step: 1,
            action: FaultAction::Degrade(3u64),
        }]);
        let report = ResilientInterpreter::new(Program::new())
            .with_plan(plan)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.is_success());
        assert_eq!(report.final_consistency, 4); // 1 + 3
    }

    #[test]
    fn fixed_seed_run_is_bit_reproducible() {
        let palette = FaultPalette {
            corruptions: vec![lin(0, 1, "noise")],
            degradations: vec![2u64],
            retractions: vec![lin(0, 1, "noise")],
            drop_transitions: true,
            crash_branches: true,
        };
        let run = || {
            let plan = FaultPlan::seeded(7, 30, 0.4, &palette);
            let recovery = RecoveryPolicy {
                relaxations: vec![lin(0, 1, "noise")],
                invariant: Some(Interval::levels(9u64, 0u64)),
                ..RecoveryPolicy::default()
            };
            let p = |tag: u64, name: &'static str| {
                Agent::tell(
                    lin(0, tag, name),
                    any(),
                    Agent::ask(
                        Constraint::always(WeightedInt).with_label("1"),
                        Interval::levels(9u64, 0u64),
                        Agent::success(),
                    ),
                )
            };
            ResilientInterpreter::new(Program::new())
                .with_plan(plan)
                .with_recovery(recovery)
                .with_policy(Policy::Random(11))
                .run(
                    Agent::par(p(1, "a"), p(2, "b")),
                    Store::empty(WeightedInt, doms()),
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.fault_log, b.fault_log);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.rollbacks, b.rollbacks);
        assert_eq!(a.relaxations_applied, b.relaxations_applied);
        assert_eq!(a.final_consistency, b.final_consistency);
        assert_eq!(a.report.steps, b.report.steps);
        let sig = |r: &ResilienceReport<WeightedInt>| {
            r.report
                .trace
                .iter()
                .map(|t| (t.step, t.note.clone(), t.consistency, t.origin))
                .collect::<Vec<_>>()
        };
        assert_eq!(sig(&a), sig(&b));
    }

    /// A 3-retry plan with a session deadline falling mid-backoff:
    /// retry 1 idles the full 6 steps (4 + 2·2⁰), retry 2's 8-step
    /// wait is clamped to the 4 steps remaining before the deadline at
    /// 10, and the third retry never happens — the run ends with the
    /// typed `DeadlineExceeded` instead of sleeping into a dead
    /// session.
    #[test]
    fn retry_schedule_never_sleeps_past_the_deadline() {
        // An ask that can never fire: the empty store sits at level
        // 0 ∉ [3, 1], so every retry finds the configuration blocked.
        let starved = Agent::ask(
            Constraint::always(WeightedInt).with_label("1"),
            Interval::levels(1u64, 3u64),
            Agent::success(),
        );
        let recovery = RecoveryPolicy {
            guard_deadline: 4,
            max_retries: 3,
            backoff_base: 2,
            deadline: Some(10),
            ..RecoveryPolicy::default()
        };
        let report = ResilientInterpreter::new(Program::new())
            .with_recovery(recovery)
            .run(starved, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(matches!(
            report.report.outcome,
            Outcome::DeadlineExceeded { .. }
        ));
        // Only two of the three budgeted retries ran before the clock
        // hit the deadline.
        assert_eq!(report.retries, 2);
        // The virtual clock stopped exactly at the deadline: the
        // second wait was clamped from 8 to 4.
        assert_eq!(report.report.steps, 10);
        let waits: Vec<usize> = report
            .report
            .trace
            .iter()
            .filter_map(|t| {
                let rest = t.note.strip_prefix("recovery: retry ")?;
                rest.split_whitespace()
                    .nth(2)
                    .and_then(|w| w.split('-').next())
                    .and_then(|w| w.parse().ok())
            })
            .collect();
        assert_eq!(waits, vec![6, 4]);
        // Without the deadline the same plan exhausts all three
        // retries and deadlocks well past step 10.
        let unbounded = ResilientInterpreter::new(Program::new())
            .with_recovery(RecoveryPolicy {
                guard_deadline: 4,
                max_retries: 3,
                backoff_base: 2,
                ..RecoveryPolicy::default()
            })
            .run(
                Agent::ask(
                    Constraint::always(WeightedInt).with_label("1"),
                    Interval::levels(1u64, 3u64),
                    Agent::success(),
                ),
                Store::empty(WeightedInt, doms()),
            )
            .unwrap();
        assert!(matches!(unbounded.report.outcome, Outcome::Deadlock { .. }));
        assert_eq!(unbounded.retries, 3);
        assert!(unbounded.report.steps > 10);
    }

    /// Regression: `max_retries = 80` used to shift `backoff_base`
    /// by up to 79 bits — an overflow panic in debug builds. The
    /// saturated backoff must complete (here: run out of fuel on a
    /// permanently starved ask) without panicking, with every idle
    /// wait capped at [`MAX_RETRY_WAIT`].
    #[test]
    fn saturated_backoff_at_eighty_retries_completes() {
        // An ask whose interval can never be met: the empty store
        // sits at level 0 ∉ [3, 1].
        let starved = Agent::ask(
            Constraint::always(WeightedInt).with_label("1"),
            Interval::levels(1u64, 3u64),
            Agent::success(),
        );
        let recovery = RecoveryPolicy {
            guard_deadline: 1,
            max_retries: 80,
            backoff_base: 2,
            ..RecoveryPolicy::default()
        };
        let report = ResilientInterpreter::new(Program::new())
            .with_recovery(recovery)
            .with_max_steps(usize::MAX)
            .run(starved, Store::empty(WeightedInt, doms()))
            .expect("runs without panicking");
        assert!(!report.is_success());
        assert_eq!(report.retries, 80);
        // Every retry waited at most the cap (plus the deadline).
        for entry in &report.report.trace {
            if let Some(rest) = entry.note.strip_prefix("recovery: retry ") {
                let wait: usize = rest
                    .split_whitespace()
                    .nth(2)
                    .and_then(|w| w.split('-').next())
                    .and_then(|w| w.parse().ok())
                    .expect("note carries the wait");
                assert!(wait <= MAX_RETRY_WAIT);
            }
        }
    }
}
