//! A textual syntax for `nmsccp` programs, close to Fig. 2 of the
//! paper.
//!
//! ```text
//! program  := { clause } agent
//! clause   := name "(" [ vars ] ")" "::" agent "."
//! agent    := choice { "||" choice }
//! choice   := prim { "+" prim }            (branches must be guards)
//! prim     := "success"
//!           | "tell" "(" name ")" [ interval ] prim
//!           | "ask" "(" name ")" [ interval ] prim
//!           | "nask" "(" name ")" [ interval ] prim
//!           | "retract" "(" name ")" [ interval ] prim
//!           | "update" "{" vars "}" "(" name ")" [ interval ] prim
//!           | "exists" var "." prim
//!           | name "(" [ vars ] ")"        (procedure call)
//!           | "(" agent ")"
//! interval := "->" "[" bound "," bound "]"  (lower, upper; omitted = any)
//! bound    := name                          ("bot", "top", or a name
//!                                            bound in the environment)
//! ```
//!
//! Constraints and threshold levels are *named*: the parser resolves
//! them in a [`ParseEnv`] so the textual syntax stays independent of
//! the semiring. Example 1 of the paper reads almost verbatim:
//!
//! ```text
//! tell(c4) tell(sp2) ask(sp1) ->[ten, two] success
//! || tell(c3) tell(sp1) ask(sp2) ->[four, one] success
//! ```

use std::collections::HashMap;
use std::fmt;

use softsoa_core::{Constraint, Var};
use softsoa_semiring::Semiring;

use crate::{Agent, Bound, Guard, Interval, Program};

/// The name environment a program text is parsed against.
#[derive(Debug, Clone)]
pub struct ParseEnv<S: Semiring> {
    semiring: S,
    constraints: HashMap<String, Constraint<S>>,
    levels: HashMap<String, S::Value>,
}

impl<S: Semiring> ParseEnv<S> {
    /// Creates an empty environment over the semiring.
    pub fn new(semiring: S) -> ParseEnv<S> {
        ParseEnv {
            semiring,
            constraints: HashMap::new(),
            levels: HashMap::new(),
        }
    }

    /// Binds a constraint name (builder style). The constraint is also
    /// labelled with the name for readable traces.
    pub fn with_constraint(mut self, name: impl Into<String>, c: Constraint<S>) -> ParseEnv<S> {
        let name = name.into();
        let c = c.with_label(&name);
        self.constraints.insert(name, c);
        self
    }

    /// Binds a threshold-level name (builder style).
    pub fn with_level(mut self, name: impl Into<String>, level: S::Value) -> ParseEnv<S> {
        self.levels.insert(name.into(), level);
        self
    }

    fn constraint(&self, name: &str) -> Option<&Constraint<S>> {
        self.constraints.get(name)
    }

    fn bound(&self, name: &str) -> Option<Bound<S>> {
        match name {
            "bot" => Some(Bound::Level(self.semiring.zero())),
            "top" => Some(Bound::Level(self.semiring.one())),
            _ => self
                .levels
                .get(name)
                .map(|v| Bound::Level(v.clone()))
                .or_else(|| {
                    self.constraints
                        .get(name)
                        .map(|c| Bound::Constraint(c.clone()))
                }),
        }
    }
}

/// A syntax or resolution error, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: usize,
}

impl ParseError {
    /// The byte offset in the input where the error occurred.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a full program `F.A`: clauses followed by an initial agent.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors or names missing from the
/// environment.
pub fn parse_program<S: Semiring>(
    text: &str,
    env: &ParseEnv<S>,
) -> Result<(Program<S>, Agent<S>), ParseError> {
    let mut parser = Parser::new(text, env);
    let result = parser.program()?;
    parser.expect_eof()?;
    Ok(result)
}

/// Parses a single agent (no clause declarations).
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors or names missing from the
/// environment.
pub fn parse_agent<S: Semiring>(text: &str, env: &ParseEnv<S>) -> Result<Agent<S>, ParseError> {
    let mut parser = Parser::new(text, env);
    let agent = parser.agent()?;
    parser.expect_eof()?;
    Ok(agent)
}

struct Parser<'a, S: Semiring> {
    text: &'a str,
    pos: usize,
    env: &'a ParseEnv<S>,
}

impl<'a, S: Semiring> Parser<'a, S> {
    fn new(text: &'a str, env: &'a ParseEnv<S>) -> Parser<'a, S> {
        Parser { text, pos: 0, env }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        let bytes = self.text.as_bytes();
        while self.pos < bytes.len() {
            match bytes[self.pos] {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'#' => {
                    // Line comment.
                    while self.pos < bytes.len() && bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn peek_symbol(&mut self, sym: &str) -> bool {
        self.skip_ws();
        self.text[self.pos..].starts_with(sym)
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if self.peek_symbol(sym) {
            self.pos += sym.len();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{sym}`")))
        }
    }

    fn peek_ident(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let rest = &self.text[self.pos..];
        let mut len = 0;
        for (i, ch) in rest.char_indices() {
            let ok = if i == 0 {
                ch.is_ascii_alphabetic() || ch == '_'
            } else {
                ch.is_ascii_alphanumeric() || ch == '_' || ch == '\''
            };
            if ok {
                len = i + ch.len_utf8();
            } else {
                break;
            }
        }
        if len == 0 {
            None
        } else {
            Some(&rest[..len])
        }
    }

    fn eat_ident(&mut self) -> Option<&'a str> {
        let ident = self.peek_ident()?;
        self.pos += ident.len();
        Some(ident)
    }

    fn expect_ident(&mut self) -> Result<&'a str, ParseError> {
        self.eat_ident()
            .ok_or_else(|| self.error("expected an identifier"))
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos == self.text.len() {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn program(&mut self) -> Result<(Program<S>, Agent<S>), ParseError> {
        let mut program = Program::new();
        // A clause starts with `name(params) ::`; look ahead for `::`.
        loop {
            let save = self.pos;
            if let Some(name) = self.eat_ident() {
                if self.eat_symbol("(") {
                    let params = self.var_list(")")?;
                    if self.eat_symbol("::") {
                        let body = self.agent()?;
                        self.expect_symbol(".")?;
                        program = program.with_clause(name, params, body);
                        continue;
                    }
                }
            }
            self.pos = save;
            break;
        }
        let agent = self.agent()?;
        Ok((program, agent))
    }

    fn agent(&mut self) -> Result<Agent<S>, ParseError> {
        let mut agents = vec![self.choice()?];
        while self.eat_symbol("||") {
            agents.push(self.choice()?);
        }
        Ok(Agent::par_all(agents))
    }

    fn choice(&mut self) -> Result<Agent<S>, ParseError> {
        let first = self.prim()?;
        if !self.peek_symbol("+") {
            return Ok(first);
        }
        let mut guards = self.sum_guards(first)?;
        while self.eat_symbol("+") {
            let next = self.prim()?;
            guards.extend(self.sum_guards(next)?);
        }
        Ok(Agent::sum(guards))
    }

    fn sum_guards(&self, agent: Agent<S>) -> Result<Vec<Guard<S>>, ParseError> {
        match agent {
            Agent::Sum(guards) => Ok(guards),
            _ => Err(self.error("only ask/nask guards can appear in a sum")),
        }
    }

    fn prim(&mut self) -> Result<Agent<S>, ParseError> {
        self.skip_ws();
        if self.eat_symbol("(") {
            let inner = self.agent()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        let ident = self.expect_ident()?;
        match ident {
            "success" => Ok(Agent::success()),
            "tell" | "ask" | "nask" | "retract" => {
                self.expect_symbol("(")?;
                let cname = self.expect_ident()?;
                let c = self
                    .env
                    .constraint(cname)
                    .cloned()
                    .ok_or_else(|| self.error(format!("unknown constraint `{cname}`")))?;
                self.expect_symbol(")")?;
                let interval = self.interval()?;
                let then = self.prim()?;
                Ok(match ident {
                    "tell" => Agent::tell(c, interval, then),
                    "ask" => Agent::ask(c, interval, then),
                    "nask" => Agent::nask(c, interval, then),
                    _ => Agent::retract(c, interval, then),
                })
            }
            "update" => {
                self.expect_symbol("{")?;
                let vars = self.var_list("}")?;
                self.expect_symbol("(")?;
                let cname = self.expect_ident()?;
                let c = self
                    .env
                    .constraint(cname)
                    .cloned()
                    .ok_or_else(|| self.error(format!("unknown constraint `{cname}`")))?;
                self.expect_symbol(")")?;
                let interval = self.interval()?;
                let then = self.prim()?;
                Ok(Agent::update(vars, c, interval, then))
            }
            "exists" => {
                let var = self.expect_ident()?;
                self.expect_symbol(".")?;
                let body = self.prim()?;
                Ok(Agent::hide(var, body))
            }
            name => {
                // A procedure call `name(args)`.
                self.expect_symbol("(")?;
                let args = self.var_list(")")?;
                Ok(Agent::call(name, args))
            }
        }
    }

    fn interval(&mut self) -> Result<Interval<S>, ParseError> {
        if !self.eat_symbol("->") {
            return Ok(Interval::any(&self.env.semiring));
        }
        self.expect_symbol("[")?;
        let lower = self.bound()?;
        self.expect_symbol(",")?;
        let upper = self.bound()?;
        self.expect_symbol("]")?;
        Ok(Interval::new(lower, upper))
    }

    fn bound(&mut self) -> Result<Bound<S>, ParseError> {
        let name = self.expect_ident()?;
        self.env
            .bound(name)
            .ok_or_else(|| self.error(format!("unknown level or constraint `{name}`")))
    }

    fn var_list(&mut self, close: &str) -> Result<Vec<Var>, ParseError> {
        let mut vars = Vec::new();
        if self.eat_symbol(close) {
            return Ok(vars);
        }
        loop {
            vars.push(Var::new(self.expect_ident()?));
            if self.eat_symbol(close) {
                return Ok(vars);
            }
            self.expect_symbol(",")?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interpreter, Outcome, Store};
    use softsoa_core::{Domain, Domains};
    use softsoa_semiring::WeightedInt;

    fn lin(a: u64, b: u64) -> Constraint<WeightedInt> {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
    }

    fn env() -> ParseEnv<WeightedInt> {
        ParseEnv::new(WeightedInt)
            .with_constraint("c1", lin(1, 3))
            .with_constraint("c3", lin(2, 0))
            .with_constraint("c4", lin(1, 5))
            .with_constraint("one", Constraint::always(WeightedInt))
            .with_level("two", 2u64)
            .with_level("four", 4u64)
            .with_level("ten", 10u64)
    }

    fn doms() -> Domains {
        Domains::new().with("x", Domain::ints(0..=10))
    }

    #[test]
    fn parses_success() {
        let a = parse_agent("success", &env()).unwrap();
        assert!(a.is_success());
    }

    #[test]
    fn parses_tell_chain_with_intervals() {
        let a = parse_agent("tell(c4) tell(c3) ->[ten, two] success", &env()).unwrap();
        match a {
            Agent::Tell(action) => {
                assert_eq!(action.constraint().label(), Some("c4"));
                assert!(matches!(*action.then(), Agent::Tell(_)));
            }
            _ => panic!("expected Tell"),
        }
    }

    #[test]
    fn parses_parallel_and_sum() {
        let a = parse_agent(
            "ask(c1) success + nask(c3) success || tell(c4) success",
            &env(),
        )
        .unwrap();
        match a {
            Agent::Par(left, _) => match *left {
                Agent::Sum(guards) => assert_eq!(guards.len(), 2),
                _ => panic!("expected Sum"),
            },
            _ => panic!("expected Par"),
        }
    }

    #[test]
    fn sum_of_non_guards_is_rejected() {
        let err = parse_agent("tell(c4) success + success", &env()).unwrap_err();
        assert!(err.to_string().contains("guards"));
    }

    #[test]
    fn parses_update_exists_and_calls() {
        let text = "p(x) :: update{x}(c3) success . exists x. p(x)";
        let (program, agent) = parse_program(text, &env()).unwrap();
        assert_eq!(program.len(), 1);
        assert!(matches!(agent, Agent::Hide { .. }));
    }

    #[test]
    fn unknown_names_are_errors() {
        assert!(parse_agent("tell(nope) success", &env()).is_err());
        assert!(parse_agent("tell(c4) ->[zzz, top] success", &env()).is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        let a = parse_agent("# a comment\n  success", &env()).unwrap();
        assert!(a.is_success());
    }

    /// Example 1 of the paper, parsed from text and executed: the
    /// negotiation must fail (deadlock at level 5).
    #[test]
    fn example1_from_text() {
        let text = "
            tell(c4) success
            || tell(c3) ask(one) ->[four, two] success
        ";
        let agent = parse_agent(text, &env()).unwrap();
        let report = Interpreter::new(Program::new())
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        match report.outcome {
            Outcome::Deadlock { store, .. } => {
                assert_eq!(store.consistency().unwrap(), 5)
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    /// Example 2 from text: retract(c1) relaxes the store to level 2.
    #[test]
    fn example2_from_text() {
        let text = "
            tell(c4) retract(c1) ->[ten, two] success
            || tell(c3) ask(one) ->[four, two] success
        ";
        let agent = parse_agent(text, &env()).unwrap();
        let report = Interpreter::new(Program::new())
            .with_policy(crate::Policy::Random(3))
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        match report.outcome {
            Outcome::Success { store } => {
                assert_eq!(store.consistency().unwrap(), 2)
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn error_offsets_point_into_the_text() {
        let err = parse_agent("success extra", &env()).unwrap_err();
        assert!(err.offset() >= 7);
    }
}
