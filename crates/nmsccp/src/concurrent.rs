//! Threaded execution of `nmsccp` agents.
//!
//! Two shapes of concurrency, matching the two ways the paper deploys
//! agents:
//!
//! - [`ConcurrentExecutor`] — several agents *sharing one store* (the
//!   broker scenario of Sec. 4: provider and client agents negotiate
//!   on the broker's store). Each agent runs on its own OS thread;
//!   store transitions are serialised through a lock, suspended agents
//!   block on a condition variable and are woken whenever the store
//!   changes, and a global deadlock is detected when every live agent
//!   is waiting.
//! - [`run_sessions`] — many *independent* sessions (one store each)
//!   executed on a thread pool: the broker handling unrelated
//!   negotiations in parallel. This is the configuration measured by
//!   the `nmsccp_throughput` bench (experiment E10).

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softsoa_semiring::{Residuated, Semiring};

use crate::semantics::{enabled, FreshGen, SemanticsError};
use crate::{Agent, Interpreter, Policy, Program, RunReport, Store};

/// The terminal state of one agent under the concurrent executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentOutcome {
    /// The agent reached `success`.
    Success,
    /// The agent was suspended when a global deadlock was declared.
    Deadlock,
    /// The agent exceeded its step budget.
    OutOfFuel,
    /// Another agent hit an error; this one aborted.
    Aborted,
}

/// Per-agent report of a concurrent run.
#[derive(Debug, Clone)]
pub struct AgentReport {
    /// Index of the agent in the input vector.
    pub index: usize,
    /// How the agent ended.
    pub outcome: AgentOutcome,
    /// Transitions this agent executed.
    pub steps: usize,
}

/// The report of a concurrent run over a shared store.
#[derive(Debug, Clone)]
pub struct ConcurrentReport<S: Semiring> {
    /// The final shared store.
    pub store: Store<S>,
    /// One report per input agent, in input order.
    pub agents: Vec<AgentReport>,
}

impl<S: Semiring> ConcurrentReport<S> {
    /// Whether every agent reached `success`.
    pub fn all_succeeded(&self) -> bool {
        self.agents
            .iter()
            .all(|a| a.outcome == AgentOutcome::Success)
    }
}

struct SharedState<S: Semiring> {
    store: Store<S>,
    epoch: u64,
    live: usize,
    waiting: usize,
    deadlocked: bool,
    error: Option<SemanticsError>,
}

struct Shared<S: Semiring> {
    state: Mutex<SharedState<S>>,
    wake: Condvar,
}

/// Runs several agents concurrently over one shared store, one OS
/// thread per agent.
///
/// # Examples
///
/// ```
/// use softsoa_nmsccp::{Agent, ConcurrentExecutor, Interval, Program, Store};
/// use softsoa_core::{Constraint, Domain, Domains};
/// use softsoa_semiring::WeightedInt;
///
/// let doms = Domains::new().with("x", Domain::ints(0..=5));
/// let c = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64)
///     .with_label("c");
/// // One agent tells c; the other waits for it with ask(c).
/// let teller = Agent::tell(c.clone(), Interval::any(&WeightedInt), Agent::success());
/// let asker = Agent::ask(c, Interval::any(&WeightedInt), Agent::success());
/// let report = ConcurrentExecutor::new(Program::new())
///     .run(vec![asker, teller], Store::empty(WeightedInt, doms))?;
/// assert!(report.all_succeeded());
/// # Ok::<(), softsoa_nmsccp::SemanticsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConcurrentExecutor<S: Semiring> {
    program: Program<S>,
    max_steps_per_agent: usize,
    seed: u64,
}

impl<S: Residuated> ConcurrentExecutor<S> {
    /// Creates an executor with a budget of 10 000 steps per agent.
    pub fn new(program: Program<S>) -> ConcurrentExecutor<S> {
        ConcurrentExecutor {
            program,
            max_steps_per_agent: 10_000,
            seed: 0,
        }
    }

    /// Sets the per-agent step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> ConcurrentExecutor<S> {
        self.max_steps_per_agent = max_steps;
        self
    }

    /// Sets the seed for per-thread transition choices.
    pub fn with_seed(mut self, seed: u64) -> ConcurrentExecutor<S> {
        self.seed = seed;
        self
    }

    /// Runs all agents to completion, deadlock or fuel exhaustion.
    ///
    /// # Errors
    ///
    /// Returns the first [`SemanticsError`] raised by any agent
    /// (missing domains, unknown procedures, ...); other agents abort.
    pub fn run(
        &self,
        agents: Vec<Agent<S>>,
        store: Store<S>,
    ) -> Result<ConcurrentReport<S>, SemanticsError> {
        let n = agents.len();
        let shared = Shared {
            state: Mutex::new(SharedState {
                store,
                epoch: 0,
                live: n,
                waiting: 0,
                deadlocked: false,
                error: None,
            }),
            wake: Condvar::new(),
        };

        let mut reports: Vec<AgentReport> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (index, agent) in agents.into_iter().enumerate() {
                let shared = &shared;
                let program = &self.program;
                let max_steps = self.max_steps_per_agent;
                let seed = self.seed;
                handles.push(
                    scope.spawn(move || agent_loop(index, agent, program, shared, max_steps, seed)),
                );
            }
            for handle in handles {
                reports.push(handle.join().expect("agent thread panicked"));
            }
        });
        reports.sort_by_key(|r| r.index);

        let state = shared.state.into_inner();
        if let Some(error) = state.error {
            return Err(error);
        }
        Ok(ConcurrentReport {
            store: state.store,
            agents: reports,
        })
    }
}

fn agent_loop<S: Residuated>(
    index: usize,
    agent: Agent<S>,
    program: &Program<S>,
    shared: &Shared<S>,
    max_steps: usize,
    seed: u64,
) -> AgentReport {
    let mut agent = agent.normalize();
    // Disjoint fresh-variable ranges per thread.
    let mut fresh = FreshGen::with_offset((index as u64 + 1) << 32);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(index as u64));
    let mut steps = 0usize;

    let mut state = shared.state.lock();
    loop {
        if state.error.is_some() {
            finish(&mut state, shared);
            return AgentReport {
                index,
                outcome: AgentOutcome::Aborted,
                steps,
            };
        }
        if state.deadlocked {
            finish(&mut state, shared);
            return AgentReport {
                index,
                outcome: AgentOutcome::Deadlock,
                steps,
            };
        }
        if agent.is_success() {
            finish(&mut state, shared);
            return AgentReport {
                index,
                outcome: AgentOutcome::Success,
                steps,
            };
        }
        if steps >= max_steps {
            finish(&mut state, shared);
            return AgentReport {
                index,
                outcome: AgentOutcome::OutOfFuel,
                steps,
            };
        }

        match enabled(program, &agent, &state.store, &mut fresh) {
            Err(e) => {
                state.error = Some(e);
                shared.wake.notify_all();
                // Keep `live` consistent for any future waiters.
                finish(&mut state, shared);
                return AgentReport {
                    index,
                    outcome: AgentOutcome::Aborted,
                    steps,
                };
            }
            Ok(transitions) if transitions.is_empty() => {
                // Suspended: wait for the store to change. `waiting`
                // counts only agents that found nothing to do at the
                // *current* epoch; every step resets it, so a waiter
                // woken by a store change never counts as stuck until
                // it has re-checked and re-suspended.
                state.waiting += 1;
                if state.waiting == state.live {
                    // Everyone has inspected this store and is waiting:
                    // global deadlock.
                    state.deadlocked = true;
                    shared.wake.notify_all();
                    finish(&mut state, shared);
                    return AgentReport {
                        index,
                        outcome: AgentOutcome::Deadlock,
                        steps,
                    };
                }
                let epoch = state.epoch;
                while state.epoch == epoch && !state.deadlocked && state.error.is_none() {
                    shared.wake.wait(&mut state);
                }
            }
            Ok(transitions) => {
                let pick = rng.random_range(0..transitions.len());
                let chosen = transitions
                    .into_iter()
                    .nth(pick)
                    .expect("pick within range");
                state.store = chosen.store;
                state.epoch += 1;
                state.waiting = 0; // all waiters must re-check
                agent = chosen.agent.normalize();
                steps += 1;
                shared.wake.notify_all();
            }
        }
    }
}

/// Marks this agent as no longer live and re-checks the deadlock
/// condition for the remaining waiters.
fn finish<S: Semiring>(state: &mut SharedState<S>, shared: &Shared<S>) {
    state.live -= 1;
    if state.live > 0 && state.waiting == state.live && !state.deadlocked {
        state.deadlocked = true;
        shared.wake.notify_all();
    }
}

impl FreshGen {
    /// Creates a generator whose counters start at `offset`, so that
    /// several generators produce disjoint fresh names.
    pub fn with_offset(offset: u64) -> FreshGen {
        let mut gen = FreshGen::new();
        gen.advance_to(offset);
        gen
    }
}

/// Runs independent `(agent, store)` sessions, each on its own thread
/// with its own sequential [`Interpreter`].
///
/// This models a broker serving unrelated negotiations concurrently;
/// the sessions share no state, so throughput scales with cores.
///
/// # Errors
///
/// Returns the first [`SemanticsError`] of any session.
pub fn run_sessions<S: Residuated>(
    program: &Program<S>,
    sessions: Vec<(Agent<S>, Store<S>)>,
    seed: u64,
) -> Result<Vec<RunReport<S>>, SemanticsError> {
    let mut out = Vec::with_capacity(sessions.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(sessions.len());
        for (i, (agent, store)) in sessions.into_iter().enumerate() {
            let program = program.clone();
            handles.push(scope.spawn(move || {
                Interpreter::new(program)
                    .with_policy(Policy::Random(seed.wrapping_add(i as u64)))
                    .run(agent, store)
            }));
        }
        for handle in handles {
            out.push(handle.join().expect("session thread panicked"));
        }
    });
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;
    use softsoa_core::{Constraint, Domain, Domains};
    use softsoa_semiring::WeightedInt;

    fn doms() -> Domains {
        Domains::new().with("x", Domain::ints(0..=10))
    }

    fn linear(a: u64, b: u64, name: &str) -> Constraint<WeightedInt> {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
        .with_label(name)
    }

    fn any() -> Interval<WeightedInt> {
        Interval::any(&WeightedInt)
    }

    #[test]
    fn ask_wakes_up_after_tell() {
        let c = linear(1, 1, "c");
        let asker = Agent::ask(c.clone(), any(), Agent::success());
        let teller = Agent::tell(c, any(), Agent::success());
        let report = ConcurrentExecutor::new(Program::new())
            .run(vec![asker, teller], Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.all_succeeded());
        assert_eq!(report.store.consistency().unwrap(), 1);
    }

    #[test]
    fn global_deadlock_is_detected() {
        let c = linear(1, 1, "c");
        let a1 = Agent::ask(c.clone(), any(), Agent::success());
        let a2 = Agent::ask(c, any(), Agent::success());
        let report = ConcurrentExecutor::new(Program::new())
            .run(vec![a1, a2], Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(!report.all_succeeded());
        assert!(report
            .agents
            .iter()
            .all(|a| a.outcome == AgentOutcome::Deadlock));
    }

    #[test]
    fn deadlock_after_partial_success() {
        let c = linear(1, 1, "c");
        let teller = Agent::tell(linear(0, 2, "d"), any(), Agent::success());
        let stuck = Agent::ask(c, any(), Agent::success());
        let report = ConcurrentExecutor::new(Program::new())
            .run(vec![teller, stuck], Store::empty(WeightedInt, doms()))
            .unwrap();
        assert_eq!(report.agents[0].outcome, AgentOutcome::Success);
        assert_eq!(report.agents[1].outcome, AgentOutcome::Deadlock);
    }

    #[test]
    fn example1_negotiation_deadlocks_concurrently() {
        // The concurrent rendition of Example 1: merged policies cost
        // 5 hours; P2's interval [1, 4] can never be satisfied.
        let p1 = Agent::tell(linear(1, 5, "c4"), any(), Agent::success());
        let p2 = Agent::tell(
            linear(2, 0, "c3"),
            any(),
            Agent::ask(
                Constraint::always(WeightedInt).with_label("1"),
                Interval::levels(4u64, 1u64),
                Agent::success(),
            ),
        );
        let report = ConcurrentExecutor::new(Program::new())
            .run(vec![p1, p2], Store::empty(WeightedInt, doms()))
            .unwrap();
        assert_eq!(report.agents[0].outcome, AgentOutcome::Success);
        assert_eq!(report.agents[1].outcome, AgentOutcome::Deadlock);
        assert_eq!(report.store.consistency().unwrap(), 5);
    }

    #[test]
    fn independent_sessions_run_in_parallel() {
        let sessions: Vec<_> = (0..8)
            .map(|i| {
                let agent = Agent::tell(linear(1, i, "c"), any(), Agent::success());
                (agent, Store::empty(WeightedInt, doms()))
            })
            .collect();
        let reports = run_sessions(&Program::new(), sessions, 42).unwrap();
        assert_eq!(reports.len(), 8);
        assert!(reports.iter().all(|r| r.outcome.is_success()));
    }
}
