//! Checked transitions: the consistency intervals of Fig. 3.
//!
//! Every action of the `nmsccp` language is guarded by a *checked
//! transition* `→ᵘₗ` that constrains the store the action would leave
//! behind (or acts upon): the store must be **at least as good as the
//! lower threshold** and **no better than the upper threshold** — "we
//! need a solution as good as `a₁`, but no solution better than `a₂`".
//! Thresholds are either semiring levels (`a₁`, `a₂`) compared against
//! `σ ⇓ ∅`, or whole constraints (`φ₁`, `φ₂`) compared against `σ` in
//! the `⊑` order, giving the four instances C1–C4 of Fig. 3.

use std::fmt;

use softsoa_core::Constraint;
use softsoa_semiring::Semiring;

use crate::{Store, StoreError};

/// One threshold of a checked transition: a semiring level or a
/// constraint.
#[derive(Debug, Clone)]
pub enum Bound<S: Semiring> {
    /// A semiring level `aᵢ`, compared against `σ ⇓ ∅`.
    Level(S::Value),
    /// A constraint `φᵢ`, compared against `σ` in the `⊑` order.
    Constraint(Constraint<S>),
}

/// An error returned when an interval's thresholds are intrinsically
/// contradictory (the parenthesised side conditions of Fig. 3: the
/// lower threshold must not be strictly better than the upper one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidIntervalError(());

impl fmt::Display for InvalidIntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the lower threshold of a checked transition cannot be better than the upper one"
        )
    }
}

impl std::error::Error for InvalidIntervalError {}

/// The consistency interval `→ᵘₗ` of a checked transition (Fig. 3).
///
/// # Examples
///
/// Example 1 of the paper guards `ask` with the interval `[4, 1]`
/// (lower threshold 4 hours, upper threshold 1 hour — in the weighted
/// semiring *fewer hours is better*): the merged policies cost 5 hours
/// even with zero failures, which is worse than the lower threshold,
/// so the check fails and no agreement is reached.
///
/// ```
/// use softsoa_nmsccp::{Interval, Store};
/// use softsoa_core::{Constraint, Domain, Domains};
/// use softsoa_semiring::WeightedInt;
///
/// let doms = Domains::new().with("x", Domain::ints(0..=10));
/// let store = Store::empty(WeightedInt, doms)
///     .tell(&Constraint::unary(WeightedInt, "x", |v| 3 * v.as_int().unwrap() as u64 + 5))?;
/// let interval = Interval::levels(4u64, 1u64); // between 1 and 4 hours
/// assert!(!interval.check(&store)?);     // σ⇓∅ = 5 is outside
/// # Ok::<(), softsoa_nmsccp::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interval<S: Semiring> {
    lower: Bound<S>,
    upper: Bound<S>,
}

impl<S: Semiring> Interval<S> {
    /// Creates an interval from explicit bounds.
    pub fn new(lower: Bound<S>, upper: Bound<S>) -> Interval<S> {
        Interval { lower, upper }
    }

    /// C1: both thresholds are semiring levels (`→^{a₂}_{a₁}`).
    pub fn levels(lower: impl Into<S::Value>, upper: impl Into<S::Value>) -> Interval<S> {
        Interval {
            lower: Bound::Level(lower.into()),
            upper: Bound::Level(upper.into()),
        }
    }

    /// C2: level lower threshold, constraint upper threshold
    /// (`→^{φ₂}_{a₁}`).
    pub fn level_to_constraint(lower: S::Value, upper: Constraint<S>) -> Interval<S> {
        Interval {
            lower: Bound::Level(lower),
            upper: Bound::Constraint(upper),
        }
    }

    /// C3: constraint lower threshold, level upper threshold
    /// (`→^{a₂}_{φ₁}`).
    pub fn constraint_to_level(lower: Constraint<S>, upper: S::Value) -> Interval<S> {
        Interval {
            lower: Bound::Constraint(lower),
            upper: Bound::Level(upper),
        }
    }

    /// C4: both thresholds are constraints (`→^{φ₂}_{φ₁}`).
    pub fn constraints(lower: Constraint<S>, upper: Constraint<S>) -> Interval<S> {
        Interval {
            lower: Bound::Constraint(lower),
            upper: Bound::Constraint(upper),
        }
    }

    /// The always-true interval `→^{1}_{0}` (from the worst level to
    /// the best) — written `→^0_∞` in the paper's weighted examples.
    pub fn any(semiring: &S) -> Interval<S> {
        Interval {
            lower: Bound::Level(semiring.zero()),
            upper: Bound::Level(semiring.one()),
        }
    }

    /// The lower threshold.
    pub fn lower(&self) -> &Bound<S> {
        &self.lower
    }

    /// The upper threshold.
    pub fn upper(&self) -> &Bound<S> {
        &self.upper
    }

    /// Renames a variable inside constraint thresholds (level
    /// thresholds are unaffected). Used when renaming agents for the
    /// hiding rule.
    pub fn rename_var(&self, from: &softsoa_core::Var, to: &softsoa_core::Var) -> Interval<S> {
        let rename_bound = |b: &Bound<S>| match b {
            Bound::Level(v) => Bound::Level(v.clone()),
            Bound::Constraint(c) => Bound::Constraint(c.rename(from, to)),
        };
        Interval {
            lower: rename_bound(&self.lower),
            upper: rename_bound(&self.upper),
        }
    }

    /// The `check` function of Fig. 3 applied to a store.
    ///
    /// - level lower `a₁`: requires `¬(σ⇓∅ <S a₁)` — the store is not
    ///   strictly worse than `a₁`;
    /// - level upper `a₂`: requires `¬(σ⇓∅ >S a₂)` — the store is not
    ///   strictly better than `a₂`;
    /// - constraint lower `φ₁`: requires `φ₁ ⊑ σ`;
    /// - constraint upper `φ₂`: requires `σ ⊑ φ₂`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingDomain`] if a support variable has
    /// no domain.
    pub fn check(&self, store: &Store<S>) -> Result<bool, StoreError> {
        let semiring = store.semiring().clone();
        let lower_ok = match &self.lower {
            Bound::Level(a1) => !semiring.lt(&store.consistency()?, a1),
            Bound::Constraint(phi1) => store.geq(phi1)?,
        };
        if !lower_ok {
            return Ok(false);
        }
        let upper_ok = match &self.upper {
            Bound::Level(a2) => !semiring.lt(a2, &store.consistency()?),
            Bound::Constraint(phi2) => store.leq(phi2)?,
        };
        Ok(upper_ok)
    }

    /// Validates the parenthesised side conditions of Fig. 3: the
    /// lower threshold must not be strictly better than the upper one.
    ///
    /// Constraint thresholds are compared through their consistency
    /// level over `domains` (C2/C3) or pointwise (C4).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIntervalError`] for a contradictory interval,
    /// or [`StoreError::MissingDomain`] if a threshold constraint
    /// mentions a variable without a domain.
    pub fn validate(
        &self,
        semiring: &S,
        domains: &softsoa_core::Domains,
    ) -> Result<(), ValidationError> {
        let bad = match (&self.lower, &self.upper) {
            // C1: a1 ≯ a2
            (Bound::Level(a1), Bound::Level(a2)) => semiring.lt(a2, a1),
            // C2: a1 ≯ φ2⇓∅
            (Bound::Level(a1), Bound::Constraint(phi2)) => {
                let level = phi2.consistency(domains).map_err(StoreError::from)?;
                semiring.lt(&level, a1)
            }
            // C3: φ1⇓∅ ≯ a2
            (Bound::Constraint(phi1), Bound::Level(a2)) => {
                let level = phi1.consistency(domains).map_err(StoreError::from)?;
                semiring.lt(a2, &level)
            }
            // C4: φ1 ⊑ φ2
            (Bound::Constraint(phi1), Bound::Constraint(phi2)) => {
                !phi1.leq(phi2, domains).map_err(StoreError::from)?
            }
        };
        if bad {
            Err(ValidationError::Invalid(InvalidIntervalError(())))
        } else {
            Ok(())
        }
    }
}

/// An error produced while validating an interval.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// The interval is intrinsically contradictory.
    Invalid(InvalidIntervalError),
    /// A threshold constraint mentions a variable without a domain.
    Store(StoreError),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::Invalid(e) => write!(f, "{e}"),
            ValidationError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<StoreError> for ValidationError {
    fn from(e: StoreError) -> ValidationError {
        ValidationError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_core::{Constraint, Domain, Domains};
    use softsoa_semiring::WeightedInt;

    fn store_with_level(b: u64) -> Store<WeightedInt> {
        let doms = Domains::new().with("x", Domain::ints(0..=10));
        Store::empty(WeightedInt, doms)
            .tell(&Constraint::unary(WeightedInt, "x", move |v| {
                v.as_int().unwrap() as u64 + b
            }))
            .unwrap()
    }

    #[test]
    fn c1_level_interval() {
        // Weighted: cost 5 store; interval between 1 and 4 hours fails,
        // between 1 and 10 succeeds.
        let store = store_with_level(5); // σ⇓∅ = 5
        assert!(!Interval::levels(4u64, 1u64).check(&store).unwrap());
        assert!(Interval::levels(10u64, 1u64).check(&store).unwrap());
        // Strictly better than the upper cap also fails:
        assert!(!Interval::levels(10u64, 6u64).check(&store).unwrap());
    }

    #[test]
    fn any_interval_always_passes() {
        let store = store_with_level(7);
        assert!(Interval::any(&WeightedInt).check(&store).unwrap());
    }

    #[test]
    fn c2_constraint_upper() {
        let store = store_with_level(5); // σ = x + 5
        let weaker = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64);
        // σ ⊑ (x) holds: x + 5 is pointwise worse than x.
        let iv = Interval::level_to_constraint(u64::MAX, weaker);
        assert!(iv.check(&store).unwrap());
        let stronger = Constraint::unary(WeightedInt, "x", |v| 2 * v.as_int().unwrap() as u64 + 9);
        let iv = Interval::level_to_constraint(u64::MAX, stronger);
        assert!(!iv.check(&store).unwrap());
    }

    #[test]
    fn c3_constraint_lower() {
        let store = store_with_level(5); // σ = x + 5
                                         // φ1 ⊑ σ requires φ1 pointwise worse than the store.
        let phi1 = Constraint::unary(WeightedInt, "x", |v| 2 * v.as_int().unwrap() as u64 + 9);
        let iv = Interval::constraint_to_level(phi1, 0u64);
        assert!(iv.check(&store).unwrap());
        let phi_bad = Constraint::unary(WeightedInt, "x", |_| 0u64);
        let iv = Interval::constraint_to_level(phi_bad, 0u64);
        assert!(!iv.check(&store).unwrap());
    }

    #[test]
    fn c4_constraint_bounds() {
        let store = store_with_level(5);
        let worse = Constraint::unary(WeightedInt, "x", |v| 3 * v.as_int().unwrap() as u64 + 9);
        let better = Constraint::unary(WeightedInt, "x", |_| 0u64);
        let iv = Interval::constraints(worse.clone(), better.clone());
        assert!(iv.check(&store).unwrap());
        // Swapped bounds fail the check.
        let iv = Interval::constraints(better, worse);
        assert!(!iv.check(&store).unwrap());
    }

    #[test]
    fn validation_catches_contradictions() {
        let doms = Domains::new().with("x", Domain::ints(0..=10));
        // Weighted: lower 1 hour is *better* than upper 4 hours → invalid.
        let iv: Interval<WeightedInt> = Interval::levels(1u64, 4u64);
        assert!(matches!(
            iv.validate(&WeightedInt, &doms),
            Err(ValidationError::Invalid(_))
        ));
        let ok: Interval<WeightedInt> = Interval::levels(4u64, 1u64);
        assert!(ok.validate(&WeightedInt, &doms).is_ok());
    }
}
