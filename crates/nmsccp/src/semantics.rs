//! The structural operational semantics of `nmsccp` (Fig. 4).
//!
//! [`enabled`] computes every transition a configuration `⟨A, σ⟩` can
//! take, labelled with the rule (R1–R10) that justifies it. The
//! [`Interpreter`](crate::Interpreter) and the concurrent executor are
//! thin drivers around this relation.

use std::fmt;

use softsoa_core::Var;
use softsoa_semiring::{Residuated, Semiring};

use crate::{Agent, GuardKind, Program, Store, StoreError};

/// The transition rules of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// R1: `tell(c) ▷ A`.
    Tell,
    /// R2: `ask(c) ▷ A`.
    Ask,
    /// R6: `nask(c) ▷ A`.
    Nask,
    /// R7: `retract(c) ▷ A`.
    Retract,
    /// R8: `update_X(c) ▷ A`.
    Update,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Rule::Tell => "R1 tell",
            Rule::Ask => "R2 ask",
            Rule::Nask => "R6 nask",
            Rule::Retract => "R7 retract",
            Rule::Update => "R8 update",
        };
        f.write_str(text)
    }
}

/// One enabled transition of a configuration `⟨A, σ⟩`.
#[derive(Debug, Clone)]
pub struct Transition<S: Semiring> {
    /// The agent after the step.
    pub agent: Agent<S>,
    /// The store after the step.
    pub store: Store<S>,
    /// The basic rule performing the step (parallel composition,
    /// nondeterminism, hiding and procedure calls are contexts, not
    /// steps of their own).
    pub rule: Rule,
    /// A human-readable description of the step.
    pub note: String,
}

/// An error produced while computing the transition relation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SemanticsError {
    /// A store operation failed (missing domain).
    Store(StoreError),
    /// A call names a procedure the program does not declare.
    UnknownProcedure(String),
    /// A call's argument count differs from the declaration's.
    ArityMismatch {
        /// The procedure name.
        name: String,
        /// Number of formal parameters declared.
        expected: usize,
        /// Number of actual arguments supplied.
        found: usize,
    },
    /// Unfolding procedure calls exceeded the recursion limit without
    /// reaching an action (e.g. `p :: p`).
    RecursionLimit,
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::Store(e) => write!(f, "{e}"),
            SemanticsError::UnknownProcedure(name) => {
                write!(f, "unknown procedure `{name}`")
            }
            SemanticsError::ArityMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "procedure `{name}` expects {expected} arguments, got {found}"
            ),
            SemanticsError::RecursionLimit => {
                write!(f, "procedure unfolding exceeded the recursion limit")
            }
        }
    }
}

impl std::error::Error for SemanticsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SemanticsError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for SemanticsError {
    fn from(e: StoreError) -> SemanticsError {
        SemanticsError::Store(e)
    }
}

/// A generator of fresh variables for the hiding rule (R9).
#[derive(Debug, Clone, Default)]
pub struct FreshGen {
    counter: u64,
}

impl FreshGen {
    /// Creates a generator starting at zero.
    pub fn new() -> FreshGen {
        FreshGen::default()
    }

    /// Returns a fresh variable derived from `base`.
    pub fn next(&mut self, base: &Var) -> Var {
        self.counter += 1;
        base.fresh(self.counter)
    }

    /// Advances the internal counter to at least `n` (used to give
    /// concurrent executors disjoint fresh-name ranges).
    pub fn advance_to(&mut self, n: u64) {
        self.counter = self.counter.max(n);
    }
}

const CALL_UNFOLD_LIMIT: usize = 64;

/// Computes every enabled transition of `⟨agent, store⟩` under
/// `program` (the relation `→` of Fig. 4).
///
/// An empty result with a non-`success` agent means the configuration
/// is *suspended*: it may become enabled again after another agent
/// changes the store, or it is deadlocked if no other agent can.
///
/// # Errors
///
/// Returns [`SemanticsError`] on missing domains, unknown procedures,
/// arity mismatches, or unproductive recursion.
pub fn enabled<S: Residuated>(
    program: &Program<S>,
    agent: &Agent<S>,
    store: &Store<S>,
    fresh: &mut FreshGen,
) -> Result<Vec<Transition<S>>, SemanticsError> {
    enabled_rec(program, agent, store, fresh, 0)
}

fn enabled_rec<S: Residuated>(
    program: &Program<S>,
    agent: &Agent<S>,
    store: &Store<S>,
    fresh: &mut FreshGen,
    depth: usize,
) -> Result<Vec<Transition<S>>, SemanticsError> {
    if depth > CALL_UNFOLD_LIMIT {
        return Err(SemanticsError::RecursionLimit);
    }
    match agent {
        Agent::Success => Ok(Vec::new()),

        // R1: the check is evaluated on the prospective store σ ⊗ c.
        Agent::Tell(action) => {
            let next = store.tell(action.constraint())?;
            if action.check().check(&next)? {
                Ok(vec![Transition {
                    agent: (*action.then()).clone(),
                    store: next,
                    rule: Rule::Tell,
                    note: format!("tell({})", label(action.constraint())),
                }])
            } else {
                Ok(Vec::new())
            }
        }

        // R7: requires σ ⊑ c; the check is evaluated on σ ÷ c.
        Agent::Retract(action) => {
            if !store.entails(action.constraint())? {
                return Ok(Vec::new());
            }
            let next = store.retract(action.constraint())?;
            if action.check().check(&next)? {
                Ok(vec![Transition {
                    agent: (*action.then()).clone(),
                    store: next,
                    rule: Rule::Retract,
                    note: format!("retract({})", label(action.constraint())),
                }])
            } else {
                Ok(Vec::new())
            }
        }

        // R8: transactional removal of X plus tell; check on the result.
        Agent::Update { vars, action } => {
            let next = store.update(vars, action.constraint())?;
            if action.check().check(&next)? {
                Ok(vec![Transition {
                    agent: (*action.then()).clone(),
                    store: next,
                    rule: Rule::Update,
                    note: format!("update({})", label(action.constraint())),
                }])
            } else {
                Ok(Vec::new())
            }
        }

        // R2/R5/R6: every enabled guard is one nondeterministic branch.
        Agent::Sum(guards) => {
            let mut out = Vec::new();
            for guard in guards {
                let entailed = store.entails(&guard.constraint)?;
                let (wanted, rule, op) = match guard.kind {
                    GuardKind::Ask => (true, Rule::Ask, "ask"),
                    GuardKind::Nask => (false, Rule::Nask, "nask"),
                };
                if entailed == wanted && guard.check.check(store)? {
                    out.push(Transition {
                        agent: guard.then.clone(),
                        store: store.clone(),
                        rule,
                        note: format!("{op}({})", label(&guard.constraint)),
                    });
                }
            }
            Ok(out)
        }

        // R3/R4: interleaving; a branch stepping to success dissolves.
        Agent::Par(a, b) => {
            let mut out = Vec::new();
            for t in enabled_rec(program, a, store, fresh, depth)? {
                let agent = if t.agent.is_success() {
                    (**b).clone()
                } else {
                    Agent::par(t.agent, (**b).clone())
                };
                out.push(Transition { agent, ..t });
            }
            for t in enabled_rec(program, b, store, fresh, depth)? {
                let agent = if t.agent.is_success() {
                    (**a).clone()
                } else {
                    Agent::par((**a).clone(), t.agent)
                };
                out.push(Transition { agent, ..t });
            }
            Ok(out)
        }

        // R9: rename the bound variable to a fresh one (with the same
        // domain) and step the body.
        Agent::Hide { var, body } => {
            let domain = store.domains().get(var).map_err(StoreError::from)?.clone();
            let y = fresh.next(var);
            let mut next_store = store.clone();
            next_store.declare(y.clone(), domain);
            let renamed = body.rename_var(var, &y);
            enabled_rec(program, &renamed, &next_store, fresh, depth + 1)
        }

        // R10: unfold the declaration with parameter passing.
        Agent::Call { name, args } => {
            let clause = program
                .clause(name)
                .ok_or_else(|| SemanticsError::UnknownProcedure(name.clone()))?;
            if clause.params().len() != args.len() {
                return Err(SemanticsError::ArityMismatch {
                    name: name.clone(),
                    expected: clause.params().len(),
                    found: args.len(),
                });
            }
            // Two-phase renaming (formals → fresh temporaries →
            // actuals) so that swapped arguments, e.g. p(y, x) for
            // p(x, y), substitute correctly.
            let mut body = clause.body().clone();
            let temps: Vec<Var> = clause.params().iter().map(|p| fresh.next(p)).collect();
            for (formal, temp) in clause.params().iter().zip(&temps) {
                body = body.rename_var(formal, temp);
            }
            for (temp, actual) in temps.iter().zip(args) {
                body = body.rename_var(temp, actual);
            }
            enabled_rec(program, &body, store, fresh, depth + 1)
        }
    }
}

fn label<S: Semiring>(c: &softsoa_core::Constraint<S>) -> String {
    c.label().map_or_else(|| "c".to_string(), str::to_string)
}

impl<S: Semiring> Agent<S> {
    /// Structurally simplifies the agent by dissolving terminated
    /// parallel branches: `success ‖ A ≡ A`.
    pub fn normalize(self) -> Agent<S> {
        match self {
            Agent::Par(a, b) => {
                let a = a.normalize();
                let b = b.normalize();
                match (a.is_success(), b.is_success()) {
                    (true, _) => b,
                    (_, true) => a,
                    _ => Agent::par(a, b),
                }
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;
    use softsoa_core::{Constraint, Domain, Domains};
    use softsoa_semiring::WeightedInt;

    fn store() -> Store<WeightedInt> {
        Store::empty(WeightedInt, Domains::new().with("x", Domain::ints(0..=10)))
    }

    fn linear(a: u64, b: u64, name: &str) -> Constraint<WeightedInt> {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
        .with_label(name)
    }

    fn prog() -> Program<WeightedInt> {
        Program::new()
    }

    #[test]
    fn tell_is_enabled_within_interval() {
        let agent = Agent::tell(
            linear(1, 5, "c4"),
            Interval::levels(10u64, 0u64),
            Agent::success(),
        );
        let ts = enabled(&prog(), &agent, &store(), &mut FreshGen::new()).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].rule, Rule::Tell);
        assert_eq!(ts[0].store.consistency().unwrap(), 5);
    }

    #[test]
    fn tell_is_disabled_outside_interval() {
        // The prospective store has level 5, worse than the floor 4.
        let agent = Agent::tell(
            linear(1, 5, "c4"),
            Interval::levels(4u64, 1u64),
            Agent::success(),
        );
        let ts = enabled(&prog(), &agent, &store(), &mut FreshGen::new()).unwrap();
        assert!(ts.is_empty());
    }

    #[test]
    fn ask_requires_entailment() {
        let base = store().tell(&linear(2, 2, "c")).unwrap();
        let weaker = linear(1, 1, "w");
        let ask = Agent::ask(
            weaker.clone(),
            Interval::any(&WeightedInt),
            Agent::success(),
        );
        assert_eq!(
            enabled(&prog(), &ask, &base, &mut FreshGen::new())
                .unwrap()
                .len(),
            1
        );
        // nask of the same constraint is disabled...
        let nask = Agent::nask(weaker, Interval::any(&WeightedInt), Agent::success());
        assert!(enabled(&prog(), &nask, &base, &mut FreshGen::new())
            .unwrap()
            .is_empty());
        // ...and vice versa for a non-entailed constraint.
        let stronger = linear(3, 3, "s");
        let nask2 = Agent::nask(stronger, Interval::any(&WeightedInt), Agent::success());
        assert_eq!(
            enabled(&prog(), &nask2, &base, &mut FreshGen::new())
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn sum_collects_all_enabled_branches() {
        let base = store().tell(&linear(1, 1, "c")).unwrap();
        let agent = Agent::sum([
            crate::Guard::ask(
                linear(1, 0, "e"),
                Interval::any(&WeightedInt),
                Agent::success(),
            ),
            crate::Guard::nask(
                linear(9, 9, "n"),
                Interval::any(&WeightedInt),
                Agent::success(),
            ),
        ]);
        let ts = enabled(&prog(), &agent, &base, &mut FreshGen::new()).unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn parallel_interleaves_and_dissolves_success() {
        let a = Agent::tell(
            linear(0, 1, "a"),
            Interval::any(&WeightedInt),
            Agent::success(),
        );
        let b = Agent::tell(
            linear(0, 2, "b"),
            Interval::any(&WeightedInt),
            Agent::success(),
        );
        let ts = enabled(&prog(), &Agent::par(a, b), &store(), &mut FreshGen::new()).unwrap();
        assert_eq!(ts.len(), 2);
        // Each transition leaves the *other* branch, not a Par wrapper.
        assert!(ts.iter().all(|t| matches!(t.agent, Agent::Tell(_))));
    }

    #[test]
    fn retract_disabled_when_not_entailed() {
        let agent = Agent::retract(
            linear(1, 3, "c1"),
            Interval::any(&WeightedInt),
            Agent::success(),
        );
        // Empty store entails only weaker-than-1̄ constraints... σ = 1̄
        // entails nothing that charges a positive cost, so retract is
        // suspended rather than an error.
        let ts = enabled(&prog(), &agent, &store(), &mut FreshGen::new()).unwrap();
        assert!(ts.is_empty());
    }

    #[test]
    fn hide_steps_with_fresh_variable() {
        let body = Agent::tell(
            linear(1, 0, "c"),
            Interval::any(&WeightedInt),
            Agent::success(),
        );
        let agent = Agent::hide("x", body);
        let ts = enabled(&prog(), &agent, &store(), &mut FreshGen::new()).unwrap();
        assert_eq!(ts.len(), 1);
        // The told constraint ranges over a fresh variable, not x.
        let sigma_scope = ts[0].store.sigma().scope().to_vec();
        assert!(!sigma_scope.contains(&Var::new("x")));
        assert_eq!(sigma_scope.len(), 1);
        assert!(sigma_scope[0].name().starts_with("x'"));
    }

    #[test]
    fn call_unfolds_with_parameter_passing() {
        let program: Program<WeightedInt> = Program::new().with_clause(
            "p",
            [Var::new("u")],
            Agent::tell(
                Constraint::unary(WeightedInt, "u", |v| v.as_int().unwrap() as u64)
                    .with_label("cu"),
                Interval::any(&WeightedInt),
                Agent::success(),
            ),
        );
        let call = Agent::call("p", [Var::new("x")]);
        let ts = enabled(&program, &call, &store(), &mut FreshGen::new()).unwrap();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].store.sigma().scope(), &[Var::new("x")]);
    }

    #[test]
    fn call_swapped_arguments() {
        // p(u, w) :: tell(c(u, w)); calling p(y, x) must swap correctly.
        let c = Constraint::binary(WeightedInt, "u", "w", |a, b| {
            (10 * a.as_int().unwrap() + b.as_int().unwrap()) as u64
        });
        let program: Program<WeightedInt> = Program::new().with_clause(
            "p",
            [Var::new("u"), Var::new("w")],
            Agent::tell(c, Interval::any(&WeightedInt), Agent::success()),
        );
        let doms = Domains::new()
            .with("x", Domain::ints(0..=3))
            .with("y", Domain::ints(0..=3));
        let st = Store::empty(WeightedInt, doms);
        let call = Agent::call("p", [Var::new("y"), Var::new("x")]);
        let ts = enabled(&program, &call, &st, &mut FreshGen::new()).unwrap();
        assert_eq!(ts.len(), 1);
        // c(u=y, w=x): at (x=1, y=2) the level must be 10·2 + 1 = 21.
        let eta = softsoa_core::Assignment::new().bind("x", 1).bind("y", 2);
        assert_eq!(ts[0].store.sigma().eval(&eta), 21);
    }

    #[test]
    fn unknown_procedure_is_an_error() {
        let call: Agent<WeightedInt> = Agent::call("missing", []);
        let err = enabled(&prog(), &call, &store(), &mut FreshGen::new()).unwrap_err();
        assert!(matches!(err, SemanticsError::UnknownProcedure(_)));
    }

    #[test]
    fn unproductive_recursion_hits_the_limit() {
        let program: Program<WeightedInt> =
            Program::new().with_clause("p", [], Agent::call("p", []));
        let err = enabled(
            &program,
            &Agent::call("p", []),
            &store(),
            &mut FreshGen::new(),
        )
        .unwrap_err();
        assert_eq!(err, SemanticsError::RecursionLimit);
    }

    #[test]
    fn normalize_dissolves_success() {
        let a: Agent<WeightedInt> = Agent::par(
            Agent::success(),
            Agent::par(Agent::success(), Agent::success()),
        );
        assert!(a.normalize().is_success());
    }
}
