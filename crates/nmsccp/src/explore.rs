//! Bounded exploration of the `nmsccp` transition system.
//!
//! The interpreter resolves the semantics' nondeterminism with one
//! policy; the [`Explorer`] instead walks **every** schedule (up to
//! configurable bounds), turning the operational semantics of Fig. 4
//! into a model checker for negotiation questions the paper's broker
//! would ask before signing anything:
//!
//! - *possibility* — is there **some** schedule under which all
//!   parties reach `success`?
//! - *guarantee* — does **every** maximal schedule reach `success`
//!   (no deadlock and no livelock within the bound)?
//!
//! Configurations are deduplicated by a canonical key (agent structure
//! plus the store's extensional table), so commuting interleavings are
//! explored once.

use std::collections::{HashMap, HashSet, VecDeque};

use softsoa_semiring::{Residuated, Semiring};

use crate::semantics::{enabled, FreshGen, SemanticsError};
use crate::{Agent, Program, Store};

/// The verdicts of a bounded exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct configurations visited.
    pub configurations: usize,
    /// Transitions traversed.
    pub transitions: usize,
    /// Whether some schedule reaches `success`.
    pub success_reachable: bool,
    /// Whether some schedule reaches a deadlock (suspension with no
    /// enabled transition).
    pub deadlock_reachable: bool,
    /// Whether every explored maximal path ends in `success`. Only
    /// meaningful when the exploration is complete (`!truncated`).
    pub always_succeeds: bool,
    /// Whether a bound was hit before the state space was exhausted;
    /// when `true`, negative answers ("not reachable") are not
    /// conclusive.
    pub truncated: bool,
}

/// A breadth-first explorer of all schedules of a configuration.
///
/// # Examples
///
/// The paper's Example 1 can never succeed — under *any* schedule —
/// while Example 2 succeeds under *every* schedule:
///
/// ```
/// use softsoa_core::{Constraint, Domain, Domains};
/// use softsoa_nmsccp::{parse_agent, Explorer, ParseEnv, Program, Store};
/// use softsoa_semiring::WeightedInt;
///
/// let lin = |a: u64, b: u64| Constraint::unary(WeightedInt, "x", move |v| {
///     a * v.as_int().unwrap() as u64 + b
/// });
/// let env = ParseEnv::new(WeightedInt)
///     .with_constraint("c1", lin(1, 3))
///     .with_constraint("c3", lin(2, 0))
///     .with_constraint("c4", lin(1, 5))
///     .with_constraint("one", Constraint::always(WeightedInt))
///     .with_level("two", 2u64).with_level("four", 4u64).with_level("ten", 10u64);
/// let store = || Store::empty(WeightedInt,
///     Domains::new().with("x", Domain::ints(0..=10)));
///
/// let explorer = Explorer::new(Program::new());
/// let ex1 = parse_agent(
///     "tell(c4) success || tell(c3) ask(one) ->[four, two] success", &env)?;
/// let verdict = explorer.explore(ex1, store())?;
/// assert!(!verdict.success_reachable && verdict.deadlock_reachable);
///
/// let ex2 = parse_agent(
///     "tell(c4) retract(c1) ->[ten, two] success \
///      || tell(c3) ask(one) ->[four, two] success", &env)?;
/// let verdict = explorer.explore(ex2, store())?;
/// assert!(verdict.success_reachable && verdict.always_succeeds);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Explorer<S: Semiring> {
    program: Program<S>,
    max_configurations: usize,
    max_depth: usize,
}

impl<S: Residuated> Explorer<S> {
    /// Creates an explorer bounded at 10 000 configurations and depth
    /// 256.
    pub fn new(program: Program<S>) -> Explorer<S> {
        Explorer {
            program,
            max_configurations: 10_000,
            max_depth: 256,
        }
    }

    /// Sets the configuration bound.
    pub fn with_max_configurations(mut self, bound: usize) -> Explorer<S> {
        self.max_configurations = bound;
        self
    }

    /// Sets the depth bound.
    pub fn with_max_depth(mut self, bound: usize) -> Explorer<S> {
        self.max_depth = bound;
        self
    }

    /// Explores every schedule of `⟨agent, store⟩` breadth-first.
    ///
    /// # Errors
    ///
    /// Returns [`SemanticsError`] if any configuration's transitions
    /// cannot be computed (missing domains, unknown procedures, ...).
    pub fn explore(&self, agent: Agent<S>, store: Store<S>) -> Result<Exploration, SemanticsError> {
        let mut fresh = FreshGen::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut queue: VecDeque<(Agent<S>, Store<S>, usize)> = VecDeque::new();
        let mut result = Exploration {
            configurations: 0,
            transitions: 0,
            success_reachable: false,
            deadlock_reachable: false,
            always_succeeds: true,
            truncated: false,
        };

        let agent = agent.normalize();
        seen.insert(config_key(&agent, &store)?);
        queue.push_back((agent, store, 0));

        while let Some((agent, store, depth)) = queue.pop_front() {
            result.configurations += 1;
            if agent.is_success() {
                result.success_reachable = true;
                continue;
            }
            if depth >= self.max_depth {
                result.truncated = true;
                result.always_succeeds = false;
                continue;
            }
            let transitions = enabled(&self.program, &agent, &store, &mut fresh)?;
            if transitions.is_empty() {
                result.deadlock_reachable = true;
                result.always_succeeds = false;
                continue;
            }
            for t in transitions {
                result.transitions += 1;
                let next = t.agent.normalize();
                let key = config_key(&next, &t.store)?;
                if seen.contains(&key) {
                    continue;
                }
                if seen.len() >= self.max_configurations {
                    result.truncated = true;
                    result.always_succeeds = false;
                    continue;
                }
                seen.insert(key);
                queue.push_back((next, t.store, depth + 1));
            }
        }
        Ok(result)
    }
}

/// A canonical key for a configuration: the agent's display form plus
/// the store's extensional content over its support.
///
/// Hiding introduces fresh variable *names*, so configurations that
/// differ only in the numbering of fresh variables get distinct keys —
/// the exploration stays sound (it may only visit more states, never
/// fewer).
fn config_key<S: Semiring>(agent: &Agent<S>, store: &Store<S>) -> Result<String, SemanticsError> {
    use std::fmt::Write as _;
    let mut key = agent.to_string();
    key.push('|');
    let sigma = store.sigma();
    let tuples = store
        .domains()
        .tuples(sigma.scope())
        .map_err(crate::StoreError::from)?;
    for tuple in tuples {
        let level = sigma.eval_tuple(&tuple);
        let _ = write!(key, "{level:?};");
    }
    Ok(key)
}

/// Summary statistics of exploring many scenarios (used by tooling and
/// tests that sweep scenario families).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExplorationStats {
    /// Scenarios where success is possible.
    pub possible: usize,
    /// Scenarios where success is guaranteed.
    pub guaranteed: usize,
    /// Scenarios explored.
    pub total: usize,
}

impl ExplorationStats {
    /// Folds one exploration into the stats.
    pub fn record(&mut self, e: &Exploration) {
        self.total += 1;
        if e.success_reachable {
            self.possible += 1;
        }
        if e.always_succeeds && !e.truncated {
            self.guaranteed += 1;
        }
    }
}

/// A private map alias kept out of the public API.
#[allow(dead_code)]
type ConfigMap<S> = HashMap<String, (Agent<S>, Store<S>)>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Guard, Interval};
    use softsoa_core::{Constraint, Domain, Domains, Var};
    use softsoa_semiring::WeightedInt;

    fn doms() -> Domains {
        Domains::new().with("x", Domain::ints(0..=10))
    }

    fn store() -> Store<WeightedInt> {
        Store::empty(WeightedInt, doms())
    }

    fn lin(a: u64, b: u64, name: &str) -> Constraint<WeightedInt> {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
        .with_label(name)
    }

    fn any() -> Interval<WeightedInt> {
        Interval::any(&WeightedInt)
    }

    #[test]
    fn example1_is_impossible_example2_is_guaranteed() {
        let explorer = Explorer::new(Program::new());
        // Example 1.
        let e1 = Agent::par(
            Agent::tell(lin(1, 5, "c4"), any(), Agent::success()),
            Agent::tell(
                lin(2, 0, "c3"),
                any(),
                Agent::ask(
                    Constraint::always(WeightedInt),
                    Interval::levels(4u64, 1u64),
                    Agent::success(),
                ),
            ),
        );
        let v1 = explorer.explore(e1, store()).unwrap();
        assert!(!v1.success_reachable);
        assert!(v1.deadlock_reachable);
        assert!(!v1.truncated);

        // Example 2.
        let e2 = Agent::par(
            Agent::tell(
                lin(1, 5, "c4"),
                any(),
                Agent::retract(
                    lin(1, 3, "c1"),
                    Interval::levels(10u64, 2u64),
                    Agent::success(),
                ),
            ),
            Agent::tell(
                lin(2, 0, "c3"),
                any(),
                Agent::ask(
                    Constraint::always(WeightedInt),
                    Interval::levels(4u64, 1u64),
                    Agent::success(),
                ),
            ),
        );
        let v2 = explorer.explore(e2, store()).unwrap();
        assert!(v2.success_reachable);
        assert!(v2.always_succeeds, "{v2:?}");
        assert!(!v2.deadlock_reachable);
    }

    #[test]
    fn schedule_dependent_success_is_detected() {
        // A race: the asker needs the store at exactly level 1, but a
        // second teller can push it to 2 first. Success is possible
        // (ask before the second tell) but not guaranteed.
        let asker = Agent::ask(
            Constraint::always(WeightedInt),
            Interval::levels(1u64, 1u64),
            Agent::success(),
        );
        let first = Agent::tell(lin(0, 1, "one"), any(), Agent::success());
        let second = Agent::tell(lin(0, 1, "one-more"), any(), Agent::success());
        let agent = Agent::par(first, Agent::par(asker, second));
        let v = Explorer::new(Program::new())
            .explore(agent, store())
            .unwrap();
        assert!(v.success_reachable);
        assert!(!v.always_succeeds);
        assert!(v.deadlock_reachable);
    }

    #[test]
    fn nondeterministic_sums_fan_out() {
        let agent = Agent::sum([
            Guard::nask(
                lin(1, 1, "a"),
                any(),
                Agent::tell(lin(0, 1, "ta"), any(), Agent::success()),
            ),
            Guard::nask(
                lin(2, 2, "b"),
                any(),
                Agent::tell(lin(0, 2, "tb"), any(), Agent::success()),
            ),
        ]);
        let v = Explorer::new(Program::new())
            .explore(agent, store())
            .unwrap();
        assert!(v.success_reachable);
        assert!(v.always_succeeds);
        // Both branches and both final stores are distinct configs.
        assert!(v.configurations >= 4, "{v:?}");
    }

    #[test]
    fn truncation_is_reported() {
        // An unbounded livelock: p :: tell(one-more) p.
        let program: Program<WeightedInt> = Program::new().with_clause(
            "p",
            [Var::new("x")],
            Agent::tell(lin(0, 1, "more"), any(), Agent::call("p", [Var::new("x")])),
        );
        let v = Explorer::new(program)
            .with_max_configurations(40)
            .with_max_depth(20)
            .explore(Agent::call("p", [Var::new("x")]), store())
            .unwrap();
        assert!(v.truncated);
        assert!(!v.always_succeeds);
    }

    #[test]
    fn interleavings_are_deduplicated() {
        // Two commuting tells: 2 orders, but the final store is shared,
        // so we see 4 configurations (start, two mids, one end), not 5.
        let a = Agent::tell(lin(0, 1, "a"), any(), Agent::success());
        let b = Agent::tell(lin(0, 2, "b"), any(), Agent::success());
        let v = Explorer::new(Program::new())
            .explore(Agent::par(a, b), store())
            .unwrap();
        assert_eq!(v.configurations, 4, "{v:?}");
        assert!(v.always_succeeds);
    }

    #[test]
    fn stats_fold() {
        let mut stats = ExplorationStats::default();
        stats.record(&Exploration {
            configurations: 1,
            transitions: 0,
            success_reachable: true,
            deadlock_reachable: false,
            always_succeeds: true,
            truncated: false,
        });
        stats.record(&Exploration {
            configurations: 1,
            transitions: 0,
            success_reachable: false,
            deadlock_reachable: true,
            always_succeeds: false,
            truncated: false,
        });
        assert_eq!(stats.total, 2);
        assert_eq!(stats.possible, 1);
        assert_eq!(stats.guaranteed, 1);
    }
}
