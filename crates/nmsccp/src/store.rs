//! The shared constraint store `σ`.

use std::fmt;

use parking_lot::Mutex;
use softsoa_core::solve::{ConstraintId, IncrementalSolver, IncrementalStats, SolveError};
use softsoa_core::{combine_all, Constraint, Domain, Domains, MissingDomainError, Var};
use softsoa_semiring::{Residuated, Semiring};

/// An error produced by a store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// A variable involved in the operation has no declared domain.
    MissingDomain(MissingDomainError),
    /// `retract(c)` was attempted while `σ ⋢ c` (rule R7 requires the
    /// constraint to be entailed by the store).
    NotEntailed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::MissingDomain(e) => write!(f, "{e}"),
            StoreError::NotEntailed => {
                write!(
                    f,
                    "cannot retract a constraint that the store does not entail"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::MissingDomain(e) => Some(e),
            StoreError::NotEntailed => None,
        }
    }
}

impl From<MissingDomainError> for StoreError {
    fn from(e: MissingDomainError) -> StoreError {
        StoreError::MissingDomain(e)
    }
}

/// The constraint store `σ ∈ C` of the `nmsccp` language.
///
/// A store is a single soft constraint (the combination of everything
/// told so far) together with the domain map of the problem's
/// variables. The empty store — written `0` in the paper's examples,
/// meaning the constraint with *empty support* — is the constraint
/// `1̄`, the unit of `⊗`.
///
/// Stores are immutable: every operation returns the next store, which
/// is eagerly materialised into a table over its support so that
/// repeated queries (entailment, consistency checks on every checked
/// transition) never re-evaluate user closures.
///
/// Alongside the materialised `σ`, the store keeps the *factorisation*
/// of everything told — each `tell` is a delta against a persistent
/// [`IncrementalSolver`], so [`consistency`](Store::consistency) (the
/// level every checked transition of Fig. 3 compares against its
/// interval) re-searches only the connected components the latest
/// operation touched. Stores derived from one another share the
/// solver's component cache. Two operations are deliberately
/// conservative:
///
/// - `retract` (R7) collapses the factorisation to the single divided
///   `σ`, because residuation does not distribute over `⊗`-factors —
///   a factor sharing no variable with the retracted constraint can
///   still absorb part of the division.
/// - On semirings whose `×` is inexact
///   ([`Semiring::exact_times`] is `false`, i.e. floating-point
///   accumulation), `consistency` falls back to the reference fold
///   over the materialised `σ`: re-associating the product across
///   factors could drift by an ulp and flip an interval check.
///
/// # Examples
///
/// ```
/// use softsoa_nmsccp::Store;
/// use softsoa_core::{Constraint, Domain, Domains};
/// use softsoa_semiring::WeightedInt;
///
/// let doms = Domains::new().with("x", Domain::ints(0..=10));
/// let store = Store::empty(WeightedInt, doms);
/// // tell c3(x) = 2x, then c4(x) = x + 5 (Fig. 7 of the paper)
/// let c3 = Constraint::unary(WeightedInt, "x", |v| 2 * v.as_int().unwrap() as u64);
/// let c4 = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64 + 5);
/// let store = store.tell(&c3)?.tell(&c4)?;
/// // σ ⇓ ∅: best level over x is at x = 0 → 5 hours (Example 1).
/// assert_eq!(store.consistency()?, 5);
/// # Ok::<(), softsoa_nmsccp::StoreError>(())
/// ```
pub struct Store<S: Semiring> {
    semiring: S,
    domains: Domains,
    sigma: Constraint<S>,
    /// The factorisation of `σ` as incremental-solver deltas, with
    /// `con = ∅` so a solve *is* `σ ⇓ ∅`.
    solver: Mutex<IncrementalSolver<S>>,
    /// The consistency level of this (immutable) store, once computed.
    memo: Mutex<Option<S::Value>>,
}

impl<S: Semiring> Clone for Store<S> {
    fn clone(&self) -> Store<S> {
        Store {
            semiring: self.semiring.clone(),
            domains: self.domains.clone(),
            sigma: self.sigma.clone(),
            solver: Mutex::new(self.solver.lock().clone()),
            memo: Mutex::new(self.memo.lock().clone()),
        }
    }
}

impl<S: Semiring> fmt::Debug for Store<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store")
            .field("semiring", &self.semiring)
            .field("domains", &self.domains)
            .field("sigma", &self.sigma)
            .field("factors", &self.solver.lock().len())
            .finish()
    }
}

impl<S: Semiring> Store<S> {
    /// Creates the empty store (`σ = 1̄`) over the given domains.
    pub fn empty(semiring: S, domains: Domains) -> Store<S> {
        let sigma = Constraint::always(semiring.clone());
        let mut solver = IncrementalSolver::new(semiring.clone());
        for (v, d) in domains.iter() {
            solver.declare(v.clone(), d.clone());
        }
        Store {
            semiring,
            domains,
            sigma,
            solver: Mutex::new(solver),
            memo: Mutex::new(None),
        }
    }

    /// The next store after an operation: new `σ`, new factorisation,
    /// consistency not yet computed.
    fn derived(&self, sigma: Constraint<S>, solver: IncrementalSolver<S>) -> Store<S> {
        Store {
            semiring: self.semiring.clone(),
            domains: self.domains.clone(),
            sigma,
            solver: Mutex::new(solver),
            memo: Mutex::new(None),
        }
    }

    /// The semiring of the store.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }

    /// The domain map of the store.
    pub fn domains(&self) -> &Domains {
        &self.domains
    }

    /// The store as a single soft constraint (`⊗` of everything told).
    pub fn sigma(&self) -> &Constraint<S> {
        &self.sigma
    }

    /// Declares (or replaces) a variable's domain — used by the hiding
    /// rule to introduce fresh variables.
    pub fn declare(&mut self, var: Var, domain: Domain) {
        self.solver.get_mut().declare(var.clone(), domain.clone());
        self.domains.insert(var, domain);
        *self.memo.get_mut() = None;
    }

    /// Work-avoidance counters of the incremental consistency engine
    /// accumulated along this store's derivation chain.
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.solver.lock().stats().clone()
    }

    /// The number of `⊗`-factors the store currently tracks.
    pub fn factor_count(&self) -> usize {
        self.solver.lock().len()
    }

    /// Adds `c` to the store: `σ' = σ ⊗ c` (rule R1).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingDomain`] if a support variable of
    /// the result has no domain.
    pub fn tell(&self, c: &Constraint<S>) -> Result<Store<S>, StoreError> {
        let sigma = self.sigma.combine(c).materialize(&self.domains)?;
        let mut solver = self.solver.lock().clone();
        solver.add_constraint(c.materialize(&self.domains)?);
        Ok(self.derived(sigma, solver))
    }

    /// Whether the store entails `c`: `σ ⊢ c ⇔ σ ⊑ c` (used by `ask`,
    /// rule R2, and negated by `nask`, rule R6).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingDomain`] if a support variable has
    /// no domain.
    pub fn entails(&self, c: &Constraint<S>) -> Result<bool, StoreError> {
        Ok(self.sigma.leq(c, &self.domains)?)
    }

    /// The consistency level of the store: `σ ⇓ ∅`.
    ///
    /// This is the level the checked transitions of Fig. 3 compare
    /// against their interval thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingDomain`] if a support variable has
    /// no domain.
    pub fn consistency(&self) -> Result<S::Value, StoreError> {
        if let Some(v) = self.memo.lock().clone() {
            return Ok(v);
        }
        let value = if self.semiring.exact_times() {
            match self.solver.lock().solve() {
                Ok(solution) => solution.blevel().clone(),
                Err(SolveError::MissingDomain(e)) => return Err(e.into()),
                // Defensive: fall back to the reference fold if the
                // incremental engine cannot handle the semiring.
                Err(_) => self.sigma.consistency(&self.domains)?,
            }
        } else {
            // Inexact `×`: keep the materialised σ's fold order so the
            // level matches entailment checks bit-for-bit.
            self.sigma.consistency(&self.domains)?
        };
        *self.memo.lock() = Some(value.clone());
        Ok(value)
    }

    /// Whether `σ ⊑ φ` (constraint upper thresholds of Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingDomain`] if a support variable has
    /// no domain.
    pub fn leq(&self, phi: &Constraint<S>) -> Result<bool, StoreError> {
        Ok(self.sigma.leq(phi, &self.domains)?)
    }

    /// Whether `φ ⊑ σ` (constraint lower thresholds of Fig. 3).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingDomain`] if a support variable has
    /// no domain.
    pub fn geq(&self, phi: &Constraint<S>) -> Result<bool, StoreError> {
        Ok(phi.leq(&self.sigma, &self.domains)?)
    }

    /// Uniformly worsens every level of the store by `factor`:
    /// `σ' = σ ⊗ factor̄` — the store-level form of a degradation
    /// fault, where a provider's whole policy loses quality without
    /// changing shape.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingDomain`] if a support variable has
    /// no domain.
    pub fn attenuate(&self, factor: &S::Value) -> Result<Store<S>, StoreError> {
        let c =
            Constraint::constant(self.semiring.clone(), factor.clone()).with_label("attenuation");
        self.tell(&c)
    }

    /// Replaces the information on `vars`: `σ' = (σ ⇓ (V \ X)) ⊗ c`
    /// (rule R8) — the transactional *update* that resembles an
    /// imperative assignment.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MissingDomain`] if a support variable has
    /// no domain.
    pub fn update(&self, vars: &[Var], c: &Constraint<S>) -> Result<Store<S>, StoreError> {
        let keep: Vec<Var> = self
            .domains
            .iter()
            .map(|(v, _)| v.clone())
            .filter(|v| !vars.contains(v))
            .collect();
        let projected = self.sigma.project(&keep, &self.domains)?;
        let sigma = projected.combine(c).materialize(&self.domains)?;
        // The projection distributes over factors that touch no
        // variable of `X` (they are constant in everything being
        // eliminated), so only the touched group is collapsed and
        // projected jointly — the delta the incremental solver sees is
        // local to `X`'s constraint-graph neighbourhood.
        let mut solver = self.solver.lock().clone();
        let touched: Vec<ConstraintId> = solver
            .constraints()
            .filter(|(_, f)| f.scope().iter().any(|v| vars.contains(v)))
            .map(|(id, _)| id)
            .collect();
        if !touched.is_empty() {
            let group: Vec<Constraint<S>> = touched
                .iter()
                .filter_map(|id| solver.retract_constraint(*id))
                .collect();
            let combined = combine_all(self.semiring.clone(), group.iter());
            let keep_local: Vec<Var> = combined
                .scope()
                .iter()
                .filter(|v| !vars.contains(v))
                .cloned()
                .collect();
            solver.add_constraint(combined.project(&keep_local, &self.domains)?);
        }
        solver.add_constraint(c.materialize(&self.domains)?);
        Ok(self.derived(sigma, solver))
    }
}

impl<S: Residuated> Store<S> {
    /// Removes `c` from the store: `σ' = σ ÷ c` (rule R7).
    ///
    /// Following R7, the constraint must be entailed by the store
    /// (`σ ⊑ c`); `c` need never have been told — retracting a weaker
    /// constraint acts as a *relaxation* (Example 2 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotEntailed`] if `σ ⋢ c`, or
    /// [`StoreError::MissingDomain`] if a support variable has no
    /// domain.
    pub fn retract(&self, c: &Constraint<S>) -> Result<Store<S>, StoreError> {
        if !self.entails(c)? {
            return Err(StoreError::NotEntailed);
        }
        let sigma = self.sigma.divide(c).materialize(&self.domains)?;
        // Residuation does not distribute over the `⊗`-factorisation
        // (a factor disjoint from `c`'s scope can still absorb slack
        // of the division), so the factor list collapses to the
        // divided σ itself. The next component re-search is global,
        // but subsequent tells become local deltas again.
        let mut solver = self.solver.lock().clone();
        let ids: Vec<ConstraintId> = solver.constraints().map(|(id, _)| id).collect();
        for id in ids {
            solver.retract_constraint(id);
        }
        solver.add_constraint(sigma.clone());
        Ok(self.derived(sigma, solver))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_core::Assignment;
    use softsoa_semiring::WeightedInt;

    fn doms() -> Domains {
        Domains::new().with("x", Domain::ints(0..=10))
    }

    fn c_linear(a: u64, b: u64) -> Constraint<WeightedInt> {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
    }

    #[test]
    fn empty_store_is_fully_consistent() {
        let store = Store::empty(WeightedInt, doms());
        assert_eq!(store.consistency().unwrap(), 0);
        assert!(store.sigma().is_constant());
    }

    #[test]
    fn example1_tell_combination() {
        // tell(c4) then tell(c3): σ = c4 ⊗ c3 ≡ 3x + 5, σ⇓∅ = 5.
        let store = Store::empty(WeightedInt, doms())
            .tell(&c_linear(1, 5))
            .unwrap()
            .tell(&c_linear(2, 0))
            .unwrap();
        assert_eq!(store.consistency().unwrap(), 5);
        let eta = Assignment::new().bind("x", 2);
        assert_eq!(store.sigma().eval(&eta), 11); // 3·2 + 5
    }

    #[test]
    fn example2_retract_is_relaxation() {
        // σ = c4 ⊗ c3 ≡ 3x + 5; retract c1 = x + 3 → 2x + 2, σ⇓∅ = 2.
        let store = Store::empty(WeightedInt, doms())
            .tell(&c_linear(1, 5))
            .unwrap()
            .tell(&c_linear(2, 0))
            .unwrap();
        let relaxed = store.retract(&c_linear(1, 3)).unwrap();
        assert_eq!(relaxed.consistency().unwrap(), 2);
        for x in 0..=10u64 {
            let eta = Assignment::new().bind("x", x as i64);
            assert_eq!(relaxed.sigma().eval(&eta), 2 * x + 2);
        }
    }

    #[test]
    fn retract_requires_entailment() {
        // σ = x + 5 does not entail 2x + 9 (at x = 10: 15 vs 29... the
        // store level 15 is *better* than 29, so σ ⋢ c there).
        let store = Store::empty(WeightedInt, doms())
            .tell(&c_linear(1, 5))
            .unwrap();
        let err = store.retract(&c_linear(2, 9)).unwrap_err();
        assert_eq!(err, StoreError::NotEntailed);
    }

    #[test]
    fn retract_after_tell_restores_level() {
        let c = c_linear(3, 1);
        let store = Store::empty(WeightedInt, doms());
        let told = store.tell(&c).unwrap();
        let back = told.retract(&c).unwrap();
        assert_eq!(back.consistency().unwrap(), store.consistency().unwrap());
    }

    #[test]
    fn example3_update_refreshes_variables() {
        // tell(c1 = x + 3), then update{x}(c2 = y + 1):
        // c1⇓(V\{x}) = 3̄, and 3̄ ⊗ c2 ≡ y + 4.
        let doms = Domains::new()
            .with("x", Domain::ints(0..=10))
            .with("y", Domain::ints(0..=10));
        let c1 = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64 + 3);
        let c2 = Constraint::unary(WeightedInt, "y", |v| v.as_int().unwrap() as u64 + 1);
        let store = Store::empty(WeightedInt, doms).tell(&c1).unwrap();
        let updated = store.update(&[Var::new("x")], &c2).unwrap();
        for y in 0..=10u64 {
            let eta = Assignment::new().bind("y", y as i64).bind("x", 0);
            assert_eq!(updated.sigma().eval(&eta), y + 4);
        }
        assert_eq!(updated.consistency().unwrap(), 4);
        // The new store no longer depends on x.
        assert!(!updated.sigma().scope().contains(&Var::new("x")));
    }

    #[test]
    fn entailment_of_weaker_constraints() {
        let store = Store::empty(WeightedInt, doms())
            .tell(&c_linear(2, 2))
            .unwrap();
        // 2x + 2 entails x + 1 (pointwise worse-or-equal).
        assert!(store.entails(&c_linear(1, 1)).unwrap());
        // but not 3x + 3.
        assert!(!store.entails(&c_linear(3, 3)).unwrap());
    }

    #[test]
    fn attenuate_worsens_every_level_uniformly() {
        let store = Store::empty(WeightedInt, doms())
            .tell(&c_linear(2, 1))
            .unwrap();
        let degraded = store.attenuate(&3).unwrap();
        assert_eq!(degraded.consistency().unwrap(), 4); // (2·0 + 1) + 3
        for x in 0..=10u64 {
            let eta = Assignment::new().bind("x", x as i64);
            assert_eq!(degraded.sigma().eval(&eta), 2 * x + 1 + 3);
        }
    }

    #[test]
    fn declare_extends_domains() {
        let mut store = Store::empty(WeightedInt, doms());
        store.declare(Var::new("z"), Domain::ints(0..=1));
        assert!(store.domains().contains(&Var::new("z")));
    }

    #[test]
    fn tells_accumulate_factors_and_retract_collapses_them() {
        let store = Store::empty(WeightedInt, doms())
            .tell(&c_linear(1, 5))
            .unwrap()
            .tell(&c_linear(2, 0))
            .unwrap();
        assert_eq!(store.factor_count(), 2);
        let relaxed = store.retract(&c_linear(1, 3)).unwrap();
        assert_eq!(relaxed.factor_count(), 1);
        assert_eq!(relaxed.consistency().unwrap(), 2);
    }

    #[test]
    fn consistency_only_resolves_touched_components() {
        let doms = Domains::new()
            .with("x", Domain::ints(0..=10))
            .with("y", Domain::ints(0..=10));
        let cy = Constraint::unary(WeightedInt, "y", |v| 7 * v.as_int().unwrap() as u64 + 2);
        let store = Store::empty(WeightedInt, doms).tell(&cy).unwrap();
        assert_eq!(store.consistency().unwrap(), 2);
        // Telling on x leaves the y component clean: its blevel
        // replays from the cache the derived store shares.
        let next = store.tell(&c_linear(1, 5)).unwrap();
        assert_eq!(next.consistency().unwrap(), 7);
        let stats = next.incremental_stats();
        assert!(stats.components_reused >= 1, "y component replayed");
    }

    #[test]
    fn factored_consistency_matches_sigma_across_operations() {
        let doms = Domains::new()
            .with("x", Domain::ints(0..=6))
            .with("y", Domain::ints(0..=6));
        let cx = c_linear(2, 1);
        let cy = Constraint::unary(WeightedInt, "y", |v| 3 * v.as_int().unwrap() as u64 + 4);
        let cxy = Constraint::binary(WeightedInt, "x", "y", |x, y| {
            (x.as_int().unwrap() + 2 * y.as_int().unwrap()) as u64
        });
        let mut store = Store::empty(WeightedInt, doms);
        for step in 0..4usize {
            store = match step {
                0 => store.tell(&cx).unwrap(),
                1 => store.tell(&cy).unwrap(),
                2 => store.update(&[Var::new("y")], &cxy).unwrap(),
                _ => store.retract(&c_linear(1, 1)).unwrap(),
            };
            // The incremental level must equal the reference fold over
            // the materialised σ (WeightedInt: exact ×).
            assert_eq!(
                store.consistency().unwrap(),
                store.sigma().consistency(store.domains()).unwrap(),
                "divergence after step {step}"
            );
        }
    }
}
